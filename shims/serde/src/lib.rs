//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of serde's surface it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, routed through an in-memory
//! [`Value`] tree that `serde_json` (the sibling shim) renders and parses.
//!
//! The data model is deliberately simple — `Serialize` lowers a type to a
//! [`Value`]; `Deserialize` rebuilds it from one. There is no zero-copy
//! deserialization, no custom `Serializer` plumbing, and no attribute
//! support; the derive rejects what it cannot handle at compile time.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An in-memory JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; field order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, converting integer representations.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `i64` integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// One-word description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization marker — every shim [`Deserialize`] qualifies.
    ///
    /// [`Deserialize`]: super::Deserialize
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by generated code; not a public API).
// ---------------------------------------------------------------------------

/// Fetch and deserialize a named struct field.
pub fn get_field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
    let f = v
        .get(name)
        .ok_or_else(|| Error(format!("{ty}: missing field `{name}` in {}", v.kind())))?;
    T::from_value(f).map_err(|e| Error(format!("{ty}.{name}: {e}")))
}

/// Fetch and deserialize a tuple-struct element.
pub fn get_index<T: Deserialize>(v: &Value, ty: &str, idx: usize) -> Result<T, Error> {
    let a = v
        .as_array()
        .ok_or_else(|| Error(format!("{ty}: expected array, got {}", v.kind())))?;
    let e = a
        .get(idx)
        .ok_or_else(|| Error(format!("{ty}: missing tuple element {idx}")))?;
    T::from_value(e).map_err(|e| Error(format!("{ty}.{idx}: {e}")))
}

/// Decode an externally tagged enum: returns the variant name and payload
/// (`None` for unit variants serialized as a bare string).
pub fn enum_variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Object(fields) if fields.len() == 1 => {
            Ok((fields[0].0.as_str(), Some(&fields[0].1)))
        }
        other => Err(Error(format!(
            "{ty}: expected enum (string or single-key object), got {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64()
                    .ok_or_else(|| Error(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64()
                    .ok_or_else(|| Error(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` fields (workload labels) deserialize by leaking the parsed
/// string. The repo only deserializes small artifacts in tests and tooling,
/// so the leak is bounded and intentional.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error(format!("expected single-char string, got {}", v.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single-char string, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()
                    .ok_or_else(|| Error(format!("expected tuple array, got {}", v.kind())))?;
                Ok(($($t::from_value(
                    a.get($i).ok_or_else(|| Error(format!("missing tuple element {}", $i)))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is stable across runs.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [[1u64, 2], [3, 4]];
        assert_eq!(<[[u64; 2]; 2]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, "x".to_string());
        assert_eq!(
            <(u8, String)>::from_value(&t.to_value()).unwrap(),
            (1u8, "x".to_string())
        );
    }

    #[test]
    fn object_get_finds_fields() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
    }
}
