//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the slice of proptest the workspace's property tests use: `Strategy` with
//! `prop_map`/`boxed`, `Just`, integer ranges, tuples, `any::<T>()`,
//! `prop::collection::vec`, weighted `prop_oneof!`, and the `proptest!` test
//! macro with `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs `cases` deterministic samples (seeded from the test name),
//! and `prop_assert!` failures panic like ordinary assertions. That keeps
//! the harness reproducible run-to-run, which matters more here than
//! minimal counterexamples.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (splitmix64-seeded xorshift-multiply stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a label (the test name), so every run of
    /// a given test sees the same sample sequence.
    pub fn deterministic(label: &str) -> TestRng {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in label.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-sampling scale.
        self.next_u64() % bound
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between boxed alternatives; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; total weight must be non-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Integer ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy for "any value of `T`"; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full domain of `T` (implemented per type on [`Any`]).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace alias so tests can write `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of samples per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Assert inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![3 => Just(1u8), 1 => 10u8..20];
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (10..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: vectors honour their size strategy.
        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }
    }
}
