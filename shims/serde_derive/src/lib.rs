//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so these derives are written
//! directly against `proc_macro` — no `syn`, no `quote`. The parser handles
//! exactly the shapes this workspace declares: non-generic structs (named,
//! tuple, unit) and enums (unit, newtype, tuple, and struct variants),
//! without `#[serde(...)]` attributes. Anything else is a compile error, by
//! design: better to fail loudly than silently mis-serialize.
//!
//! Code generation builds a source string and parses it back into a
//! `TokenStream`; the generated impls target the `serde` shim's
//! `to_value`/`from_value` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Drop leading outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from a token slice.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

/// Split a token slice on commas that sit outside any `<...>` nesting.
/// (Group delimiters are already opaque single tokens, so only angle
/// brackets need explicit depth tracking.)
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one `name: Type` field declaration; returns the field name.
fn parse_named_field(chunk: &[TokenTree]) -> String {
    let chunk = skip_attrs_and_vis(chunk);
    match chunk.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected field name, found {other:?}"),
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_top_commas(&group_tokens)
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| parse_named_field(c))
        .collect()
}

fn count_tuple_fields(group_tokens: Vec<TokenTree>) -> usize {
    split_top_commas(&group_tokens)
        .iter()
        .filter(|c| !c.is_empty())
        .count()
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let chunk = skip_attrs_and_vis(chunk);
    let name = match chunk.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected variant name, found {other:?}"),
    };
    let kind = match chunk.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(count_tuple_fields(g.stream().into_iter().collect()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Struct(parse_named_fields(g.stream().into_iter().collect()))
        }
        // Bare name, or `Name = discriminant` — both serialize as unit.
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let (kw, rest) = match tokens.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &tokens[1..]),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = rest.get(1) {
        if p.as_char() == '<' {
            panic!(
                "serde shim derive: generic type `{name}` is not supported; \
                 write the impls by hand"
            );
        }
    }
    let body = rest.get(1);
    let shape = match kw.as_str() {
        "struct" => match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            None => Shape::UnitStruct,
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = split_top_commas(&g.stream().into_iter().collect::<Vec<_>>())
                    .iter()
                    .filter(|c| !c.is_empty())
                    .map(|c| parse_variant(c))
                    .collect();
                Shape::Enum(variants)
            }
            other => panic!("serde shim derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    Input { name, shape }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        // Newtype structs serialize transparently, matching real serde.
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Object(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(v, {name:?}, {f:?})?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => format!(
            "Ok({name}(::serde::Deserialize::from_value(v).map_err(|e| \
             ::serde::Error(format!(\"{name}: {{}}\", e)))?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::get_index(v, {name:?}, {i})?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let path = format!("{name}::{vn}");
                    match &v.kind {
                        VariantKind::Unit => format!("{vn:?} => Ok({path}),"),
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => {{\n\
                                 let p = payload.ok_or_else(|| ::serde::Error(format!(\
                                     \"{path}: missing variant payload\")))?;\n\
                                 Ok({path}(::serde::Deserialize::from_value(p).map_err(|e| \
                                     ::serde::Error(format!(\"{path}: {{}}\", e)))?))\n\
                             }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::get_index(p, \"{path}\", {i})?"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::Error(format!(\
                                         \"{path}: missing variant payload\")))?;\n\
                                     Ok({path}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::get_field(p, \"{path}\", {f:?})?"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::Error(format!(\
                                         \"{path}: missing variant payload\")))?;\n\
                                     Ok({path} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (variant, payload) = ::serde::enum_variant(v, {name:?})?;\n\
                 let _ = &payload;\n\
                 match variant {{\n\
                     {arms}\n\
                     other => Err(::serde::Error(format!(\
                         \"{name}: unknown variant `{{}}`\", other))),\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let _ = v;\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
