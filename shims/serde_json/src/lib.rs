//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the vendored `serde` shim's [`Value`]
//! tree. Covers the API surface this workspace uses: `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, `from_value`, and `Error`.

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Lower a value to the in-memory tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from the in-memory tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that reparses
                // exactly, and always includes a decimal point or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Inf; follow serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig8".into())),
            ("count".into(), Value::U64(3)),
            ("ipc".into(), Value::F64(1.25)),
            (
                "rows".into(),
                Value::Array(vec![Value::I64(-1), Value::Bool(true), Value::Null]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        assert_eq!(
            parse(r#""a\nA😀""#).unwrap(),
            Value::Str("a\nA\u{1F600}".into())
        );
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn pretty_format_matches_two_space_style() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
