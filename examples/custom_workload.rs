//! Bring your own application: define a workload with named heap objects,
//! run MOCA's offline stages against it by hand (name → profile →
//! classify), and place it on a heterogeneous memory system.
//!
//! This walks the library layers the `Pipeline` wraps, which is what you
//! would extend to model your own application.
//!
//! ```text
//! cargo run --release -p moca-bench --example custom_workload
//! ```

use moca::classify::{classify_lut, AppThresholds, Thresholds};
use moca::naming::NameRegistry;
use moca::policy::MocaPolicy;
use moca::profile::{profile_app, ProfileConfig};
use moca_common::{ModuleKind, ObjectClass, KB, MB};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
use moca_sim::system::{AppLaunch, System};
use moca_workloads::spec::{AppSpec, InputSet, ObjectSpec, Pattern};

/// An in-memory key-value store: a pointer-chased index, a streamed log,
/// and a small hot metadata block.
fn kv_store() -> AppSpec {
    let base = 0x0060_0000;
    AppSpec {
        name: "kvstore",
        expected_class: ObjectClass::LatencySensitive,
        mem_fraction: 0.38,
        branch_fraction: 0.12,
        mispredict_rate: 0.01,
        stack_fraction: 0.08,
        stack_working_set: 16 * KB,
        code_bytes: 32 * KB,
        branch_jump_prob: 0.10,
        objects: vec![
            ObjectSpec {
                label: "hash_index",
                alloc_site: base + 0x10,
                call_stack: vec![base + 0x900],
                nominal_bytes: 320 * MB,
                weight: 0.45,
                pattern: Pattern::Chase, // bucket chains
                write_fraction: 0.05,
                burst: 3,
                chain_group: None,
            },
            ObjectSpec {
                label: "value_log",
                alloc_site: base + 0x20,
                call_stack: vec![base + 0x910],
                nominal_bytes: 256 * MB,
                weight: 0.35,
                pattern: Pattern::Stream { stride: 7 }, // append + scan
                write_fraction: 0.50,
                burst: 8,
                chain_group: None,
            },
            ObjectSpec {
                label: "metadata",
                alloc_site: base + 0x30,
                call_stack: vec![base + 0x920],
                nominal_bytes: 4 * MB,
                weight: 0.20,
                pattern: Pattern::hot(128 * KB),
                write_fraction: 0.30,
                burst: 2,
                chain_group: None,
            },
        ],
        phases: None,
    }
}

fn main() {
    let spec = kv_store();
    spec.validate();

    // Stage 0: the naming convention gives each allocation site + context a
    // stable identity (Fig. 3).
    let registry = NameRegistry::for_app(&spec);
    println!("named {} heap objects:", registry.len());
    for i in 0..registry.len() {
        let id = moca_common::ObjectId(i as u32);
        println!("  {} -> {}", registry.name_of(id), registry.label_of(id));
    }

    // Stage 1: offline profiling on the training input.
    let lut = profile_app(&spec, InputSet::training(), &ProfileConfig::quick());

    // Stage 2: classification.
    let classified = classify_lut(
        &lut,
        Thresholds::platform_default(),
        AppThresholds::default(),
    );
    println!("\nclassification:");
    for (o, class) in lut.objects.iter().zip(classified.object_classes.iter()) {
        println!(
            "  {:<11} MPKI {:>6.2}  stall/miss {:>5.1}  -> {class}",
            o.label, o.mpki, o.stall_per_miss
        );
    }

    // Stage 3: run on the heterogeneous machine with MOCA's typed heap.
    let cfg = SystemConfig::single_core(MemSystemConfig::Heterogeneous(
        HeterogeneousLayout::config1(),
    ));
    let launch = AppLaunch {
        spec,
        input: InputSet::reference(),
        object_classes: classified.object_classes.clone(),
    };
    let mut sys = System::new(cfg, vec![launch], Box::new(MocaPolicy));
    let r = sys.run_warmed(120_000, 150_000);

    println!("\nplacement under MOCA:");
    let app = moca_common::AppId(0);
    for kind in ModuleKind::ALL {
        let pages = r.placement.app_pages_on(app, kind);
        if pages > 0 {
            println!("  {kind}: {pages} pages");
        }
    }
    println!(
        "\nrun: {} instructions in {} cycles (IPC {:.2}), avg DRAM read latency {:.1} cycles",
        r.per_core[0].stats.committed,
        r.runtime_cycles,
        r.per_core[0].stats.ipc(),
        r.mem.avg_read_latency()
    );
}
