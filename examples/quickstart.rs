//! Quickstart: profile an application, inspect its memory objects, and
//! compare MOCA against the application-level baseline on the paper's
//! heterogeneous memory system.
//!
//! ```text
//! cargo run --release -p moca-bench --example quickstart
//! ```

use moca::pipeline::{Pipeline, PolicyKind};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn main() {
    // A pipeline owns the offline stages: profiling (training input) and
    // classification, plus evaluation runs (reference input).
    let mut pipeline = Pipeline::quick();

    // --- Stage 1+2: profile and classify one application ---------------
    let app = "disparity";
    let lut = pipeline.profile(app).clone();
    println!("profiled {app}: {} instructions", lut.instructions);
    println!(
        "app-level behaviour: L2 MPKI {:.1}, ROB-head stall/miss {:.1}\n",
        lut.app_mpki, lut.app_stall_per_miss
    );

    let classified = pipeline.classified(app).clone();
    println!(
        "{:<10} {:>10} {:>8} {:>12}  class",
        "object", "size", "MPKI", "stall/miss"
    );
    for (o, class) in lut.objects.iter().zip(classified.object_classes.iter()) {
        println!(
            "{:<10} {:>10} {:>8.2} {:>12.1}  {class}",
            o.label,
            moca_common::units::format_bytes(o.size_bytes),
            o.mpki,
            o.stall_per_miss,
        );
    }

    // --- Stage 3: evaluate object-level vs application-level placement --
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let moca = pipeline.evaluate(&[app], heter, PolicyKind::Moca);
    let heter_app = pipeline.evaluate(&[app], heter, PolicyKind::HeterApp);

    println!(
        "\n{:<12} {:>16} {:>14}",
        "policy", "mem access time", "memory EDP"
    );
    for r in [&heter_app, &moca] {
        println!(
            "{:<12} {:>13} cyc {:>11.3e} J*s",
            r.policy,
            r.mem.total_read_latency_cycles,
            r.mem.edp()
        );
    }
    let dt = 1.0
        - moca.mem.total_read_latency_cycles as f64
            / heter_app.mem.total_read_latency_cycles.max(1) as f64;
    let de = 1.0 - moca.mem.edp() / heter_app.mem.edp();
    println!(
        "\nMOCA vs Heter-App: {:.1}% faster memory, {:.1}% lower memory EDP",
        dt * 100.0,
        de * 100.0
    );
}
