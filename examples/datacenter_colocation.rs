//! Data-center co-location scenario (§VI-B): four applications with
//! different memory personalities share one machine. Compares the
//! homogeneous DDR3 baseline, application-level placement, and MOCA on the
//! paper's heterogeneous memory system.
//!
//! ```text
//! cargo run --release -p moca-bench --example datacenter_colocation
//! ```

use moca::pipeline::{Pipeline, PolicyKind};
use moca_common::ModuleKind;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn main() {
    // The 2L1B1N mix: two latency-bound services (mcf, milc), one
    // bandwidth-bound analytics job (lbm), one mostly-compute job (sift).
    let workload = ["mcf", "milc", "lbm", "sift"];
    println!("co-located workload: {workload:?} (2L1B1N)\n");

    let mut pipeline = Pipeline::quick();
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let runs = [
        (
            "Homogen-DDR3",
            pipeline.evaluate(
                &workload,
                MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
                PolicyKind::Homogeneous,
            ),
        ),
        (
            "Heter-App",
            pipeline.evaluate(&workload, heter, PolicyKind::HeterApp),
        ),
        (
            "MOCA",
            pipeline.evaluate(&workload, heter, PolicyKind::Moca),
        ),
    ];

    let base_time = runs[0].1.mem.total_read_latency_cycles as f64;
    let base_edp = runs[0].1.mem.edp();
    let base_ipc = runs[0].1.system_ipc();
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>12}",
        "system", "mem time", "mem EDP", "sys perf", "core power W"
    );
    for (name, r) in &runs {
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>9.3} {:>12.1}",
            name,
            r.mem.total_read_latency_cycles as f64 / base_time,
            r.mem.edp() / base_edp,
            r.system_ipc() / base_ipc,
            r.avg_core_power_w(),
        );
    }
    println!("\n(memory time and EDP normalized to Homogen-DDR3, lower is better;");
    println!(" system performance normalized to Homogen-DDR3, higher is better)");

    // Where did MOCA put the pages?
    let moca = &runs[2].1;
    println!("\nMOCA page placement (pages per module):");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "app", "RLDRAM", "HBM", "LPDDR2", "DDR3"
    );
    for (i, core) in moca.per_core.iter().enumerate() {
        let app = moca_common::AppId(i as u32);
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            core.app,
            moca.placement.app_pages_on(app, ModuleKind::Rldram3),
            moca.placement.app_pages_on(app, ModuleKind::Hbm),
            moca.placement.app_pages_on(app, ModuleKind::Lpddr2),
            moca.placement.app_pages_on(app, ModuleKind::Ddr3),
        );
    }
}
