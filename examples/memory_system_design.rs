//! Memory-system design exploration (§VI-C): how much RLDRAM / HBM / LPDDR2
//! should a heterogeneous machine carry? Sweeps the paper's three
//! configurations for a memory-intensive workload set and shows why the
//! paper picks config1 — MOCA extracts the performance of a small RLDRAM
//! while keeping the power of a large LPDDR2.
//!
//! ```text
//! cargo run --release -p moca-bench --example memory_system_design
//! ```

use moca::pipeline::{Pipeline, PolicyKind};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn main() {
    let workload = ["mcf", "milc", "disparity", "lbm"]; // 3L1B
    let configs = [
        (
            "config1 (256M RL / 768M HBM / 1G LP)",
            HeterogeneousLayout::config1(),
        ),
        (
            "config2 (512M RL / 512M HBM / 1G LP)",
            HeterogeneousLayout::config2(),
        ),
        (
            "config3 (768M RL / 768M HBM / 512M LP)",
            HeterogeneousLayout::config3(),
        ),
    ];

    let mut pipeline = Pipeline::quick();
    println!("workload: {workload:?} (3L1B)\n");
    println!(
        "{:<38} {:>7} {:>13} {:>11} {:>13}",
        "configuration", "policy", "mem time", "mem energy", "mem EDP"
    );

    let mut base: Option<(f64, f64)> = None;
    for (name, layout) in configs {
        let mem = MemSystemConfig::Heterogeneous(layout);
        for policy in [PolicyKind::HeterApp, PolicyKind::Moca] {
            let r = pipeline.evaluate(&workload, mem, policy);
            let time = r.mem.total_read_latency_cycles as f64;
            let edp = r.mem.edp();
            let (bt, be) = *base.get_or_insert((time, edp));
            println!(
                "{:<38} {:>7} {:>13.3} {:>8.2} mJ {:>12.3}",
                name,
                r.policy,
                time / bt,
                r.mem.energy_j() * 1e3,
                edp / be,
            );
        }
    }
    println!("\n(normalized to Heter-App on config1; lower is better)");
    println!("The paper selects config1: larger RLDRAM (config2/3) buys Heter-App some");
    println!("performance but costs standby power that MOCA never needed to spend.");
}
