//! Differential oracle for the hierarchical-bitmap frame allocator.
//!
//! The bitmap `FrameSpace` is fuzzed against a deliberately naive reference
//! model — per-region `BTreeSet<u64>` free sets plus the same bounded LIFO
//! cache and stripe bookkeeping, all implemented with the simplest possible
//! data structures — over 100k+ seeded operations per run. The two
//! implementations must agree on every returned pfn, every free count,
//! every headroom vector, and every rejected free. Any divergence in the
//! allocation *order* (the deterministic surface the golden digests build
//! on) fails here long before the full golden-digest suite notices.
//!
//! A second battery pins an FNV-1a fingerprint of the full allocation-order
//! drain per golden memory layout, so an ordering change is caught even if
//! someone changes allocator and oracle in tandem.

use moca_common::rng::DetRng;
use moca_common::{ModuleKind, ObjectClass, PAGE_SIZE};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_vm::frames::{regions_from_capacities, FrameSpace, ModuleRegion, STRIPE_CHUNK};
use moca_vm::policy::preference_order;
use moca_vm::FREE_CACHE;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The naive reference: free pfns in ordered sets, the LIFO reuse cache as
/// a plain Vec, frontiers as counters, stripe state exactly as the §IV-D
/// description reads. No bitmaps, no summaries, no hints.
struct OracleModel {
    regions: Vec<ModuleRegion>,
    free_set: Vec<BTreeSet<u64>>,
    cache: Vec<Vec<u64>>,
    frontier: Vec<u64>,
    stripe_region: [usize; 4],
    stripe_left: [u64; 4],
}

fn kind_index(kind: ModuleKind) -> usize {
    ModuleKind::ALL.iter().position(|&k| k == kind).unwrap()
}

impl OracleModel {
    fn new(regions: Vec<ModuleRegion>) -> OracleModel {
        let free_set = regions
            .iter()
            .map(|r| (r.base_pfn..r.base_pfn + r.frames).collect())
            .collect();
        let n = regions.len();
        OracleModel {
            regions,
            free_set,
            cache: vec![Vec::new(); n],
            frontier: vec![0; n],
            stripe_region: [usize::MAX; 4],
            stripe_left: [0; 4],
        }
    }

    fn free_in_region(&self, idx: usize) -> u64 {
        self.free_set[idx].len() as u64
    }

    fn free_of_kind(&self, kind: ModuleKind) -> u64 {
        (0..self.regions.len())
            .filter(|&i| self.regions[i].kind == kind)
            .map(|i| self.free_in_region(i))
            .sum()
    }

    fn headroom(&self) -> Vec<(ModuleKind, u64)> {
        ModuleKind::ALL
            .iter()
            .filter(|&&k| self.regions.iter().any(|r| r.kind == k))
            .map(|&k| (k, self.free_of_kind(k)))
            .collect()
    }

    fn alloc_in_region(&mut self, idx: usize) -> Option<u64> {
        if let Some(pfn) = self.cache[idx].pop() {
            assert!(self.free_set[idx].remove(&pfn), "cached pfn not free");
            return Some(pfn);
        }
        let pfn = *self.free_set[idx].iter().next()?;
        self.free_set[idx].remove(&pfn);
        let off = pfn - self.regions[idx].base_pfn;
        if off >= self.frontier[idx] {
            self.frontier[idx] = off + 1;
        }
        Some(pfn)
    }

    fn alloc_by_preference(&mut self, prefs: &[ModuleKind]) -> Option<(u64, ModuleKind)> {
        for &kind in prefs {
            let ki = kind_index(kind);
            let cur = self.stripe_region[ki];
            if self.stripe_left[ki] > 0
                && cur < self.regions.len()
                && self.regions[cur].kind == kind
                && self.free_in_region(cur) > 0
            {
                self.stripe_left[ki] -= 1;
                return Some((self.alloc_in_region(cur).unwrap(), kind));
            }
            // Most-free region of this kind; ties go to the HIGHEST region
            // index (Iterator::max_by_key keeps the last maximum).
            let mut best: Option<(usize, u64)> = None;
            for i in 0..self.regions.len() {
                if self.regions[i].kind != kind {
                    continue;
                }
                let free = self.free_in_region(i);
                if free == 0 {
                    continue;
                }
                if best.map(|(_, bf)| free >= bf).unwrap_or(true) {
                    best = Some((i, free));
                }
            }
            if let Some((i, _)) = best {
                self.stripe_region[ki] = i;
                self.stripe_left[ki] = STRIPE_CHUNK - 1;
                return Some((self.alloc_in_region(i).unwrap(), kind));
            }
        }
        None
    }

    /// Ok(()) when the free is valid; mirrors `FrameSpace::try_free`'s
    /// accept/reject decision (not its cause taxonomy).
    fn try_free(&mut self, pfn: u64) -> Result<(), ()> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.contains_pfn(pfn))
            .ok_or(())?;
        let off = pfn - self.regions[idx].base_pfn;
        if off >= self.frontier[idx] || self.free_set[idx].contains(&pfn) {
            return Err(());
        }
        self.free_set[idx].insert(pfn);
        if self.cache[idx].len() < FREE_CACHE {
            self.cache[idx].push(pfn);
        }
        Ok(())
    }
}

/// The machine under fuzz: every kind present, two LP channels, small
/// enough that exhaustion/fallback and cache spill all happen routinely.
fn fuzz_regions() -> Vec<ModuleRegion> {
    regions_from_capacities(&[
        (ModuleKind::Rldram3, 0, 96 * PAGE_SIZE),
        (ModuleKind::Hbm, 1, 200 * PAGE_SIZE),
        (ModuleKind::Lpddr2, 2, 150 * PAGE_SIZE),
        (ModuleKind::Lpddr2, 3, 150 * PAGE_SIZE),
        (ModuleKind::Ddr3, 4, 128 * PAGE_SIZE),
    ])
}

const CLASSES: [ObjectClass; 3] = [
    ObjectClass::LatencySensitive,
    ObjectClass::BandwidthSensitive,
    ObjectClass::NonIntensive,
];

/// Drive both implementations through `ops` seeded operations and assert
/// they stay externally indistinguishable.
fn differential_run(seed: u64, ops: u64) {
    let mut fs = FrameSpace::new(fuzz_regions());
    let mut oracle = OracleModel::new(fuzz_regions());
    let mut rng = DetRng::new(seed, 17);
    let mut live: Vec<u64> = Vec::new();
    let total: u64 = fs.total_frames();

    for op in 0..ops {
        match rng.below(10) {
            // alloc_by_preference with a class-derived fallback chain
            0..=4 => {
                let prefs = preference_order(CLASSES[rng.below(3) as usize]);
                let got = fs.alloc_by_preference(&prefs);
                let want = oracle.alloc_by_preference(&prefs);
                assert_eq!(got, want, "op {op}: alloc_by_preference diverged");
                if let Some((pfn, _)) = got {
                    live.push(pfn);
                }
            }
            // direct region allocation
            5..=6 => {
                let idx = rng.below(fs.regions().len() as u64) as usize;
                let got = fs.alloc_in_region(idx);
                let want = oracle.alloc_in_region(idx);
                assert_eq!(got, want, "op {op}: alloc_in_region({idx}) diverged");
                if let Some(pfn) = got {
                    live.push(pfn);
                }
            }
            // free a live frame (or, sometimes, attempt an invalid free)
            7..=8 => {
                if !live.is_empty() && !rng.chance(0.05) {
                    let i = rng.below(live.len() as u64) as usize;
                    let pfn = live.swap_remove(i);
                    assert_eq!(
                        fs.try_free(pfn).is_ok(),
                        oracle.try_free(pfn).is_ok(),
                        "op {op}: valid free of {pfn} diverged"
                    );
                } else {
                    // Invalid free: out of range, never-allocated, or a
                    // double free of a currently-free pfn. Both sides must
                    // reject without any state change.
                    let pfn = rng.below(total + 64);
                    if live.contains(&pfn) {
                        continue;
                    }
                    let got = fs.try_free(pfn);
                    let want = oracle.try_free(pfn);
                    assert_eq!(
                        got.is_ok(),
                        want.is_ok(),
                        "op {op}: free({pfn}) accept/reject diverged"
                    );
                    assert!(got.is_err(), "op {op}: invalid free of {pfn} accepted");
                }
            }
            // headroom / accounting queries
            _ => {
                assert_eq!(
                    fs.headroom(),
                    oracle.headroom(),
                    "op {op}: headroom diverged"
                );
                for idx in 0..fs.regions().len() {
                    assert_eq!(
                        fs.free_in_region(idx),
                        oracle.free_in_region(idx),
                        "op {op}: free_in_region({idx}) diverged"
                    );
                }
            }
        }
        if op % 10_000 == 0 {
            fs.check_invariants()
                .unwrap_or_else(|e| panic!("op {op}: {e}"));
        }
    }
    fs.check_invariants().unwrap();
    assert_eq!(fs.headroom(), oracle.headroom(), "final headroom diverged");
}

/// The ISSUE-mandated single-run battery: 100k ops under one seed.
#[test]
fn differential_fuzz_100k_ops() {
    differential_run(0x0a11_0c0d_e000_0001, 100_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed sweep: eight more 25k-op runs under shim-chosen seeds.
    #[test]
    fn differential_fuzz_seed_sweep(seed in any::<u64>()) {
        differential_run(seed, 25_000);
    }
}

/// FNV-1a over an allocation sequence.
fn fnv1a(pfns: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in pfns {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Allocation-order fingerprint of one memory layout at the default
/// evaluation scale: drain the machine (up to 10k frames) through
/// `alloc_by_preference` with a seeded class sequence and hash the pfns.
fn allocation_fingerprint(mem: &MemSystemConfig, stream: u64) -> u64 {
    let scale = moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE;
    let mut fs = FrameSpace::new(mem.frame_regions(scale));
    let mut rng = DetRng::new(0xf1f0, stream);
    let mut pfns = Vec::new();
    while pfns.len() < 10_000 {
        let prefs = preference_order(CLASSES[rng.below(3) as usize]);
        match fs.alloc_by_preference(&prefs) {
            Some((pfn, _)) => pfns.push(pfn),
            None => break,
        }
    }
    fnv1a(pfns)
}

/// Committed fingerprints. These move only when the externally observable
/// allocation order moves — which is exactly when the seven golden digests
/// would move too. Update both (and say why) or neither.
const FINGERPRINTS: &[(&str, u64)] = &[
    // The four homogeneous machines share one fingerprint: a single region
    // makes the drain sequence 0..frames regardless of preference chain.
    ("Homogen-DDR3", 0x81e9b277a8824125),
    ("Homogen-RL", 0x81e9b277a8824125),
    ("Homogen-HBM", 0x81e9b277a8824125),
    ("Homogen-LP", 0x81e9b277a8824125),
    ("Heter-config1", 0x23fd3a9b80b831e5),
    ("Heter-config2", 0x2526f6d60d01ff89),
    ("Heter-config3", 0x947e5c708243209d),
];

fn golden_layouts() -> Vec<(&'static str, MemSystemConfig)> {
    vec![
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter-config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter-config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter-config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ]
}

#[test]
fn allocation_order_fingerprints_unchanged() {
    let mut failures = Vec::new();
    for (i, (name, mem)) in golden_layouts().iter().enumerate() {
        let got = allocation_fingerprint(mem, i as u64);
        let want = FINGERPRINTS
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no fingerprint entry for {name}"))
            .1;
        if got != want {
            failures.push(format!("(\"{name}\", {got:#018x}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "allocation order changed; this WILL move the golden digests. If intentional, update FINGERPRINTS to:\n{}",
        failures.join("\n")
    );
}
