//! Golden-digest determinism gate for the cycle engine.
//!
//! Runs every `SystemConfig` memory system (the four homogeneous machines
//! and all three heterogeneous layouts) on a small fixed workload mix and
//! checks an FNV-1a digest of the numeric `RunResult` fields against
//! constants captured from the reference engine. Any change to simulated
//! behaviour — scheduler, DRAM timing, cache bookkeeping, page placement —
//! shows up here as a digest mismatch.
//!
//! These constants are the acceptance gate for performance work on the
//! engine hot path: optimisations must leave every digest bit-identical.
//! If a digest changes *intentionally* (a modelling fix), regenerate the
//! constants from the failure message and say why in the commit.

use moca_common::ModuleKind;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
use moca_sim::metrics::RunResult;
use moca_sim::system::{AppLaunch, System};
use moca_vm::policy::FirstTouchPolicy;
use moca_workloads::{app_by_name, InputSet};

/// Small enough to keep the seven quad-core runs fast in debug tests,
/// large enough that every subsystem (refresh, write drain, event skip,
/// window freeze ordering) is exercised.
const INSTR_TARGET: u64 = 12_000;

/// FNV-1a 64-bit running hash (no external deps, stable across platforms).
struct Digest {
    h: u64,
}

impl Digest {
    fn new() -> Digest {
        Digest {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Digest every integer field of a run that the simulation determines:
/// per-core pipeline statistics, memory-controller statistics, and the
/// placement total. Host-side quantities (wall time, energy floats derived
/// from these integers) are excluded.
fn digest(r: &RunResult) -> u64 {
    let mut d = Digest::new();
    d.word(r.runtime_cycles);
    for c in &r.per_core {
        d.word(c.stats.committed);
        d.word(c.stats.cycles);
        d.word(c.stats.head_stall_cycles);
        d.word(c.stats.loads);
        d.word(c.stats.stores);
        d.word(c.stats.mispredicts);
        d.word(c.stats.rob_full_cycles);
        d.word(c.stats.lq_full_cycles);
        d.word(c.finished_at);
    }
    d.word(r.mem.reads);
    d.word(r.mem.total_read_latency_cycles);
    for &l in &r.mem.per_core_read_latency {
        d.word(l);
    }
    for ch in &r.mem.channels {
        d.word(ch.stats.reads);
        d.word(ch.stats.writes);
        d.word(ch.stats.row_hits);
        d.word(ch.stats.activates);
        d.word(ch.stats.busy_cycles);
        d.word(ch.stats.read_queue_cycles);
        d.word(ch.stats.read_service_cycles);
        d.word(ch.stats.refreshes);
    }
    d.word(r.placement.total_pages());
    d.h
}

/// The seven memory systems a `SystemConfig` can describe.
fn all_mem_systems() -> Vec<(&'static str, MemSystemConfig)> {
    vec![
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter-config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter-config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter-config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ]
}

fn run_digest(mem: MemSystemConfig) -> u64 {
    let cfg = SystemConfig::quad_core(mem);
    let launches = ["mcf", "lbm", "gcc", "sift"]
        .iter()
        .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
        .collect();
    let mut sys = System::new(cfg, launches, Box::new(FirstTouchPolicy));
    digest(&sys.run(INSTR_TARGET))
}

/// Reference digests, captured from the engine as of this test's
/// introduction (quad-core mcf/lbm/gcc/sift, 12k instructions per core).
const GOLDEN: &[(&str, u64)] = &[
    ("Homogen-DDR3", 0x4f941fdc46a9f542),
    ("Homogen-RL", 0xc3e0039dc8bc44e7),
    ("Homogen-HBM", 0xeecad67d0ddde146),
    ("Homogen-LP", 0xd4271849e9f017b3),
    ("Heter-config1", 0x944a5f5c369012b1),
    ("Heter-config2", 0x52f90524bb82364a),
    ("Heter-config3", 0xac4c83cab814dc7f),
];

#[test]
fn golden_digests_unchanged_across_all_seven_configs() {
    let mut failures = Vec::new();
    for (name, mem) in all_mem_systems() {
        let got = run_digest(mem);
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden entry for {name}"))
            .1;
        if got != want {
            failures.push(format!("(\"{name}\", {got:#018x}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "simulation results changed; if intentional, update GOLDEN to:\n{}",
        failures.join("\n")
    );
}
