//! Workspace-level gates for the global event wheel and the parallel step
//! loop built on it.
//!
//! Two properties are enforced:
//!
//! 1. **Wheel ≡ linear scan.** Under a seeded random workload of posts,
//!    cancels, and time advances, `EventWheel::next_event_after` must agree
//!    with the exhaustive per-component scan (`scan_min_after`) it replaced
//!    in `System::step` — same cycle, and a component holding that cycle.
//!
//! 2. **Thread-count invariance.** Stepping the machine with the parallel
//!    phase-3 fan-out (`System::set_step_threads`) must produce
//!    byte-identical results for 1, 2, and 4 threads on every memory
//!    system a `SystemConfig` can describe. The digest covers every
//!    integer field the simulation determines, like the golden-digest
//!    gate.

use moca_common::wheel::EventWheel;
use moca_common::{Cycle, DetRng, ModuleKind};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
use moca_sim::metrics::RunResult;
use moca_sim::system::{AppLaunch, System};
use moca_vm::policy::FirstTouchPolicy;
use moca_workloads::{app_by_name, InputSet};

// ---------------------------------------------------------------------------
// 1. Differential property test: wheel vs linear-scan oracle.
// ---------------------------------------------------------------------------

/// Seeded random op mix over a wheel and a shadow copy, checking the skip
/// query against the exhaustive scan after every mutation. Exercises ring
/// buckets, the overflow list (far-future posts), lazy stale entries
/// (re-posts and cancels), and monotonic time advances.
#[test]
fn wheel_matches_linear_scan_oracle() {
    const COMPONENTS: usize = 24;
    const OPS: usize = 30_000;
    let mut rng = DetRng::new(0x0e1e_c75e_ed00_0001, 7);
    let mut wheel = EventWheel::new(COMPONENTS);
    let mut now: Cycle = 0;
    for op in 0..OPS {
        match rng.below(10) {
            // Near posts land in the ring, far posts in the overflow list,
            // `Cycle::MAX` posts are cancels in disguise.
            0..=4 => {
                let comp = rng.below(COMPONENTS as u64) as usize;
                let cycle = match rng.below(20) {
                    0 => Cycle::MAX,
                    1..=2 => now + 1 + rng.below(100_000),
                    _ => now + 1 + rng.below(400),
                };
                wheel.post(comp, cycle);
            }
            5..=6 => {
                let comp = rng.below(COMPONENTS as u64) as usize;
                wheel.cancel(comp);
            }
            // Advance time; occasionally jump straight to the next event
            // the way the skip path does.
            _ => {
                now += match rng.below(4) {
                    0 => 1,
                    1 => rng.below(64) + 1,
                    _ => match wheel.scan_min_after(now) {
                        Some((c, _)) if c != Cycle::MAX => c - now,
                        _ => rng.below(512) + 1,
                    },
                };
            }
        }
        let got = wheel.next_event_after(now);
        let want = wheel.scan_min_after(now);
        match (got, want) {
            (None, None) => {}
            (Some((gc, gcomp)), Some((wc, _))) => {
                assert_eq!(
                    gc, wc,
                    "op {op}: wheel cycle {gc} != scan cycle {wc} at now={now}"
                );
                assert_eq!(
                    wheel.posted(gcomp),
                    gc,
                    "op {op}: wheel returned component {gcomp} which is not posted at {gc}"
                );
            }
            (g, w) => panic!("op {op}: wheel says {g:?}, scan says {w:?} at now={now}"),
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Parallel stepping is thread-count invariant.
// ---------------------------------------------------------------------------

/// Shorter than the golden-digest target: this test runs each config three
/// times (1/2/4 threads) and the frontier protocol serializes on a
/// single-CPU host, so the budget goes to config coverage instead of run
/// length.
const INSTR_TARGET: u64 = 4_000;

/// FNV-1a over every integer field the simulation determines (the same
/// field set as the golden-digest gate).
fn digest(r: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    word(r.runtime_cycles);
    for c in &r.per_core {
        word(c.stats.committed);
        word(c.stats.cycles);
        word(c.stats.head_stall_cycles);
        word(c.stats.loads);
        word(c.stats.stores);
        word(c.stats.mispredicts);
        word(c.stats.rob_full_cycles);
        word(c.stats.lq_full_cycles);
        word(c.finished_at);
    }
    word(r.mem.reads);
    word(r.mem.total_read_latency_cycles);
    for &l in &r.mem.per_core_read_latency {
        word(l);
    }
    for ch in &r.mem.channels {
        word(ch.stats.reads);
        word(ch.stats.writes);
        word(ch.stats.row_hits);
        word(ch.stats.activates);
        word(ch.stats.busy_cycles);
        word(ch.stats.read_queue_cycles);
        word(ch.stats.read_service_cycles);
        word(ch.stats.refreshes);
    }
    word(r.placement.total_pages());
    h
}

fn run_digest(mem: MemSystemConfig, threads: usize) -> u64 {
    let cfg = SystemConfig::quad_core(mem);
    let launches = ["mcf", "lbm", "gcc", "sift"]
        .iter()
        .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
        .collect();
    let mut sys = System::new(cfg, launches, Box::new(FirstTouchPolicy));
    sys.set_step_threads(threads);
    digest(&sys.run(INSTR_TARGET))
}

fn all_mem_systems() -> Vec<(&'static str, MemSystemConfig)> {
    vec![
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter-config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter-config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter-config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ]
}

#[test]
fn parallel_stepping_is_thread_count_invariant() {
    let mut failures = Vec::new();
    for (name, mem) in all_mem_systems() {
        let base = run_digest(mem, 1);
        for threads in [2, 4] {
            let got = run_digest(mem, threads);
            if got != base {
                failures.push(format!(
                    "{name}: {threads} threads gave {got:#018x}, sequential gave {base:#018x}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "parallel stepping diverged from sequential:\n{}",
        failures.join("\n")
    );
}
