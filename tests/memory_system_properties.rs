//! Property-based tests on the hardware substrates: DRAM channel timing
//! invariants and cache coherence-of-contents invariants.

use moca_cache::{CacheConfig, SetAssocCache};
use moca_common::ids::MemTag;
use moca_common::{AccessKind, CoreId, LineAddr, ObjectId, PhysAddr, Segment};
use moca_dram::{AddressMapper, Channel, ChannelConfig, DeviceTiming};
use moca_sim::hierarchy::CoreHierarchy;
use proptest::prelude::*;

fn device_strategy() -> impl Strategy<Value = DeviceTiming> {
    prop_oneof![
        Just(DeviceTiming::ddr3()),
        Just(DeviceTiming::hbm()),
        Just(DeviceTiming::rldram3()),
        Just(DeviceTiming::lpddr2()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every read enqueued completes exactly once, latency decomposition is
    /// exact (finish = arrival + queue + service), and service is at least
    /// the data-burst time.
    #[test]
    fn channel_completes_every_read_exactly_once(
        timing in device_strategy(),
        offsets in prop::collection::vec(0u64..(4 << 20), 1..24),
        writes in prop::collection::vec(any::<bool>(), 1..24),
    ) {
        let transfer = timing.line_transfer_cycles();
        let mut ch = Channel::new(ChannelConfig::new(timing, 16 << 20));
        let mut expected_reads = std::collections::HashMap::new();
        let mut now = 0u64;
        let mut out = Vec::new();
        let n = offsets.len().min(writes.len());
        for i in 0..n {
            // Respect queue capacity; tick until there is room.
            let kind = if writes[i] { AccessKind::Write } else { AccessKind::Read };
            while !ch.can_accept(kind) {
                now += 1;
                out.clear();
                ch.tick(now, &mut out);
                for c in &out {
                    prop_assert!(expected_reads.remove(&c.token).is_some());
                }
                prop_assert!(now < 1_000_000);
            }
            let local = offsets[i] & !63;
            let token = i as u64 + 1;
            ch.enqueue(now, moca_dram::MemRequest {
                token,
                line: LineAddr(local / 64),
                local_off: local,
                kind,
                core: CoreId(0),
                tag: MemTag::segment(Segment::Data),
            });
            if kind == AccessKind::Read {
                expected_reads.insert(token, now);
            }
        }
        while !ch.is_idle() {
            now += 1;
            out.clear();
            ch.tick(now, &mut out);
            for c in &out {
                let arrival = expected_reads.remove(&c.token);
                prop_assert!(arrival.is_some(), "token {} completed twice or never sent", c.token);
                prop_assert_eq!(c.finish, arrival.unwrap() + c.queue_cycles + c.service_cycles,
                    "latency decomposition broken");
                prop_assert!(c.service_cycles >= transfer);
                prop_assert!(c.finish <= now);
            }
            prop_assert!(now < 2_000_000, "channel did not drain");
        }
        prop_assert!(expected_reads.is_empty(), "lost reads: {:?}", expected_reads.keys());
    }

    /// Row hits never happen on devices with sub-line row buffers, and the
    /// data bus never does more transfers than requests.
    #[test]
    fn channel_stats_are_sane(
        timing in device_strategy(),
        offsets in prop::collection::vec(0u64..(1 << 20), 1..32),
    ) {
        let supports_hits = timing.supports_row_hits();
        let subs = timing.subaccesses_per_line() as u64;
        let mut ch = Channel::new(ChannelConfig::new(timing, 4 << 20));
        let mut now = 0;
        let mut out = Vec::new();
        for (i, off) in offsets.iter().enumerate() {
            while !ch.can_accept(AccessKind::Read) {
                now += 1;
                out.clear();
                ch.tick(now, &mut out);
            }
            let local = off & !63;
            ch.enqueue(now, moca_dram::MemRequest {
                token: i as u64,
                line: LineAddr(local / 64),
                local_off: local,
                kind: AccessKind::Read,
                core: CoreId(0),
                tag: MemTag::segment(Segment::Data),
            });
        }
        while !ch.is_idle() {
            now += 1;
            out.clear();
            ch.tick(now, &mut out);
            assert!(now < 2_000_000);
        }
        let s = *ch.stats();
        prop_assert_eq!(s.reads, offsets.len() as u64);
        if !supports_hits {
            prop_assert_eq!(s.row_hits, 0, "sub-line device cannot row-hit");
        }
        prop_assert!(s.row_hits <= s.reads + s.writes);
        prop_assert!(s.activates >= (s.reads - s.row_hits) * subs.min(1));
        prop_assert!(s.busy_cycles <= now);
    }

    /// Cache contents behave like a bounded set with LRU: a line filled and
    /// immediately probed hits; occupancy never exceeds capacity; a line
    /// reported evicted really is gone.
    #[test]
    fn cache_contents_model(ops in prop::collection::vec((0u64..256, any::<bool>()), 1..400)) {
        // 8 sets × 2 ways.
        let cfg = CacheConfig { name: "prop", size_bytes: 1024, ways: 2, hit_latency: 1, mshrs: 4 };
        let capacity = (cfg.sets() * cfg.ways as u64) as usize;
        let mut cache = SetAssocCache::new(cfg);
        let mut resident = std::collections::HashSet::new();
        for (line, write) in ops {
            let line = LineAddr(line);
            let hit = cache.access(line, write);
            prop_assert_eq!(hit, resident.contains(&line), "hit/miss mismatch vs model");
            if !hit {
                if let Some(v) = cache.fill(line, write) {
                    prop_assert!(resident.remove(&v.line), "evicted a non-resident line");
                    prop_assert!(!cache.contains(v.line));
                }
                resident.insert(line);
            }
            prop_assert!(cache.contains(line));
            prop_assert!(resident.len() <= capacity);
            prop_assert_eq!(cache.resident_lines(), resident.len());
        }
    }

    /// Writebacks: a dirty line evicted from a cache that received a
    /// writeback is reported dirty.
    #[test]
    fn dirty_state_tracks_writes(lines in prop::collection::vec(0u64..64, 1..100)) {
        let cfg = CacheConfig { name: "prop", size_bytes: 512, ways: 2, hit_latency: 1, mshrs: 4 };
        let mut cache = SetAssocCache::new(cfg);
        let mut dirty = std::collections::HashSet::new();
        for line in lines {
            let line = LineAddr(line);
            if !cache.access(line, true) {
                if let Some(v) = cache.fill(line, true) {
                    prop_assert_eq!(v.dirty, dirty.contains(&v.line));
                    dirty.remove(&v.line);
                }
            }
            dirty.insert(line);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full hierarchy over a live channel: random loads/stores/ifetches all
    /// drain, the hierarchy returns to idle, and the inclusion property
    /// holds throughout — every line resident in an L1 is also in the L2.
    #[test]
    fn hierarchy_maintains_inclusion(
        ops in prop::collection::vec((0u64..2048, 0u8..3), 1..250),
    ) {
        let mut hier = CoreHierarchy::new();
        let mut channels = vec![Channel::new(ChannelConfig::new(
            DeviceTiming::ddr3(),
            16 << 20,
        ))];
        let mapper = AddressMapper::ranged(&[16 << 20]);
        let mut tickets = 0u64;
        let mut now = 0u64;
        let mut out = Vec::new();
        let mut expected_wakeups = 0u64;
        let mut wakeups = 0u64;
        let tag = MemTag::heap(ObjectId(0));

        let mut step = |hier: &mut CoreHierarchy,
                        channels: &mut Vec<Channel>,
                        now: &mut u64,
                        wakeups: &mut u64| {
            *now += 1;
            out.clear();
            for ch in channels.iter_mut() {
                ch.tick(*now, &mut out);
            }
            for c in &out {
                *wakeups += hier.on_completion(*now, c, channels, &mapper).len() as u64;
            }
            hier.flush_deferred(*now, channels, &mapper);
        };

        for (line, op) in ops {
            step(&mut hier, &mut channels, &mut now, &mut wakeups);
            let pa = PhysAddr(line * 64);
            match op {
                0 => {
                    match hier.load(now, CoreId(0), pa, tag, 0, &mut channels, &mapper, &mut tickets) {
                        moca_cpu::MemReply::Pending { .. } => expected_wakeups += 1,
                        moca_cpu::MemReply::Done { .. } => {}
                        moca_cpu::MemReply::Retry { .. } => {} // dropped: fine for this test
                    }
                }
                1 => {
                    hier.store(now, CoreId(0), pa, tag, &mut channels, &mapper, &mut tickets);
                }
                _ => {
                    if let moca_cpu::MemReply::Pending { .. } =
                        hier.ifetch(now, CoreId(0), pa, &mut channels, &mapper, &mut tickets)
                    {
                        expected_wakeups += 1;
                    }
                }
            }
            // Inclusion: L1D ∪ L1I ⊆ L2.
            for l in hier.l1d().resident_addrs() {
                prop_assert!(hier.l2().contains(l), "L1D line {l:?} missing from L2");
            }
            for l in hier.l1i().resident_addrs() {
                prop_assert!(hier.l2().contains(l), "L1I line {l:?} missing from L2");
            }
        }
        // Drain everything.
        let start = now;
        while !(hier.is_idle() && channels.iter().all(|c| c.is_idle())) {
            step(&mut hier, &mut channels, &mut now, &mut wakeups);
            prop_assert!(now < start + 2_000_000, "hierarchy did not drain");
        }
        prop_assert_eq!(wakeups, expected_wakeups, "every pending demand wakes exactly once");
    }
}

/// Capacity pressure is observable end to end: a single mcf (footprint
/// larger than Heter config1's 4 MB RLDRAM tier) prefaults through
/// first-touch, drains RLDRAM completely, and every sampled telemetry
/// window reports its `free_frames.RLDRAM` gauge at exactly 0 — not
/// merely "small" — while the HBM and LPDDR2 pools keep the leftovers.
#[test]
fn free_frame_gauges_hit_exactly_zero_when_fast_tiers_drain() {
    use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
    use moca_sim::system::{AppLaunch, System};
    use moca_telemetry::{RingSink, Telemetry};
    use moca_vm::policy::FirstTouchPolicy;
    use moca_workloads::{app_by_name, InputSet};

    let cfg = SystemConfig::single_core(MemSystemConfig::Heterogeneous(
        HeterogeneousLayout::config1(),
    ));
    let launches = vec![AppLaunch::untyped(
        app_by_name("mcf"),
        InputSet::reference(),
    )];
    let tel = Telemetry::with_sink(Box::new(RingSink::new(100_000))).with_window(10_000);
    let mut sys = System::new_with_telemetry(cfg, launches, Box::new(FirstTouchPolicy), tel);

    // Frame-space ground truth first: first-touch fills front to back, so
    // the small fast region is gone before the run even starts.
    let frames = sys.os().frames();
    let rl = frames.free_of_kind(moca_common::ModuleKind::Rldram3);
    let hbm = frames.free_of_kind(moca_common::ModuleKind::Hbm);
    let lp = frames.free_of_kind(moca_common::ModuleKind::Lpddr2);
    assert_eq!(rl, 0, "mcf's footprint should exhaust RLDRAM at startup");
    assert!(hbm > 0, "HBM should keep headroom for a single mcf");
    assert!(lp > 0, "LPDDR2 must retain headroom (machine fits mcf)");

    let r = sys.run(30_000);
    assert!(r.runtime_cycles > 0);
    let mut tel = sys.take_telemetry();
    let windows = tel.registry.windows();
    assert!(!windows.is_empty(), "run closed no sampling windows");
    let gauge = |w: &moca_telemetry::WindowSnapshot, name: &str| -> f64 {
        w.samples
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("window missing {name} gauge"))
            .1
    };
    for w in windows {
        assert_eq!(gauge(w, "free_frames.RLDRAM"), 0.0, "RLDRAM gauge not 0");
        assert!(gauge(w, "free_frames.HBM") > 0.0, "HBM gauge drained");
        assert!(gauge(w, "free_frames.LPDDR2") > 0.0, "LPDDR2 drained");
    }
    let _ = tel.drain_events();
}
