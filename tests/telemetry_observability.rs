//! Observability integration tests: telemetry must not perturb the
//! simulation, windowed metrics must be captured, and the exported trace
//! must be valid Chrome-trace JSON.

use moca::pipeline::{Pipeline, PolicyKind};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_telemetry::{write_chrome_trace, JsonlSink, RingSink, Telemetry};
use serde_json::Value;
use std::path::PathBuf;

fn heter() -> MemSystemConfig {
    MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1())
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moca-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Key determinism guarantee: a run with full telemetry produces
/// bit-identical simulation results to a run with telemetry disabled.
#[test]
fn telemetry_on_and_off_give_bit_identical_results() {
    let fingerprint = |tel: Telemetry| {
        let mut p = Pipeline::quick();
        let (r, tel) = p.evaluate_with_telemetry(&["mcf"], heter(), PolicyKind::Moca, tel);
        (
            (
                r.runtime_cycles,
                r.mem.reads,
                r.mem.total_read_latency_cycles,
                r.per_core[0].stats.committed,
                r.placement.total_pages(),
            ),
            tel,
        )
    };
    let (off, _) = fingerprint(Telemetry::disabled());
    let (on, tel) = fingerprint(
        Telemetry::with_sink(Box::new(RingSink::new(100_000)))
            .with_window(10_000)
            .with_host_profiling(),
    );
    assert_eq!(off, on, "telemetry must not perturb the simulation");
    assert!(tel.events_recorded() > 0, "instrumented run saw no events");
}

/// The traced run records the event kinds the instrumentation promises:
/// page faults and placements always happen, windows get sampled, and the
/// DRAM read-latency histogram fills.
#[test]
fn instrumented_run_captures_events_windows_and_histograms() {
    let mut p = Pipeline::quick();
    let tel = Telemetry::with_sink(Box::new(RingSink::new(100_000))).with_window(10_000);
    let (r, mut tel) = p.evaluate_with_telemetry(&["mcf"], heter(), PolicyKind::Moca, tel);
    assert!(r.runtime_cycles > 0);

    let faults = tel.registry.counter_value_by_name("events.page_fault");
    let placements = tel.registry.counter_value_by_name("events.placement");
    assert!(faults.unwrap_or(0) > 0, "no page-fault events counted");
    assert!(placements.unwrap_or(0) > 0, "no placement events counted");
    assert_eq!(
        faults, placements,
        "every page fault must be resolved by exactly one placement"
    );

    assert!(
        !tel.registry.windows().is_empty(),
        "a {}-cycle run should close at least one 10k-cycle window",
        r.runtime_cycles
    );
    let w = &tel.registry.windows()[0];
    assert!(w.end > w.start);
    assert!(
        w.samples.iter().any(|(k, _)| k == "ipc.core0"),
        "window samples must include per-core IPC"
    );
    assert!(
        w.samples.iter().any(|(k, _)| k.starts_with("free_frames.")),
        "window samples must include frame-pool headroom"
    );
    assert!(
        w.samples.iter().any(|(k, _)| k.starts_with("bank_act.ch")),
        "window samples must include per-bank occupancy tracks"
    );
    // One track per bank of every channel: config1 is RLDRAM(16) + HBM(64)
    // + 2x LPDDR2(8) banks.
    let bank_tracks = w
        .samples
        .iter()
        .filter(|(k, _)| k.starts_with("bank_act."))
        .count();
    assert_eq!(bank_tracks, 16 + 64 + 8 + 8, "one track per bank");
    // Activates happen somewhere in a real run's first window.
    assert!(
        tel.registry
            .windows()
            .iter()
            .flat_map(|w| w.samples.iter())
            .any(|(k, v)| k.starts_with("bank_act.") && *v > 0.0),
        "some bank must record activates"
    );

    let h = tel
        .registry
        .histogram_by_name("dram.read_latency_cycles")
        .expect("read-latency histogram registered");
    assert!(h.count() > 0, "no read latencies observed");
    assert!(h.mean().unwrap() > 0.0);
    assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());

    let events = tel.drain_events();
    assert!(!events.is_empty());
    assert!(
        events.windows(2).all(|p| p[0].at <= p[1].at),
        "drained events must be cycle-ordered"
    );
}

/// The exported file is valid Chrome-trace JSON: a `traceEvents` array where
/// every element carries `name`/`ph`/`pid`, with the phases we emit.
#[test]
fn exported_trace_is_valid_chrome_trace_json() {
    let mut p = Pipeline::quick();
    p.classified("mcf"); // profile + classify so verdicts exist before the run
    let mut tel = Telemetry::with_sink(Box::new(RingSink::new(100_000))).with_window(10_000);
    p.emit_classifications(&mut tel);
    let (_, mut tel) = p.evaluate_with_telemetry(&["mcf"], heter(), PolicyKind::Moca, tel);

    let path = scratch("trace.json");
    write_chrome_trace(&path, &tel.drain_events(), &tel.registry, None).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let root = serde_json::parse(&text).expect("trace must be parseable JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(Value::as_str),
        Some("ns")
    );
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 10, "trace should not be trivially empty");

    let mut seen_instant = false;
    let mut seen_counter = false;
    for ev in events {
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        assert!(ev.get("pid").is_some());
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        assert!(
            matches!(ph, "M" | "i" | "C" | "X"),
            "unexpected phase {ph:?}"
        );
        match ph {
            "i" => {
                seen_instant = true;
                assert!(ev.get("ts").is_some(), "instant events need a timestamp");
            }
            "C" => seen_counter = true,
            _ => {}
        }
    }
    assert!(seen_instant, "trace must contain instant (event) entries");
    assert!(seen_counter, "trace must contain counter entries");
    assert!(
        events.iter().any(|ev| {
            ev.get("ph").and_then(Value::as_str) == Some("C")
                && ev
                    .get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| n.starts_with("bank_act.ch"))
        }),
        "trace must contain per-bank occupancy counter tracks"
    );

    // Classification verdicts from the pre-run emit land at cycle 0.
    assert!(events
        .iter()
        .any(|ev| { ev.get("name").and_then(Value::as_str) == Some("classification_verdict") }));
}

/// The JSONL sink streams one JSON object per line while the run progresses.
#[test]
fn jsonl_sink_streams_during_a_real_run() {
    let path = scratch("events.jsonl");
    let sink = JsonlSink::create(&path).unwrap();
    let mut p = Pipeline::quick();
    let tel = Telemetry::with_sink(Box::new(sink));
    let (_, mut tel) = p.evaluate_with_telemetry(&["mcf"], heter(), PolicyKind::Moca, tel);
    tel.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = 0;
    for line in text.lines() {
        let v = serde_json::parse(line).expect("each line must be a JSON object");
        assert!(v.get("at").is_some(), "timed events carry a cycle stamp");
        assert!(v.get("event").is_some());
        lines += 1;
    }
    assert!(lines > 0, "no events streamed to the JSONL file");
}
