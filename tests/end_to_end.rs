//! Cross-crate integration tests: the full profile → classify → allocate
//! pipeline on real workloads, checking the paper's directional results.

use moca::pipeline::{Pipeline, PolicyKind};
use moca_common::{ModuleKind, ObjectClass};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn heter() -> MemSystemConfig {
    MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1())
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let mut p = Pipeline::quick();
        let r = p.evaluate(&["mcf", "lbm"], heter(), PolicyKind::Moca);
        (
            r.runtime_cycles,
            r.mem.reads,
            r.mem.total_read_latency_cycles,
            r.per_core[0].stats.committed,
            r.placement.total_pages(),
        )
    };
    assert_eq!(run(), run(), "identical seeds must give identical results");
}

#[test]
fn homogeneous_systems_order_as_expected() {
    // §VI-A: Homogen-RL has the lowest access time, Homogen-LP the worst
    // performance but lower energy than RL.
    let mut p = Pipeline::quick();
    let mut results = Vec::new();
    for kind in [ModuleKind::Rldram3, ModuleKind::Ddr3, ModuleKind::Lpddr2] {
        let r = p.evaluate(
            &["mcf"],
            MemSystemConfig::Homogeneous(kind),
            PolicyKind::Homogeneous,
        );
        results.push((kind, r));
    }
    let time = |i: usize| results[i].1.mem.total_read_latency_cycles;
    assert!(time(0) < time(1), "RLDRAM should beat DDR3 on access time");
    assert!(time(1) < time(2), "DDR3 should beat LPDDR2 on access time");
    let energy = |i: usize| results[i].1.mem.energy_j();
    assert!(
        energy(2) < energy(0),
        "LPDDR2 must consume less memory energy than RLDRAM"
    );
}

#[test]
fn moca_beats_heter_app_on_memory_for_latency_app() {
    // The §VI-A disparity story: Heter-App fills RLDRAM first-come, MOCA
    // reserves it for the latency-critical object.
    let mut p = Pipeline::quick();
    let ha = p.evaluate(&["disparity"], heter(), PolicyKind::HeterApp);
    let mo = p.evaluate(&["disparity"], heter(), PolicyKind::Moca);
    assert!(
        mo.mem.total_read_latency_cycles < ha.mem.total_read_latency_cycles,
        "MOCA {} vs Heter-App {}",
        mo.mem.total_read_latency_cycles,
        ha.mem.total_read_latency_cycles
    );
}

#[test]
fn moca_saves_memory_energy_for_quiet_heavy_mix() {
    // Heter-App sends every page of an L-app to RLDRAM/HBM; MOCA keeps the
    // quiet objects in LPDDR2, saving energy (§VI-B).
    let mut p = Pipeline::quick();
    let apps = ["milc", "gcc"];
    let ha = p.evaluate(&apps, heter(), PolicyKind::HeterApp);
    let mo = p.evaluate(&apps, heter(), PolicyKind::Moca);
    assert!(
        mo.mem.edp() < ha.mem.edp(),
        "MOCA EDP {:.3e} vs Heter-App {:.3e}",
        mo.mem.edp(),
        ha.mem.edp()
    );
}

#[test]
fn moca_reserves_rldram_for_latency_objects() {
    let mut p = Pipeline::quick();
    let r = p.evaluate(&["mcf"], heter(), PolicyKind::Moca);
    let app = moca_common::AppId(0);
    // RLDRAM holds latency-class pages only (other classes never prefer it
    // while HBM/LPDDR2 still have room, which they do for one app).
    let lat_on_rl = r.placement.pages_of_class(
        app,
        Some(ObjectClass::LatencySensitive),
        ModuleKind::Rldram3,
    );
    let bw_on_rl = r.placement.pages_of_class(
        app,
        Some(ObjectClass::BandwidthSensitive),
        ModuleKind::Rldram3,
    );
    let pow_on_rl =
        r.placement
            .pages_of_class(app, Some(ObjectClass::NonIntensive), ModuleKind::Rldram3);
    assert!(lat_on_rl > 0, "latency objects should reach RLDRAM");
    assert_eq!(bw_on_rl, 0);
    assert_eq!(pow_on_rl, 0);
}

#[test]
fn capacity_pressure_triggers_fallback_allocation() {
    // mcf's latency objects exceed the 4 MiB (scaled) RLDRAM module; the
    // overflow must land on the next-best module, not fail.
    let mut p = Pipeline::quick();
    let r = p.evaluate(&["mcf"], heter(), PolicyKind::Moca);
    let app = moca_common::AppId(0);
    let lat_rl = r.placement.pages_of_class(
        app,
        Some(ObjectClass::LatencySensitive),
        ModuleKind::Rldram3,
    );
    let lat_hbm =
        r.placement
            .pages_of_class(app, Some(ObjectClass::LatencySensitive), ModuleKind::Hbm);
    assert!(lat_rl > 0);
    assert!(
        lat_hbm > 0,
        "latency overflow should fall back to HBM (RL={lat_rl}, HBM={lat_hbm})"
    );
    // RLDRAM is fully used before falling back.
    let rl_frames = 256 * 1024 * 1024 / 64 / 4096; // 256 MiB / 64 scale / page
    assert!(
        lat_rl >= rl_frames - 1,
        "RLDRAM should be (nearly) full: {lat_rl} of {rl_frames}"
    );
}

#[test]
fn multicore_run_produces_consistent_metrics() {
    let mut p = Pipeline::quick();
    let r = p.evaluate(&["mcf", "lbm", "gcc", "sift"], heter(), PolicyKind::Moca);
    assert_eq!(r.per_core.len(), 4);
    // Every core reached the instruction target.
    for c in &r.per_core {
        assert!(c.stats.committed >= 150_000, "{} short run", c.app);
        assert!(c.finished_at <= r.runtime_cycles);
    }
    // Latency sums are attributed per core and total to the global sum.
    let per_core_sum: u64 = r.mem.per_core_read_latency.iter().sum();
    assert_eq!(per_core_sum, r.mem.total_read_latency_cycles);
    // Energy is positive and dominated by standby+active, not NaN.
    assert!(r.mem.energy_j() > 0.0);
    assert!(r.system_edp() > 0.0);
    assert!(r.avg_core_power_w() > 5.0 && r.avg_core_power_w() < 30.0);
}

#[test]
fn training_vs_reference_inputs_change_behaviour_not_classes() {
    // The profiling-based approach relies on classes being stable across
    // inputs (§III). Profile with both inputs and compare classification.
    use moca::classify::{classify_lut, AppThresholds, Thresholds};
    use moca::profile::{profile_app, ProfileConfig};
    use moca_workloads::{app_by_name, InputSet};
    for app in ["mcf", "lbm", "gcc"] {
        let spec = app_by_name(app);
        let train = profile_app(&spec, InputSet::training(), &ProfileConfig::quick());
        let reference = profile_app(&spec, InputSet::reference(), &ProfileConfig::quick());
        let ct = classify_lut(&train, Thresholds::default(), AppThresholds::default());
        let cr = classify_lut(&reference, Thresholds::default(), AppThresholds::default());
        assert_eq!(
            ct.object_classes, cr.object_classes,
            "{app}: classes must be input-stable"
        );
        // But the raw statistics differ (different seeds).
        assert_ne!(
            train.objects[0].llc_misses, reference.objects[0].llc_misses,
            "{app}: inputs should not be identical"
        );
    }
}

#[test]
fn migration_baseline_promotes_hot_pages() {
    // The §IV-E counterpoint: a runtime monitor starting cold in LPDDR2
    // must discover and promote the hot pages MOCA placed correctly from
    // its offline profile.
    let mut p = Pipeline::quick();
    let r = p.evaluate(&["disparity"], heter(), PolicyKind::Migration);
    let stats = r.migration.expect("migration enabled");
    assert!(stats.epochs >= 2, "epochs {}", stats.epochs);
    assert!(stats.promotions > 0, "no pages promoted");
    // Migration must pay real costs: invalidations produce writebacks.
    assert!(stats.dirty_writebacks > 0);
    // And it still runs correctly to completion.
    assert!(r.per_core[0].stats.committed >= 150_000);
}

#[test]
fn migration_is_deterministic() {
    let run = || {
        let mut p = Pipeline::quick();
        let r = p.evaluate(&["mcf"], heter(), PolicyKind::Migration);
        let m = r.migration.unwrap();
        (
            r.runtime_cycles,
            m.promotions,
            m.demotions,
            m.dirty_writebacks,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn moca_needs_no_migration_machinery() {
    let mut p = Pipeline::quick();
    let r = p.evaluate(&["disparity"], heter(), PolicyKind::Moca);
    assert!(r.migration.is_none(), "MOCA is allocation-only (§IV-E)");
}
