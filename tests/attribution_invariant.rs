//! Attribution invariant gate: the CPI-stack accountant must *partition*
//! core cycles and *reconcile* with the classifier's inputs on every
//! memory system the simulator can describe.
//!
//! Mirrors the golden-digest workload (quad-core mcf/lbm/gcc/sift, 12k
//! instructions per core, first-touch placement, all seven memory systems)
//! but runs it with attribution enabled and checks, per core:
//!
//! 1. **Exclusivity / completeness** — the six CPI-stack buckets are
//!    mutually exclusive and sum *exactly* to the core's total cycles.
//! 2. **Bucket ↔ legacy-counter agreement** — `load_miss` equals the
//!    pipeline's ROB-head stall counter, and `rob_full` never exceeds the
//!    pipeline's `rob_full_cycles` (the bucket is the exclusive remainder
//!    after higher-priority charges).
//! 3. **Object-ledger reconciliation** — each named object's attributed
//!    stall equals its `rob_head_stall_cycles` in the classifier's per-tag
//!    table (the numerator of §III-A's stall-per-miss input), and the
//!    whole ledger sums back to the `load_miss` bucket.
//! 4. **Observer effect: none** — the same run with attribution disabled
//!    produces identical cycles, commits, and stall counters.

use moca_common::{ModuleKind, Segment};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
use moca_sim::system::{AppLaunch, System};
use moca_vm::policy::FirstTouchPolicy;
use moca_workloads::{app_by_name, InputSet};

const INSTR_TARGET: u64 = 12_000;

fn all_mem_systems() -> Vec<(&'static str, MemSystemConfig)> {
    vec![
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter-config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter-config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter-config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ]
}

fn run(mem: MemSystemConfig, attribution: bool) -> moca_sim::RunResult {
    let cfg = SystemConfig::quad_core(mem);
    let launches = ["mcf", "lbm", "gcc", "sift"]
        .iter()
        .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
        .collect();
    let mut sys = System::new(cfg, launches, Box::new(FirstTouchPolicy));
    if attribution {
        sys.enable_attribution();
    }
    sys.run(INSTR_TARGET)
}

#[test]
fn buckets_partition_cycles_and_ledger_reconciles_on_all_seven_configs() {
    for (name, mem) in all_mem_systems() {
        let res = run(mem, true);
        for (ci, core) in res.per_core.iter().enumerate() {
            let attr = core
                .attr
                .as_ref()
                .unwrap_or_else(|| panic!("{name} core {ci}: no attribution snapshot"));
            let b = &attr.buckets;

            // 1. Exclusive buckets partition the cycle count exactly.
            assert_eq!(
                b.total(),
                core.stats.cycles,
                "{name} core {ci}: buckets {:?} do not sum to {} cycles",
                b,
                core.stats.cycles
            );

            // 2. The load-miss bucket is the ROB-head stall counter, cycle
            // for cycle; the rob_full bucket is a subset of the legacy
            // counter (head-miss cycles take priority).
            assert_eq!(
                b.load_miss, core.stats.head_stall_cycles,
                "{name} core {ci}: load_miss bucket disagrees with head_stall_cycles"
            );
            assert!(
                b.rob_full <= core.stats.rob_full_cycles,
                "{name} core {ci}: rob_full bucket {} exceeds pipeline counter {}",
                b.rob_full,
                core.stats.rob_full_cycles
            );

            // 3. Per-object reconciliation with the classifier's inputs:
            // what explain attributes to an object is exactly the
            // rob_head_stall_cycles the offline classifier divides by
            // misses to get stall-per-miss.
            let mut ledger_total = 0u64;
            for (id, tag_attr) in attr.tags.iter_objects() {
                let expect = core.stats.tags.object(id).rob_head_stall_cycles;
                assert_eq!(
                    tag_attr.total_stall(),
                    expect,
                    "{name} core {ci} object {id:?}: attributed stall disagrees \
                     with the classifier's rob_head_stall_cycles"
                );
                ledger_total += tag_attr.total_stall();
            }
            for seg in [Segment::Code, Segment::Data, Segment::Stack] {
                let got = attr.tags.segment(seg).total_stall();
                let expect = core.stats.tags.segment(seg).rob_head_stall_cycles;
                assert_eq!(
                    got, expect,
                    "{name} core {ci} segment {seg:?}: attributed stall disagrees"
                );
                ledger_total += got;
            }
            assert_eq!(
                ledger_total, b.load_miss,
                "{name} core {ci}: object ledger does not sum to the load_miss bucket"
            );
        }

        // The occupancy timeline exists, is non-empty, and is ordered.
        let occ = res
            .occupancy
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no occupancy timeline"));
        assert!(!occ.is_empty(), "{name}: empty occupancy timeline");
        assert!(
            occ.windows(2).all(|w| w[0].at <= w[1].at),
            "{name}: occupancy samples out of order"
        );
    }
}

#[test]
fn attribution_is_a_pure_observer() {
    // One homogeneous and one heterogeneous machine suffice here — the
    // seven-config digest gate already pins attribution-off behaviour.
    for mem in [
        MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
    ] {
        let plain = run(mem, false);
        let attr = run(mem, true);
        assert_eq!(plain.runtime_cycles, attr.runtime_cycles);
        assert!(plain.per_core.iter().all(|c| c.attr.is_none()));
        assert!(plain.occupancy.is_none());
        for (p, a) in plain.per_core.iter().zip(attr.per_core.iter()) {
            assert_eq!(p.stats.committed, a.stats.committed);
            assert_eq!(p.stats.cycles, a.stats.cycles);
            assert_eq!(p.stats.head_stall_cycles, a.stats.head_stall_cycles);
            assert_eq!(p.finished_at, a.finished_at);
        }
    }
}
