//! Property-based tests on the OS-level allocation structures: frame
//! allocation, the typed heap layout, page tables, and the placement
//! policies.

use moca::policy::MocaPolicy;
use moca_common::addr::{VirtAddr, PAGE_SIZE};
use moca_common::{AppId, ModuleKind, ObjectClass};
use moca_vm::frames::{regions_from_capacities, FrameSpace};
use moca_vm::layout::{heap_class_of_va, HeapLayout, PageIntent};
use moca_vm::policy::{preference_order, PagePlacementPolicy};
use moca_vm::{PageTable, Tlb};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ObjectClass> {
    prop_oneof![
        Just(ObjectClass::LatencySensitive),
        Just(ObjectClass::BandwidthSensitive),
        Just(ObjectClass::NonIntensive),
    ]
}

fn small_frame_space() -> FrameSpace {
    FrameSpace::new(regions_from_capacities(&[
        (ModuleKind::Rldram3, 0, 8 * PAGE_SIZE),
        (ModuleKind::Hbm, 1, 16 * PAGE_SIZE),
        (ModuleKind::Lpddr2, 2, 12 * PAGE_SIZE),
        (ModuleKind::Lpddr2, 3, 12 * PAGE_SIZE),
    ]))
}

proptest! {
    /// Every allocated frame is unique and within a region of the requested
    /// fallback chain; allocation only fails when the whole chain is full.
    #[test]
    fn frames_unique_and_chain_respected(classes in prop::collection::vec(arb_class(), 1..200)) {
        let mut fs = small_frame_space();
        let mut seen = std::collections::HashSet::new();
        for class in classes {
            let prefs = preference_order(class);
            let free_in_chain: u64 = prefs.iter().map(|&k| fs.free_of_kind(k)).sum();
            match fs.alloc_by_preference(&prefs) {
                Some((pfn, kind)) => {
                    prop_assert!(seen.insert(pfn), "frame {pfn} double-allocated");
                    prop_assert_eq!(fs.kind_of(pfn), Some(kind));
                    // The chosen kind is the first in the chain that had
                    // room at allocation time.
                    for &earlier in prefs.iter().take_while(|&&k| k != kind) {
                        prop_assert_eq!(fs.free_of_kind(earlier), 0,
                            "skipped {:?} while it had free frames", earlier);
                    }
                }
                None => prop_assert_eq!(free_in_chain, 0, "failed with space available"),
            }
        }
    }

    /// Freed frames are reused and never double-handed-out.
    #[test]
    fn free_then_realloc_is_consistent(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut fs = small_frame_space();
        let mut live: Vec<u64> = Vec::new();
        for alloc in ops {
            if alloc || live.is_empty() {
                if let Some((pfn, _)) = fs.alloc_by_preference(&preference_order(ObjectClass::NonIntensive)) {
                    prop_assert!(!live.contains(&pfn));
                    live.push(pfn);
                }
            } else {
                let pfn = live.swap_remove(live.len() / 2);
                fs.free(pfn);
            }
        }
    }

    /// Typed-heap allocations are disjoint, 64-byte aligned, and their class
    /// is recoverable from any address within the allocation.
    #[test]
    fn heap_layout_allocations_disjoint(reqs in prop::collection::vec((arb_class(), 1u64..100_000), 1..60)) {
        let mut layout = HeapLayout::new();
        let mut ranges: Vec<(u64, u64, ObjectClass)> = Vec::new();
        for (class, size) in reqs {
            let base = layout.alloc_heap(class, size);
            prop_assert_eq!(base.0 % 64, 0);
            for &(s, e, _) in &ranges {
                prop_assert!(base.0 + size <= s || base.0 >= e, "overlap");
            }
            prop_assert_eq!(heap_class_of_va(base), Some(class));
            prop_assert_eq!(heap_class_of_va(VirtAddr(base.0 + size - 1)), Some(class));
            ranges.push((base.0, base.0 + size, class));
        }
    }

    /// Page-table translations preserve offsets and never alias two vpns to
    /// overlapping behaviours after unmap/remap.
    #[test]
    fn page_table_roundtrip(pairs in prop::collection::vec((0u64..1000, 0u64..1000), 1..100)) {
        let mut pt = PageTable::new();
        let mut shadow = std::collections::HashMap::new();
        for (vpn, pfn) in pairs {
            if shadow.contains_key(&vpn) {
                pt.unmap(vpn);
            }
            pt.map(vpn, pfn);
            shadow.insert(vpn, pfn);
        }
        for (vpn, pfn) in &shadow {
            prop_assert_eq!(pt.translate_vpn(*vpn), Some(*pfn));
            let va = VirtAddr(vpn * PAGE_SIZE + 0x123);
            prop_assert_eq!(pt.translate(va).unwrap().0 & 0xfff, 0x123);
        }
        prop_assert_eq!(pt.mapped_pages(), shadow.len());
    }

    /// The TLB never returns a translation that was not inserted, and its
    /// hit results always match the latest insert.
    #[test]
    fn tlb_is_a_cache_of_truth(ops in prop::collection::vec((0u64..40, 0u64..1000), 1..200)) {
        let mut tlb = Tlb::new(8);
        let mut truth = std::collections::HashMap::new();
        for (vpn, pfn) in ops {
            if let Some(got) = tlb.lookup(vpn) {
                prop_assert_eq!(Some(&got), truth.get(&vpn));
            }
            tlb.insert(vpn, pfn);
            truth.insert(vpn, pfn);
        }
    }

    /// MOCA's policy always produces a frame while memory remains, and heap
    /// pages land on the class-preferred module until it is exhausted.
    #[test]
    fn moca_policy_total_until_oom(classes in prop::collection::vec(arb_class(), 1..48)) {
        let mut fs = small_frame_space();
        let mut policy = MocaPolicy;
        for class in classes {
            let preferred = preference_order(class)[0];
            let had_preferred = fs.free_of_kind(preferred) > 0;
            let pfn = policy
                .place(AppId(0), PageIntent::Heap(class), &mut fs)
                .expect("memory not exhausted");
            if had_preferred {
                prop_assert_eq!(fs.kind_of(pfn), Some(preferred));
            }
        }
    }
}

#[test]
fn moca_policy_exhausts_exactly_total_frames() {
    let mut fs = small_frame_space();
    let total = fs.total_frames();
    let mut policy = MocaPolicy;
    let mut got = 0;
    while policy
        .place(
            AppId(0),
            PageIntent::Heap(ObjectClass::NonIntensive),
            &mut fs,
        )
        .is_some()
    {
        got += 1;
        assert!(got <= total, "handed out more frames than exist");
    }
    assert_eq!(got, total);
}

/// Capacity-exhaustion sweep: draining a hybrid machine through one class's
/// fallback chain visits the module kinds in exactly the §IV-D preference
/// order (restricted to present kinds), each kind switch happens only once
/// every earlier kind in the chain reads zero headroom, and the drain ends
/// with every gauge at exactly 0.
#[test]
fn preference_fallback_drains_hybrid_configs_in_paper_order() {
    use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

    let configs = [
        ("config1", HeterogeneousLayout::config1()),
        ("config2", HeterogeneousLayout::config2()),
        ("config3", HeterogeneousLayout::config3()),
    ];
    let classes = [
        ObjectClass::LatencySensitive,
        ObjectClass::BandwidthSensitive,
        ObjectClass::NonIntensive,
    ];
    for (cname, layout) in configs {
        for class in classes {
            let mem = MemSystemConfig::Heterogeneous(layout);
            let mut fs =
                FrameSpace::new(mem.frame_regions(moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE));
            let total = fs.total_frames();
            let prefs = preference_order(class);
            let mut kind_order: Vec<ModuleKind> = Vec::new();
            let mut allocated = 0u64;
            while let Some((pfn, kind)) = fs.alloc_by_preference(&prefs) {
                allocated += 1;
                assert!(allocated <= total, "{cname}/{class:?}: over-allocated");
                assert_eq!(
                    fs.kind_of(pfn),
                    Some(kind),
                    "{cname}/{class:?}: pfn/kind mismatch"
                );
                if kind_order.last() != Some(&kind) {
                    // A new kind may only be entered once every earlier
                    // kind in the chain is fully drained.
                    for &earlier in prefs.iter().take_while(|&&k| k != kind) {
                        assert_eq!(
                            fs.free_of_kind(earlier),
                            0,
                            "{cname}/{class:?}: switched to {kind} while {earlier} had frames"
                        );
                    }
                    kind_order.push(kind);
                }
            }
            assert_eq!(
                allocated, total,
                "{cname}/{class:?}: drain left frames behind"
            );
            // The kinds appear in chain order, restricted to present kinds
            // (no hybrid config has DDR3).
            let expect: Vec<ModuleKind> = prefs
                .iter()
                .copied()
                .filter(|&k| fs.regions().iter().any(|r| r.kind == k))
                .collect();
            assert_eq!(kind_order, expect, "{cname}/{class:?}: fallback order");
            // Exhaustion: every headroom gauge reads exactly 0.
            for (kind, free) in fs.headroom() {
                assert_eq!(free, 0, "{cname}/{class:?}: {kind} not drained");
            }
            assert!(fs.alloc_by_preference(&prefs).is_none());
            fs.check_invariants().unwrap();
        }
    }
}
