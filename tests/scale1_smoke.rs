//! Scale=1 smoke: the full (unscaled) mcf footprint against the bitmap
//! frame allocator.
//!
//! The default evaluation runs at capacity_scale = 1/64, where even the
//! old freed-Vec allocator was harmless. This battery allocates and frees
//! mcf's full paper-sized footprint on a full-capacity DDR3 machine —
//! hundreds of thousands of frames — and checks the two properties the
//! hierarchical bitmap was built for:
//!
//! 1. allocator bookkeeping stays O(total_frames/8) bytes through arbitrary
//!    churn (bitmap-bounded, not freed-Vec-bounded);
//! 2. the allocation order is deterministic, pinned by a committed FNV
//!    digest.

use moca_common::{ModuleKind, PAGE_SIZE};
use moca_sim::config::MemSystemConfig;
use moca_vm::frames::FrameSpace;
use moca_workloads::gen::scaled_sizes;
use moca_workloads::{app_by_name, InputSet};

/// FNV-1a over a pfn sequence.
fn fnv1a(pfns: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in pfns {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// mcf's full footprint in pages at scale 1: heap objects + code + stack.
fn mcf_scale1_pages() -> u64 {
    let spec = app_by_name("mcf");
    let heap: u64 = scaled_sizes(&spec, InputSet::reference(), 1.0)
        .iter()
        .map(|sz| sz.div_ceil(PAGE_SIZE))
        .sum();
    let code = spec.code_bytes.div_ceil(PAGE_SIZE);
    let stack = spec.stack_working_set.max(16 * 1024).div_ceil(PAGE_SIZE);
    heap + code + stack
}

/// Committed digest of the full-footprint allocation order. Captured from
/// the allocator as of this test's introduction; moves only when the
/// externally observable allocation order moves.
const SCALE1_ALLOC_DIGEST: u64 = 0x28e0976b1da16dd4;

#[test]
fn full_mcf_footprint_allocates_frees_and_stays_bitmap_bounded() {
    let mem = MemSystemConfig::Homogeneous(ModuleKind::Ddr3);
    let mut fs = FrameSpace::new(mem.frame_regions(1.0));
    let total_frames = fs.total_frames();
    let pages = mcf_scale1_pages();
    assert!(
        pages > 100_000,
        "mcf at scale 1 should need hundreds of thousands of pages, got {pages}"
    );
    assert!(
        pages <= total_frames,
        "mcf ({pages} pages) must fit the full-capacity machine ({total_frames} frames)"
    );

    // Allocate the full footprint, then free every frame (interleaved
    // even/odd to force worst-case simultaneous-free pressure on the old
    // freed-Vec design), then reallocate half of it.
    let pfns: Vec<u64> = (0..pages)
        .map(|i| {
            fs.alloc_by_preference(&[ModuleKind::Ddr3])
                .unwrap_or_else(|| panic!("allocation {i} of {pages} failed"))
                .0
        })
        .collect();
    let digest = fnv1a(pfns.iter().copied());
    let mut peak = fs.alloc_bytes();
    for &pfn in pfns.iter().step_by(2).chain(pfns.iter().skip(1).step_by(2)) {
        fs.free(pfn);
        peak = peak.max(fs.alloc_bytes());
    }
    assert_eq!(fs.free_in_region(0), total_frames);
    for _ in 0..pages / 2 {
        fs.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap();
        peak = peak.max(fs.alloc_bytes());
    }
    fs.check_invariants().unwrap();

    // Bitmap-bounded: bits (frames/8) + summary (frames/512) + the bounded
    // reuse cache, with 2x slack for Vec capacity rounding. The old design
    // held `pages` u64s (8 bytes each) in `freed` at the all-free point —
    // more than an order of magnitude over this budget.
    let budget = (total_frames / 4 + 64 * 1024) as usize;
    assert!(
        peak < budget,
        "peak allocator bookkeeping {peak} B exceeds bitmap budget {budget} B \
         ({total_frames} frames; freed-Vec-style growth?)"
    );

    assert_eq!(
        digest, SCALE1_ALLOC_DIGEST,
        "scale=1 allocation order changed; if intentional update SCALE1_ALLOC_DIGEST to {digest:#018x}"
    );
}
