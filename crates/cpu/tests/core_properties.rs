//! Property-based tests of the out-of-order core: for arbitrary instruction
//! streams and memory-latency behaviours, the pipeline retires everything
//! exactly once, respects its structural limits, and keeps its statistics
//! consistent.

use moca_common::ids::MemTag;
use moca_common::{CoreId, Cycle, ObjectId, VirtAddr};
use moca_cpu::{Core, CoreConfig, Instr, MemPort, MemReply, StoreReply};
use proptest::prelude::*;

/// Scriptable memory: per-load latency drawn from the test's latency list;
/// occasionally replies `Retry`; tracks peak outstanding.
struct ScriptedPort {
    latencies: Vec<u16>,
    cursor: usize,
    retry_every: usize,
    calls: usize,
    next_ticket: u64,
    inflight: Vec<(u64, Cycle)>,
    peak: usize,
}

impl ScriptedPort {
    fn new(latencies: Vec<u16>, retry_every: usize) -> ScriptedPort {
        ScriptedPort {
            latencies,
            cursor: 0,
            retry_every,
            calls: 0,
            next_ticket: 0,
            inflight: Vec::new(),
            peak: 0,
        }
    }

    fn drain(&mut self, now: Cycle, core: &mut Core) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].1 <= now {
                let (t, _) = self.inflight.swap_remove(i);
                core.complete(t, now);
            } else {
                i += 1;
            }
        }
    }
}

impl MemPort for ScriptedPort {
    fn load(&mut self, now: Cycle, _core: CoreId, _va: VirtAddr, _tag: MemTag) -> MemReply {
        self.calls += 1;
        if self.retry_every > 0 && self.calls.is_multiple_of(self.retry_every) {
            return MemReply::Retry { mshr_full: false };
        }
        let lat = self.latencies[self.cursor % self.latencies.len()] as Cycle;
        self.cursor += 1;
        if lat <= 2 {
            MemReply::Done { ready_at: now + 2 }
        } else {
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            self.inflight.push((ticket, now + lat));
            self.peak = self.peak.max(self.inflight.len());
            MemReply::Pending {
                ticket,
                primary: true,
            }
        }
    }

    fn store(&mut self, _now: Cycle, _core: CoreId, _va: VirtAddr, _tag: MemTag) -> StoreReply {
        StoreReply {
            primary_miss: false,
        }
    }

    fn ifetch(&mut self, now: Cycle, _core: CoreId, _va: VirtAddr) -> MemReply {
        MemReply::Done { ready_at: now }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Compute,
    Branch(bool),
    Load { obj: u8, dependent: bool },
    Store { obj: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Compute),
        1 => any::<bool>().prop_map(Op::Branch),
        3 => (0u8..4, any::<bool>()).prop_map(|(obj, dependent)| Op::Load { obj, dependent }),
        1 => (0u8..4).prop_map(|obj| Op::Store { obj }),
    ]
}

fn to_instr(op: &Op, i: usize) -> Instr {
    let va = VirtAddr(0x2000_0000 + (i as u64 % 4096) * 64);
    match op {
        Op::Compute => Instr::Compute,
        Op::Branch(m) => Instr::Branch {
            mispredict: *m,
            target: None,
        },
        Op::Load { obj, dependent } => Instr::Load {
            va,
            tag: MemTag::heap(ObjectId(*obj as u32)),
            dependent: *dependent,
            chain: *obj as u16,
        },
        Op::Store { obj } => Instr::Store {
            va,
            tag: MemTag::heap(ObjectId(*obj as u32)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every instruction commits exactly once, whatever the stream and
    /// latency mix; loads + stores + others account for all commits.
    #[test]
    fn everything_commits_exactly_once(
        ops in prop::collection::vec(arb_op(), 1..400),
        latencies in prop::collection::vec(1u16..120, 1..16),
        // 0 = never retry; >= 2 so a retried load eventually succeeds
        // (retry_every = 1 would be a port that never accepts anything).
        retry_every in prop_oneof![Just(0usize), 2usize..7],
    ) {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = ScriptedPort::new(latencies, retry_every);
        let n = ops.len() as u64;
        let loads = ops.iter().filter(|o| matches!(o, Op::Load { .. })).count() as u64;
        let stores = ops.iter().filter(|o| matches!(o, Op::Store { .. })).count() as u64;
        let mut stream = ops.iter().enumerate().map(|(i, o)| to_instr(o, i));
        let mut now = 0;
        while !core.finished() {
            now += 1;
            port.drain(now, &mut core);
            core.tick(now, &mut port, &mut stream);
            prop_assert!(now < 2_000_000, "did not drain");
        }
        prop_assert_eq!(core.stats().committed, n);
        prop_assert_eq!(core.stats().loads, loads);
        prop_assert_eq!(core.stats().stores, stores);
        // Tag attribution covers every memory access.
        let tag_accesses: u64 = core
            .stats()
            .tags
            .iter_objects()
            .map(|(_, s)| s.accesses)
            .sum();
        prop_assert_eq!(tag_accesses, loads + stores);
    }

    /// The load queue bounds outstanding misses regardless of stream shape.
    #[test]
    fn lq_bound_is_never_exceeded(
        ops in prop::collection::vec(arb_op(), 50..300),
        lq in 4usize..32,
    ) {
        let cfg = CoreConfig { lq_entries: lq, ..CoreConfig::default() };
        let mut core = Core::new(CoreId(0), cfg);
        let mut port = ScriptedPort::new(vec![90], 0);
        let mut stream = ops.iter().enumerate().map(|(i, o)| to_instr(o, i));
        let mut now = 0;
        while !core.finished() {
            now += 1;
            port.drain(now, &mut core);
            core.tick(now, &mut port, &mut stream);
            prop_assert!(port.peak <= lq, "peak {} > LQ {lq}", port.peak);
            prop_assert!(now < 2_000_000);
        }
    }

    /// IPC can never exceed the pipeline width, and cycles always cover at
    /// least `committed / width`.
    #[test]
    fn ipc_bounded_by_width(ops in prop::collection::vec(arb_op(), 10..300)) {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = ScriptedPort::new(vec![1, 40], 0);
        let mut stream = ops.iter().enumerate().map(|(i, o)| to_instr(o, i));
        let mut now = 0;
        while !core.finished() {
            now += 1;
            port.drain(now, &mut core);
            core.tick(now, &mut port, &mut stream);
            prop_assert!(now < 2_000_000);
        }
        prop_assert!(core.stats().ipc() <= 3.0 + 1e-9);
        prop_assert!(core.stats().cycles * 3 >= core.stats().committed);
    }

    /// Determinism: the same stream and port script give identical stats.
    #[test]
    fn replay_is_identical(ops in prop::collection::vec(arb_op(), 1..200)) {
        let run = || {
            let mut core = Core::new(CoreId(0), CoreConfig::default());
            let mut port = ScriptedPort::new(vec![3, 55, 17], 5);
            let mut stream = ops.iter().enumerate().map(|(i, o)| to_instr(o, i));
            let mut now = 0;
            while !core.finished() {
                now += 1;
                port.drain(now, &mut core);
                core.tick(now, &mut port, &mut stream);
                assert!(now < 2_000_000);
            }
            (
                core.stats().cycles,
                core.stats().head_stall_cycles,
                core.stats().mispredicts,
            )
        };
        prop_assert_eq!(run(), run());
    }
}
