//! The out-of-order engine.

use crate::instr::{Instr, InstrStream};
use crate::stats::CoreStats;
use moca_common::ids::MemTag;
use moca_common::{CoreId, Cycle, Segment, VirtAddr};
use moca_telemetry::attribution::{AttrSnapshot, CoreAttr, Mechanism};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Microarchitectural parameters (Table I defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Fetch/dispatch/issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Front-end redirect penalty on a branch mispredict (stands in for the
    /// tournament predictor + 4K BTB of Table I).
    pub mispredict_penalty: Cycle,
    /// Base of the code segment for synthesized fetch PCs.
    pub code_base: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 3,
            rob_entries: 84,
            lq_entries: 32,
            mispredict_penalty: 12,
            code_base: 0x0040_0000,
        }
    }
}

/// Reply of the memory hierarchy to a load or instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemReply {
    /// Serviced by a cache: data ready at `ready_at`.
    Done {
        /// Completion cycle.
        ready_at: Cycle,
    },
    /// LLC miss: the request went toward DRAM and will be completed via
    /// [`Core::complete`] with `ticket`.
    Pending {
        /// Token the hierarchy will complete with.
        ticket: u64,
        /// True if this allocated a new L2 MSHR (a *primary* miss — the
        /// event hardware LLC-miss counters count); false when merged into
        /// an outstanding miss for the same line.
        primary: bool,
    },
    /// Structural hazard (MSHR or queue full): retry next cycle.
    Retry {
        /// True when the hazard was a full L2 MSHR file (as opposed to a
        /// full DRAM channel queue) — feeds the MSHR-full CPI bucket.
        mshr_full: bool,
    },
}

/// Reply to a store (fire-and-forget through the store buffer).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreReply {
    /// The store missed the LLC with a new MSHR allocation.
    pub primary_miss: bool,
}

/// Interface the core uses to reach its memory hierarchy.
pub trait MemPort {
    /// Issue a load.
    fn load(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> MemReply;
    /// Issue a store.
    fn store(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> StoreReply;
    /// Fetch an instruction line.
    fn ifetch(&mut self, now: Cycle, core: CoreId, va: VirtAddr) -> MemReply;
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    done: bool,
    ready_at: Cycle,
    is_load: bool,
    llc_miss: bool,
    tag: Option<MemTag>,
}

#[derive(Debug, Clone, Copy)]
struct WaitingLoad {
    seq: u64,
    va: VirtAddr,
    tag: MemTag,
    dep_seq: Option<u64>,
}

/// One simulated core.
pub struct Core {
    /// Core identifier (used on memory requests).
    pub id: CoreId,
    cfg: CoreConfig,
    rob: VecDeque<RobEntry>,
    waiting: Vec<WaitingLoad>,
    /// Outstanding miss tickets → ROB sequence numbers. A flat vector, not
    /// an ordered map: lookups are by exact ticket and the slot order is
    /// never observable, while the population (bounded by the L2 MSHR
    /// count) is small enough that a linear scan beats any tree.
    tickets: Vec<(u64, u64)>,
    ifetch_ticket: Option<u64>,
    lq_used: usize,
    next_seq: u64,
    /// Last load sequence number per dependence chain: an address-dependent
    /// load waits on the previous load *of its chain* (a pointer chase is
    /// one chain; unrelated loads interleaved by the OoO engine do not
    /// break it). Flat `(chain, seq)` pairs, exact-key lookups only.
    last_load_by_chain: Vec<(u16, u64)>,
    dispatch_blocked_until: Cycle,
    fetch_blocked_until: Cycle,
    pc: u64,
    fetched_line: u64,
    buffered: Option<Instr>,
    stream_done: bool,
    /// Cycle of the previous `tick` call, for event-skip-aware accounting.
    last_tick: Cycle,
    stats: CoreStats,
    /// CPI-stack attribution state; `None` (the default) costs one branch
    /// per tick and changes nothing else — runs are bit-identical.
    attr: Option<Box<CoreAttr>>,
}

impl Core {
    /// Build a core.
    pub fn new(id: CoreId, cfg: CoreConfig) -> Core {
        let pc = cfg.code_base;
        Core {
            id,
            cfg,
            rob: VecDeque::new(),
            waiting: Vec::new(),
            tickets: Vec::new(),
            ifetch_ticket: None,
            lq_used: 0,
            next_seq: 0,
            last_load_by_chain: Vec::new(),
            dispatch_blocked_until: 0,
            fetch_blocked_until: 0,
            pc,
            fetched_line: pc >> 6,
            buffered: None,
            stream_done: false,
            last_tick: 0,
            stats: CoreStats::default(),
            attr: None,
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Turn on CPI-stack attribution. Purely observational: the attributed
    /// buckets are computed from state the tick already inspects, so the
    /// simulated cycles are identical with or without it.
    pub fn enable_attribution(&mut self) {
        if self.attr.is_none() {
            self.attr = Some(Box::new(CoreAttr::new()));
        }
    }

    /// Current attribution state, if enabled.
    pub fn attr(&self) -> Option<&CoreAttr> {
        self.attr.as_deref()
    }

    /// Frozen attribution snapshot (pending stalls folded into the
    /// `unresolved` tier), if attribution is enabled.
    pub fn attr_snapshot(&self) -> Option<AttrSnapshot> {
        self.attr.as_deref().map(CoreAttr::snapshot)
    }

    /// Resolve the tier/mechanism of a completed load `ticket` (called by
    /// the system once the DRAM completion's serving channel is known).
    pub fn attr_resolve(&mut self, ticket: u64, tier: usize, mech: Mechanism) {
        if let Some(a) = self.attr.as_deref_mut() {
            a.resolve(ticket, tier, mech);
        }
    }

    /// Consume the statistics at end of run.
    pub fn into_stats(self) -> CoreStats {
        self.stats
    }

    /// Zero all statistics (end of a warmup/fast-forward phase, §V-A). The
    /// microarchitectural state (ROB contents, outstanding misses) is kept —
    /// only the counters restart.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        if let Some(a) = self.attr.as_deref_mut() {
            a.reset();
        }
    }

    /// Whether the program has fully drained.
    pub fn finished(&self) -> bool {
        self.stream_done && self.rob.is_empty() && self.buffered.is_none()
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Outstanding load/store-fill tickets as `(ticket, rob_seq)` pairs —
    /// the requests this core is waiting on. Evidence for the event-skip
    /// deadlock report.
    pub fn outstanding_tickets(&self) -> &[(u64, u64)] {
        &self.tickets
    }

    /// The outstanding instruction-fetch ticket, if any.
    pub fn pending_ifetch_ticket(&self) -> Option<u64> {
        self.ifetch_ticket
    }

    /// Sequence number of the ROB head (the instruction the core must
    /// commit next), if the ROB is non-empty.
    pub fn rob_head_seq(&self) -> Option<u64> {
        self.rob.front().map(|e| e.seq)
    }

    /// Occupied ROB entries.
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// Whether the core is quiescent waiting only on outstanding memory
    /// (used for event skipping): no commit/dispatch possible before the
    /// earliest outstanding completion.
    pub fn blocked_on_memory(&self, now: Cycle) -> bool {
        if self.finished() {
            return false;
        }
        // Any committable entry at the head?
        if let Some(h) = self.rob.front() {
            if h.done && h.ready_at <= now {
                return false;
            }
        }
        // Any waiting load that might issue (dependency resolved)?
        for w in &self.waiting {
            if self.dep_resolved(w.dep_seq, now) {
                return false;
            }
        }
        // Room to dispatch?
        if self.can_dispatch_something(now) {
            return false;
        }
        true
    }

    fn can_dispatch_something(&self, now: Cycle) -> bool {
        if self.stream_done && self.buffered.is_none() {
            return false;
        }
        if self.dispatch_blocked_until > now
            || self.fetch_blocked_until > now
            || self.ifetch_ticket.is_some()
        {
            return false;
        }
        self.rob.len() < self.cfg.rob_entries
    }

    /// Earliest future cycle at which this core could make progress without
    /// an external memory completion, or `None` if only a completion can
    /// unblock it.
    pub fn next_local_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            if c > now {
                best = Some(best.map_or(c, |b: Cycle| b.min(c)));
            }
        };
        if let Some(h) = self.rob.front() {
            if h.done {
                consider(h.ready_at);
            }
        }
        if self.dispatch_blocked_until > now {
            consider(self.dispatch_blocked_until);
        }
        if self.fetch_blocked_until > now {
            consider(self.fetch_blocked_until);
        }
        for w in &self.waiting {
            if let Some(dep) = w.dep_seq {
                if let Some(e) = self.find(dep) {
                    if e.done {
                        consider(e.ready_at);
                    }
                }
            }
        }
        best
    }

    /// Combined scheduler query for the event-skip path: `None` when the
    /// core can make progress at `now` (equivalent to
    /// `!blocked_on_memory(now)`); otherwise `Some(e)` where `e` is the
    /// earliest core-local cycle that could unblock it, or `Cycle::MAX`
    /// when only a memory completion can. One pass over the waiting set
    /// instead of the two that calling [`Core::blocked_on_memory`] and
    /// [`Core::next_local_event`] separately would take; debug builds
    /// cross-check against both.
    pub fn sleep_state(&self, now: Cycle) -> Option<Cycle> {
        let state = self.sleep_state_impl(now);
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                state.is_some(),
                self.blocked_on_memory(now),
                "sleep_state blocked-bit diverged from blocked_on_memory"
            );
            if state.is_some() {
                debug_assert_eq!(
                    state,
                    Some(self.next_local_event(now).unwrap_or(Cycle::MAX)),
                    "sleep_state wake cycle diverged from next_local_event"
                );
            }
        }
        state
    }

    fn sleep_state_impl(&self, now: Cycle) -> Option<Cycle> {
        if self.finished() {
            return None;
        }
        let mut next = Cycle::MAX;
        if let Some(h) = self.rob.front() {
            if h.done {
                if h.ready_at <= now {
                    return None; // committable head
                }
                next = next.min(h.ready_at);
            }
        }
        for w in &self.waiting {
            match w.dep_seq {
                None => return None, // issuable immediately
                Some(seq) => match self.find(seq) {
                    None => return None, // dependency already committed
                    Some(e) if e.done => {
                        if e.ready_at <= now {
                            return None; // dependency resolved
                        }
                        next = next.min(e.ready_at);
                    }
                    Some(_) => {}
                },
            }
        }
        if self.can_dispatch_something(now) {
            return None;
        }
        if self.dispatch_blocked_until > now {
            next = next.min(self.dispatch_blocked_until);
        }
        if self.fetch_blocked_until > now {
            next = next.min(self.fetch_blocked_until);
        }
        Some(next)
    }

    /// ROB lookup by sequence number. Sequence numbers are handed out
    /// consecutively at dispatch and entries retire in order from the
    /// front, so entry `seq` lives at offset `seq - front.seq` — an O(1)
    /// index computation instead of a binary search. This runs once per
    /// waiting load per tick (issue scan and `sleep_state`), which made
    /// the search the hottest comparison loop in the core model.
    fn find(&self, seq: u64) -> Option<&RobEntry> {
        let front = self.rob.front()?.seq;
        let idx = usize::try_from(seq.checked_sub(front)?).ok()?;
        let hit = self.rob.get(idx).filter(|e| e.seq == seq);
        debug_assert_eq!(
            hit.map(|e| e.seq),
            {
                let i = self.rob.partition_point(|e| e.seq < seq);
                self.rob.get(i).filter(|e| e.seq == seq).map(|e| e.seq)
            },
            "dense ROB index diverged from binary search"
        );
        hit
    }

    fn find_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let front = self.rob.front()?.seq;
        let idx = usize::try_from(seq.checked_sub(front)?).ok()?;
        self.rob.get_mut(idx).filter(|e| e.seq == seq)
    }

    fn dep_resolved(&self, dep: Option<u64>, now: Cycle) -> bool {
        match dep {
            None => true,
            Some(seq) => match self.find(seq) {
                None => true, // already committed
                Some(e) => e.done && e.ready_at <= now,
            },
        }
    }

    /// Deliver a memory completion for `ticket` (LLC-missing load or ifetch).
    pub fn complete(&mut self, ticket: u64, now: Cycle) {
        if self.ifetch_ticket == Some(ticket) {
            self.ifetch_ticket = None;
            self.fetch_blocked_until = now.max(self.fetch_blocked_until);
            return;
        }
        if let Some(pos) = self.tickets.iter().position(|&(t, _)| t == ticket) {
            let (_, seq) = self.tickets.swap_remove(pos);
            if let Some(a) = self.attr.as_deref_mut() {
                // The skipped-window accounting in the next tick may still
                // need this ticket (the head load completed *at* `now`).
                a.note_completion(ticket, seq);
            }
            if let Some(e) = self.find_mut(seq) {
                e.done = true;
                e.ready_at = now;
            }
        }
    }

    /// Ticket of the outstanding (or just-completed) load at ROB sequence
    /// `seq`, for attribution accrual.
    fn ticket_of_seq(&self, seq: u64) -> Option<u64> {
        self.tickets
            .iter()
            .find(|&&(_, s)| s == seq)
            .map(|&(t, _)| t)
            .or_else(|| {
                self.attr
                    .as_deref()
                    .and_then(|a| a.completed_ticket_of(seq))
            })
    }

    /// Advance to cycle `now`: commit, account head stalls, issue waiting
    /// loads, dispatch new instructions. The simulator may skip cycles when
    /// every core is blocked on memory (event skipping); accounting uses the
    /// real elapsed time so IPC and ROB-head stalls are exact.
    pub fn tick<P: MemPort, S: InstrStream>(&mut self, now: Cycle, port: &mut P, stream: &mut S) {
        self.tick_gated(now, 0, port, stream)
    }

    /// [`Core::tick`] for a wake-gated step loop. `skipped_live` is the
    /// number of cycles since the last tick on which the machine stepped
    /// but this core slept (an ungated loop would have ticked it; a
    /// globally event-skipped window passes 0, like [`Core::tick`]). The
    /// only architectural counter those omitted ticks would have touched
    /// beyond the skipped-window accounting below is the dispatch stage's
    /// ROB-full counter, reproduced here under the dispatch stage's own
    /// entry conditions — all invariant across a slept window.
    pub fn tick_gated<P: MemPort, S: InstrStream>(
        &mut self,
        now: Cycle,
        skipped_live: u64,
        port: &mut P,
        stream: &mut S,
    ) {
        let prev_tick = self.last_tick;
        let elapsed = now.saturating_sub(self.last_tick).max(1);
        self.last_tick = now;
        self.stats.cycles += elapsed;
        // Cycles skipped since the last tick were spent blocked; if the ROB
        // head was an incomplete LLC-missing load over that window (the only
        // state that triggers a skip), attribute the skipped stall cycles.
        if elapsed > 1 {
            let stalled = elapsed - 1;
            // Cycles on which the machine stepped while this core slept:
            // the dispatch stage would have entered (blocked-untils passed,
            // no fetch in flight) and charged its ROB-full counter before
            // discovering there was no room. The ROB, the in-flight fetch,
            // and the untils cannot change while the core sleeps, so the
            // per-cycle conditions hold for the whole window.
            if skipped_live > 0
                && self.rob.len() >= self.cfg.rob_entries
                && self.ifetch_ticket.is_none()
                && self.dispatch_blocked_until <= prev_tick
                && self.fetch_blocked_until <= prev_tick
            {
                self.stats.rob_full_cycles += skipped_live;
            }
            let head = self.rob.front().copied();
            let head_miss = head.is_some_and(|h| h.is_load && h.llc_miss);
            if head_miss {
                self.stats.head_stall_cycles += stalled;
                if let Some(tag) = head.and_then(|h| h.tag) {
                    self.stats.tags.get_mut(tag).rob_head_stall_cycles += stalled;
                }
            }
            if self.attr.is_some() {
                // Classify the skipped window under the same exclusivity
                // rule as a live cycle (pre-commit head state).
                let pending = head.and_then(|h| {
                    h.tag
                        .and_then(|tag| self.ticket_of_seq(h.seq).map(|t| (t, tag)))
                });
                let rob_empty = self.rob.is_empty();
                let rob_full = self.rob.len() >= self.cfg.rob_entries;
                if let Some(attr) = self.attr.as_deref_mut() {
                    if head_miss {
                        attr.buckets.load_miss += stalled;
                        if let Some((ticket, tag)) = pending {
                            attr.charge_load_miss(ticket, tag, stalled);
                        }
                    } else if rob_empty {
                        attr.buckets.frontend_empty += stalled;
                    } else if rob_full {
                        attr.buckets.rob_full += stalled;
                    } else {
                        attr.buckets.other += stalled;
                    }
                }
            }
        }

        // ---- Commit stage ----
        let mut committed_this_cycle = 0;
        while committed_this_cycle < self.cfg.width {
            if !self
                .rob
                .front()
                .is_some_and(|h| h.done && h.ready_at <= now)
            {
                break;
            }
            let Some(h) = self.rob.pop_front() else { break };
            if h.is_load {
                self.lq_used -= 1;
            }
            self.stats.committed += 1;
            committed_this_cycle += 1;
        }
        // ROB-head stall accounting: blocked on an incomplete missing load.
        let mut charged_head = None;
        if committed_this_cycle < self.cfg.width {
            if let Some(h) = self.rob.front() {
                if h.is_load && h.llc_miss && !(h.done && h.ready_at <= now) {
                    self.stats.head_stall_cycles += 1;
                    if let Some(tag) = h.tag {
                        self.stats.tags.get_mut(tag).rob_head_stall_cycles += 1;
                    }
                    charged_head = Some(*h);
                }
            }
        }
        let charged_load_miss = charged_head.is_some();
        if let Some(h) = charged_head {
            // ticket_of_seq consults the attribution state, so this is a
            // no-op on unattributed runs.
            if let Some((ticket, tag)) = h
                .tag
                .and_then(|tag| self.ticket_of_seq(h.seq).map(|t| (t, tag)))
            {
                if let Some(attr) = self.attr.as_deref_mut() {
                    attr.charge_load_miss(ticket, tag, 1);
                }
            }
        }

        // ---- Issue stage: waiting loads whose dependencies resolved ----
        let mut issued = 0;
        let mut i = 0;
        let mut mshr_retry = false;
        while i < self.waiting.len() && issued < self.cfg.width {
            let w = self.waiting[i];
            if !self.dep_resolved(w.dep_seq, now) {
                i += 1;
                continue;
            }
            match port.load(now, self.id, w.va, w.tag) {
                MemReply::Done { ready_at } => {
                    if let Some(e) = self.find_mut(w.seq) {
                        e.done = true;
                        e.ready_at = ready_at.max(now + 1);
                    }
                    self.waiting.remove(i);
                    issued += 1;
                }
                MemReply::Pending { ticket, primary } => {
                    let s = self.stats.tags.get_mut(w.tag);
                    s.miss_loads += 1;
                    if primary {
                        s.llc_misses += 1;
                    }
                    if let Some(e) = self.find_mut(w.seq) {
                        e.llc_miss = true;
                    }
                    self.tickets.push((ticket, w.seq));
                    self.waiting.remove(i);
                    issued += 1;
                }
                MemReply::Retry { mshr_full } => {
                    // Structural hazard: stop issuing this cycle.
                    mshr_retry = mshr_full;
                    break;
                }
            }
        }

        // ---- Cycle attribution: exactly one bucket per cycle ----
        // Priority (DESIGN.md §10): the load-miss head stall charged above,
        // then MSHR-full back-pressure on an unissued head load, then a
        // productive (committing) cycle, then ROB-full / frontend-empty,
        // else the residual bucket. The skipped-window cycles were already
        // classified at the top of the tick, so the buckets sum to
        // `stats.cycles` exactly.
        if self.attr.is_some() {
            let head = self.rob.front().copied();
            // An issued head load is either done (hit) or llc_miss
            // (pending), so "unissued" is the remaining load state.
            let unissued_head = head.is_some_and(|h| h.is_load && !h.done && !h.llc_miss);
            let rob_empty = self.rob.is_empty();
            let rob_full = self.rob.len() >= self.cfg.rob_entries;
            let mshr_tag = head.and_then(|h| h.tag);
            if let Some(attr) = self.attr.as_deref_mut() {
                if charged_load_miss {
                    attr.buckets.load_miss += 1;
                } else if mshr_retry && unissued_head {
                    attr.buckets.mshr_full += 1;
                    if let Some(tag) = mshr_tag {
                        attr.tags.get_mut(tag).mshr_full_cycles += 1;
                    }
                } else if committed_this_cycle > 0 {
                    attr.buckets.committing += 1;
                } else if rob_empty {
                    attr.buckets.frontend_empty += 1;
                } else if rob_full {
                    attr.buckets.rob_full += 1;
                } else {
                    attr.buckets.other += 1;
                }
                attr.end_tick();
            }
        }

        // ---- Dispatch stage ----
        if self.dispatch_blocked_until > now
            || self.fetch_blocked_until > now
            || self.ifetch_ticket.is_some()
        {
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.cfg.width {
            if self.rob.len() >= self.cfg.rob_entries {
                self.stats.rob_full_cycles += 1;
                break;
            }
            let instr = match self.buffered.take().or_else(|| {
                if self.stream_done {
                    None
                } else {
                    let n = stream.next_instr();
                    if n.is_none() {
                        self.stream_done = true;
                    }
                    n
                }
            }) {
                Some(i) => i,
                None => break,
            };

            // Instruction fetch: crossing into a new line touches the I-side.
            let line = self.pc >> 6;
            if line != self.fetched_line {
                self.fetched_line = line;
                match port.ifetch(now, self.id, VirtAddr(self.pc)) {
                    MemReply::Done { ready_at } => {
                        if ready_at > now {
                            // Front-end hiccup: finish this instruction after
                            // the fetch returns.
                            self.fetch_blocked_until = ready_at;
                        }
                    }
                    MemReply::Pending { ticket, primary } => {
                        let s = self.stats.tags.get_mut(MemTag::segment(Segment::Code));
                        if primary {
                            s.llc_misses += 1;
                        }
                        s.accesses += 1;
                        self.ifetch_ticket = Some(ticket);
                    }
                    MemReply::Retry { .. } => {
                        // Retry the fetch next cycle; re-buffer the instr.
                        self.fetched_line = u64::MAX;
                        self.buffered = Some(instr);
                        break;
                    }
                }
            }

            let seq = self.next_seq;
            match instr {
                Instr::Compute => {
                    self.rob.push_back(RobEntry {
                        seq,
                        done: true,
                        ready_at: now + 1,
                        is_load: false,
                        llc_miss: false,
                        tag: None,
                    });
                    self.pc += 4;
                }
                Instr::Branch { mispredict, target } => {
                    self.rob.push_back(RobEntry {
                        seq,
                        done: true,
                        ready_at: now + 1,
                        is_load: false,
                        llc_miss: false,
                        tag: None,
                    });
                    self.pc = target.map_or(self.pc + 4, |t| t.0);
                    if mispredict {
                        self.stats.mispredicts += 1;
                        self.dispatch_blocked_until = now + self.cfg.mispredict_penalty;
                    }
                }
                Instr::Load {
                    va,
                    tag,
                    dependent,
                    chain,
                } => {
                    if self.lq_used >= self.cfg.lq_entries {
                        self.stats.lq_full_cycles += 1;
                        self.buffered = Some(instr);
                        break;
                    }
                    self.lq_used += 1;
                    self.stats.loads += 1;
                    self.stats.tags.get_mut(tag).accesses += 1;
                    self.rob.push_back(RobEntry {
                        seq,
                        done: false,
                        ready_at: Cycle::MAX,
                        is_load: true,
                        llc_miss: false,
                        tag: Some(tag),
                    });
                    self.waiting.push(WaitingLoad {
                        seq,
                        va,
                        tag,
                        dep_seq: if dependent {
                            self.last_load_by_chain
                                .iter()
                                .find(|&&(c, _)| c == chain)
                                .map(|&(_, s)| s)
                        } else {
                            None
                        },
                    });
                    match self.last_load_by_chain.iter_mut().find(|e| e.0 == chain) {
                        Some(e) => e.1 = seq,
                        None => self.last_load_by_chain.push((chain, seq)),
                    }
                    self.pc += 4;
                }
                Instr::Store { va, tag } => {
                    self.stats.stores += 1;
                    let s = self.stats.tags.get_mut(tag);
                    s.accesses += 1;
                    let reply = port.store(now, self.id, va, tag);
                    if reply.primary_miss {
                        self.stats.tags.get_mut(tag).llc_misses += 1;
                    }
                    self.rob.push_back(RobEntry {
                        seq,
                        done: true,
                        ready_at: now + 1,
                        is_load: false,
                        llc_miss: false,
                        tag: Some(tag),
                    });
                    self.pc += 4;
                }
            }
            self.next_seq += 1;
            dispatched += 1;
            if self.dispatch_blocked_until > now || self.fetch_blocked_until > now {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::ObjectId;

    /// Test hierarchy: every load misses and completes `latency` cycles
    /// later; ifetches and stores always hit.
    struct FakePort {
        latency: Cycle,
        next_ticket: u64,
        inflight: Vec<(u64, Cycle)>,
        max_inflight: usize,
        peak: usize,
    }

    impl FakePort {
        fn new(latency: Cycle) -> FakePort {
            FakePort {
                latency,
                next_ticket: 0,
                inflight: Vec::new(),
                max_inflight: usize::MAX,
                peak: 0,
            }
        }

        fn drain(&mut self, now: Cycle, core: &mut Core) {
            let mut i = 0;
            while i < self.inflight.len() {
                if self.inflight[i].1 <= now {
                    let (t, _) = self.inflight.swap_remove(i);
                    core.complete(t, now);
                } else {
                    i += 1;
                }
            }
        }
    }

    impl MemPort for FakePort {
        fn load(&mut self, now: Cycle, _core: CoreId, _va: VirtAddr, _tag: MemTag) -> MemReply {
            if self.inflight.len() >= self.max_inflight {
                return MemReply::Retry { mshr_full: true };
            }
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            self.inflight.push((ticket, now + self.latency));
            self.peak = self.peak.max(self.inflight.len());
            MemReply::Pending {
                ticket,
                primary: true,
            }
        }

        fn store(&mut self, _now: Cycle, _core: CoreId, _va: VirtAddr, _tag: MemTag) -> StoreReply {
            StoreReply::default()
        }

        fn ifetch(&mut self, now: Cycle, _core: CoreId, _va: VirtAddr) -> MemReply {
            MemReply::Done { ready_at: now + 2 }
        }
    }

    fn run<S: InstrStream>(core: &mut Core, port: &mut FakePort, stream: &mut S, limit: Cycle) {
        let mut now = 0;
        while !core.finished() && now < limit {
            now += 1;
            port.drain(now, core);
            core.tick(now, port, stream);
        }
        assert!(core.finished(), "core did not finish within {limit} cycles");
    }

    fn loads(n: usize, dependent: bool) -> Vec<Instr> {
        (0..n)
            .map(|i| Instr::Load {
                va: VirtAddr(0x2000_0000 + (i as u64) * 64),
                tag: MemTag::heap(ObjectId(0)),
                dependent,
                chain: 0,
            })
            .collect()
    }

    #[test]
    fn compute_ipc_approaches_width() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(100);
        let mut s = vec![Instr::Compute; 3000].into_iter();
        run(&mut core, &mut port, &mut s, 100_000);
        let ipc = core.stats().ipc();
        assert!(ipc > 2.0, "compute IPC too low: {ipc}");
        assert_eq!(core.stats().committed, 3000);
    }

    #[test]
    fn independent_loads_overlap() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(100);
        let mut s = loads(64, false).into_iter();
        run(&mut core, &mut port, &mut s, 100_000);
        // With 32 LQ entries and 100-cycle misses, 64 loads should take
        // roughly 2-3 round trips, not 64.
        assert!(
            core.stats().cycles < 64 * 100 / 4,
            "no MLP: {} cycles",
            core.stats().cycles
        );
        assert!(port.peak > 8, "loads did not overlap: peak {}", port.peak);
    }

    #[test]
    fn dependent_loads_serialize() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(100);
        let mut s = loads(32, true).into_iter();
        run(&mut core, &mut port, &mut s, 1_000_000);
        assert!(
            core.stats().cycles >= 32 * 100,
            "chased loads overlapped: {} cycles",
            core.stats().cycles
        );
        assert!(port.peak <= 2, "peak {} should be ~1", port.peak);
    }

    #[test]
    fn stall_per_miss_separates_mlp_regimes() {
        // The classifier's key signal: dependent chains show ~latency stall
        // per miss; independent streams show far less.
        let mut dep_core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(100);
        let mut s = loads(32, true).into_iter();
        run(&mut dep_core, &mut port, &mut s, 1_000_000);
        let dep_stall = dep_core.stats().tags.object(ObjectId(0)).stall_per_miss();

        let mut ind_core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(100);
        let mut s = loads(256, false).into_iter();
        run(&mut ind_core, &mut port, &mut s, 1_000_000);
        let ind_stall = ind_core.stats().tags.object(ObjectId(0)).stall_per_miss();

        assert!(
            dep_stall > ind_stall * 3.0,
            "dependent {dep_stall:.1} vs independent {ind_stall:.1}"
        );
    }

    #[test]
    fn lq_bounds_outstanding_loads() {
        let cfg = CoreConfig {
            lq_entries: 8,
            ..CoreConfig::default()
        };
        let mut core = Core::new(CoreId(0), cfg);
        let mut port = FakePort::new(50);
        let mut s = loads(64, false).into_iter();
        run(&mut core, &mut port, &mut s, 100_000);
        assert!(port.peak <= 8, "LQ leak: peak {}", port.peak);
        assert!(core.stats().lq_full_cycles > 0);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let clean: Vec<Instr> = (0..1000)
            .map(|i| {
                if i % 10 == 0 {
                    Instr::Branch {
                        mispredict: false,
                        target: None,
                    }
                } else {
                    Instr::Compute
                }
            })
            .collect();
        let noisy: Vec<Instr> = clean
            .iter()
            .map(|i| match i {
                Instr::Branch { .. } => Instr::Branch {
                    mispredict: true,
                    target: None,
                },
                other => *other,
            })
            .collect();
        let mut c1 = Core::new(CoreId(0), CoreConfig::default());
        let mut p1 = FakePort::new(10);
        run(&mut c1, &mut p1, &mut clean.into_iter(), 100_000);
        let mut c2 = Core::new(CoreId(0), CoreConfig::default());
        let mut p2 = FakePort::new(10);
        run(&mut c2, &mut p2, &mut noisy.into_iter(), 100_000);
        assert!(c2.stats().cycles > c1.stats().cycles * 2);
        assert_eq!(c2.stats().mispredicts, 100);
    }

    #[test]
    fn per_tag_attribution_is_exact() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(20);
        let mut instrs = Vec::new();
        for i in 0..10 {
            instrs.push(Instr::Load {
                va: VirtAddr(0x2000_0000 + i * 64),
                tag: MemTag::heap(ObjectId(0)),
                dependent: false,
                chain: 0,
            });
            instrs.push(Instr::Store {
                va: VirtAddr(0x4000_0000 + i * 64),
                tag: MemTag::heap(ObjectId(1)),
            });
        }
        run(&mut core, &mut port, &mut instrs.into_iter(), 100_000);
        let o0 = core.stats().tags.object(ObjectId(0));
        let o1 = core.stats().tags.object(ObjectId(1));
        assert_eq!(o0.accesses, 10);
        assert_eq!(o0.llc_misses, 10);
        assert_eq!(o1.accesses, 10);
        assert_eq!(o1.llc_misses, 0); // FakePort stores never miss
        assert_eq!(core.stats().loads, 10);
        assert_eq!(core.stats().stores, 10);
    }

    #[test]
    fn retry_backpressure_does_not_lose_loads() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(30);
        port.max_inflight = 2;
        let mut s = loads(40, false).into_iter();
        run(&mut core, &mut port, &mut s, 1_000_000);
        assert_eq!(core.stats().committed, 40);
        assert!(port.peak <= 2);
    }

    #[test]
    fn finished_only_after_drain() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(500);
        let mut s = loads(1, false).into_iter();
        core.tick(1, &mut port, &mut s);
        core.tick(2, &mut port, &mut s);
        assert!(!core.finished(), "load still outstanding");
        port.drain(502, &mut core);
        core.tick(503, &mut port, &mut s);
        assert!(core.finished());
    }

    #[test]
    fn attribution_buckets_sum_to_cycles() {
        // With attribution on, every cycle lands in exactly one bucket and
        // the load-miss bucket reproduces head_stall_cycles exactly.
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        core.enable_attribution();
        let mut port = FakePort::new(60);
        port.max_inflight = 4; // force MSHR-full retries too
        let mut s = loads(48, false).into_iter();
        run(&mut core, &mut port, &mut s, 1_000_000);
        let snap = core.attr_snapshot().expect("attribution enabled");
        assert_eq!(snap.buckets.total(), core.stats().cycles);
        assert_eq!(snap.buckets.load_miss, core.stats().head_stall_cycles);
        assert!(snap.buckets.committing > 0);
        // Per-object attribution reconciles with the classifier input.
        let o0 = core.stats().tags.object(ObjectId(0));
        assert_eq!(
            snap.tags.object(ObjectId(0)).total_stall(),
            o0.rob_head_stall_cycles
        );
    }

    #[test]
    fn mshr_full_cycles_charge_the_blocked_head() {
        // A port that refuses every load until `open_at` models an MSHR
        // file held full by other requesters: the unissued head load's
        // stall cycles must land in the mshr_full bucket, per tag.
        struct GatedPort {
            open_at: Cycle,
            inner: FakePort,
        }
        impl MemPort for GatedPort {
            fn load(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> MemReply {
                if now < self.open_at {
                    return MemReply::Retry { mshr_full: true };
                }
                self.inner.load(now, core, va, tag)
            }
            fn store(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> StoreReply {
                self.inner.store(now, core, va, tag)
            }
            fn ifetch(&mut self, now: Cycle, core: CoreId, va: VirtAddr) -> MemReply {
                self.inner.ifetch(now, core, va)
            }
        }
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        core.enable_attribution();
        let mut port = GatedPort {
            open_at: 50,
            inner: FakePort::new(10),
        };
        let mut s = loads(4, false).into_iter();
        let mut now = 0;
        while !core.finished() && now < 10_000 {
            now += 1;
            port.inner.drain(now, &mut core);
            core.tick(now, &mut port, &mut s);
        }
        assert!(core.finished());
        let snap = core.attr_snapshot().unwrap();
        assert!(snap.buckets.mshr_full > 30, "{:?}", snap.buckets);
        assert_eq!(snap.buckets.total(), core.stats().cycles);
        assert_eq!(
            snap.tags.object(ObjectId(0)).mshr_full_cycles,
            snap.buckets.mshr_full
        );
    }

    #[test]
    fn attribution_does_not_change_simulation() {
        let run_once = |attr: bool| {
            let mut core = Core::new(CoreId(0), CoreConfig::default());
            if attr {
                core.enable_attribution();
            }
            let mut port = FakePort::new(80);
            let mut s = loads(32, true).into_iter();
            run(&mut core, &mut port, &mut s, 1_000_000);
            (
                core.stats().cycles,
                core.stats().committed,
                core.stats().head_stall_cycles,
            )
        };
        assert_eq!(run_once(false), run_once(true));
    }

    #[test]
    fn blocked_on_memory_detected() {
        let mut core = Core::new(CoreId(0), CoreConfig::default());
        let mut port = FakePort::new(1000);
        let mut s = loads(1, true).into_iter();
        let mut now = 0;
        // Dispatch and issue the load, then exhaust local work.
        for _ in 0..5 {
            now += 1;
            core.tick(now, &mut port, &mut s);
        }
        assert!(core.blocked_on_memory(now));
        assert_eq!(core.next_local_event(now), None);
    }
}
