//! Per-tag (object / segment) statistics — the raw material of MOCA's
//! profiler.

use moca_common::ids::MemTag;
use moca_common::{ObjectId, Segment};
use serde::{Deserialize, Serialize};

/// Counters attributed to one memory object or segment.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TagStats {
    /// Demand accesses (loads + stores) issued.
    pub accesses: u64,
    /// Primary LLC (L2) misses — the numerator of LLC MPKI.
    pub llc_misses: u64,
    /// Loads that had to wait on DRAM (primary or merged misses).
    pub miss_loads: u64,
    /// Cycles the ROB head was blocked on an incomplete LLC-missing load of
    /// this tag (§III-A's "ROB head stall cycles").
    pub rob_head_stall_cycles: u64,
}

impl TagStats {
    /// LLC misses per kilo-instruction, given the run's instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        moca_common::stats::safe_div(self.llc_misses as f64 * 1000.0, instructions as f64)
    }

    /// Average ROB-head stall cycles per missing load — the paper's MLP
    /// metric (low ⇒ high MLP).
    pub fn stall_per_miss(&self) -> f64 {
        moca_common::stats::safe_div(self.rob_head_stall_cycles as f64, self.miss_loads as f64)
    }

    /// Merge counters from another run segment.
    pub fn merge(&mut self, o: &TagStats) {
        self.accesses += o.accesses;
        self.llc_misses += o.llc_misses;
        self.miss_loads += o.miss_loads;
        self.rob_head_stall_cycles += o.rob_head_stall_cycles;
    }
}

/// Dense table of [`TagStats`] indexed by heap object id, plus one slot per
/// non-heap segment. Objects get dense ids from the naming registry, so a
/// `Vec` beats a hash map on the per-access hot path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagTable {
    heap: Vec<TagStats>,
    code: TagStats,
    data: TagStats,
    stack: TagStats,
}

impl TagTable {
    /// Table sized for `objects` heap objects.
    pub fn new(objects: usize) -> TagTable {
        TagTable {
            heap: vec![TagStats::default(); objects],
            ..TagTable::default()
        }
    }

    /// Mutable stats slot for `tag`, growing the heap table on demand.
    pub fn get_mut(&mut self, tag: MemTag) -> &mut TagStats {
        match tag.segment {
            Segment::Heap => {
                // moca-lint: allow(panic-in-hot): MemTag::heap always pairs Heap with an object id (construction invariant)
                let id = tag.object.expect("heap tag carries an object").0 as usize;
                if id >= self.heap.len() {
                    self.heap.resize(id + 1, TagStats::default());
                }
                &mut self.heap[id]
            }
            Segment::Code => &mut self.code,
            Segment::Data => &mut self.data,
            Segment::Stack => &mut self.stack,
        }
    }

    /// Stats of a heap object (zeros if never touched).
    pub fn object(&self, id: ObjectId) -> TagStats {
        self.heap.get(id.0 as usize).copied().unwrap_or_default()
    }

    /// Stats of a non-heap segment.
    pub fn segment(&self, seg: Segment) -> TagStats {
        match seg {
            Segment::Code => self.code,
            Segment::Data => self.data,
            Segment::Stack => self.stack,
            Segment::Heap => {
                let mut total = TagStats::default();
                for t in &self.heap {
                    total.merge(t);
                }
                total
            }
        }
    }

    /// Number of heap object slots.
    pub fn objects(&self) -> usize {
        self.heap.len()
    }

    /// Iterate `(ObjectId, stats)` over heap objects.
    pub fn iter_objects(&self) -> impl Iterator<Item = (ObjectId, &TagStats)> + '_ {
        self.heap
            .iter()
            .enumerate()
            .map(|(i, s)| (ObjectId(i as u32), s))
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &TagTable) {
        if other.heap.len() > self.heap.len() {
            self.heap.resize(other.heap.len(), TagStats::default());
        }
        for (a, b) in self.heap.iter_mut().zip(other.heap.iter()) {
            a.merge(b);
        }
        self.code.merge(&other.code);
        self.data.merge(&other.data);
        self.stack.merge(&other.stack);
    }
}

/// Whole-core run statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles the core has been ticked.
    pub cycles: u64,
    /// Total ROB-head stall cycles on LLC-missing loads.
    pub head_stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Branch mispredict redirects taken.
    pub mispredicts: u64,
    /// Cycles dispatch was blocked on a full ROB.
    pub rob_full_cycles: u64,
    /// Cycles dispatch was blocked on a full LQ.
    pub lq_full_cycles: u64,
    /// Per-tag attribution.
    pub tags: TagTable,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        moca_common::stats::safe_div(self.committed as f64, self.cycles as f64)
    }

    /// Whole-application LLC MPKI (all tags).
    pub fn app_mpki(&self) -> f64 {
        let total: u64 = self
            .tags
            .iter_objects()
            .map(|(_, s)| s.llc_misses)
            .sum::<u64>()
            + self.tags.segment(Segment::Code).llc_misses
            + self.tags.segment(Segment::Data).llc_misses
            + self.tags.segment(Segment::Stack).llc_misses;
        moca_common::stats::safe_div(total as f64 * 1000.0, self.committed as f64)
    }

    /// Whole-application ROB-head stall cycles per missing load.
    pub fn app_stall_per_miss(&self) -> f64 {
        let mut stalls = 0u64;
        let mut miss_loads = 0u64;
        for (_, s) in self.tags.iter_objects() {
            stalls += s.rob_head_stall_cycles;
            miss_loads += s.miss_loads;
        }
        for seg in [Segment::Code, Segment::Data, Segment::Stack] {
            let s = self.tags.segment(seg);
            stalls += s.rob_head_stall_cycles;
            miss_loads += s.miss_loads;
        }
        moca_common::stats::safe_div(stalls as f64, miss_loads as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_scales_with_instructions() {
        let s = TagStats {
            llc_misses: 50,
            ..TagStats::default()
        };
        assert!((s.mpki(10_000) - 5.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn stall_per_miss_divides() {
        let s = TagStats {
            miss_loads: 4,
            rob_head_stall_cycles: 100,
            ..TagStats::default()
        };
        assert!((s.stall_per_miss() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn tag_table_routes_segments_and_objects() {
        let mut t = TagTable::new(2);
        t.get_mut(MemTag::heap(ObjectId(1))).accesses += 3;
        t.get_mut(MemTag::segment(Segment::Stack)).accesses += 2;
        assert_eq!(t.object(ObjectId(1)).accesses, 3);
        assert_eq!(t.object(ObjectId(0)).accesses, 0);
        assert_eq!(t.segment(Segment::Stack).accesses, 2);
    }

    #[test]
    fn tag_table_grows_on_demand() {
        let mut t = TagTable::new(0);
        t.get_mut(MemTag::heap(ObjectId(5))).llc_misses += 1;
        assert_eq!(t.objects(), 6);
        assert_eq!(t.object(ObjectId(5)).llc_misses, 1);
    }

    #[test]
    fn heap_segment_query_sums_objects() {
        let mut t = TagTable::new(2);
        t.get_mut(MemTag::heap(ObjectId(0))).llc_misses = 2;
        t.get_mut(MemTag::heap(ObjectId(1))).llc_misses = 3;
        assert_eq!(t.segment(Segment::Heap).llc_misses, 5);
    }

    #[test]
    fn merge_tables() {
        let mut a = TagTable::new(1);
        let mut b = TagTable::new(3);
        a.get_mut(MemTag::heap(ObjectId(0))).accesses = 1;
        b.get_mut(MemTag::heap(ObjectId(2))).accesses = 7;
        a.merge(&b);
        assert_eq!(a.objects(), 3);
        assert_eq!(a.object(ObjectId(2)).accesses, 7);
        assert_eq!(a.object(ObjectId(0)).accesses, 1);
    }

    #[test]
    fn core_stats_ipc() {
        let s = CoreStats {
            committed: 300,
            cycles: 100,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 3.0).abs() < 1e-12);
    }
}
