//! Out-of-order core model.
//!
//! A trace-driven reproduction of the core the paper simulates in gem5
//! (Table I): 1 GHz x86-style out-of-order engine, 3-wide
//! fetch/dispatch/issue/commit, 84-entry reorder buffer, 32-entry load
//! queue, with a branch-mispredict redirect penalty standing in for the
//! tournament predictor.
//!
//! The model consumes an [`InstrStream`] (produced by `moca-workloads`) and
//! talks to the memory hierarchy through the [`MemPort`] trait (implemented
//! by `moca-sim`). Two properties the MOCA classifier depends on *emerge*
//! from the microarchitecture rather than being asserted:
//!
//! * **LLC MPKI** — loads/stores walk the real cache hierarchy; only L2
//!   misses reach DRAM.
//! * **Memory-level parallelism** — independent loads overlap up to the
//!   LQ/MSHR limits, while address-dependent loads (pointer chasing) issue
//!   serially; the resulting *ROB-head stall cycles per load miss* is
//!   measured exactly as in §III-A: cycles the commit stage spends blocked
//!   on an incomplete LLC-missing load at the ROB head.

pub mod core;
pub mod instr;
pub mod stats;

pub use crate::core::{Core, CoreConfig, MemPort, MemReply, StoreReply};
pub use instr::{Instr, InstrStream};
pub use stats::{CoreStats, TagStats, TagTable};
