//! Instruction abstraction consumed by the core model.

use moca_common::ids::MemTag;
use moca_common::VirtAddr;

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory ALU/FP instruction: executes in one cycle.
    Compute,
    /// A branch. `mispredict` redirects the front end for the configured
    /// penalty; `target` moves the fetch PC (modelling I-cache behaviour).
    Branch {
        /// Whether the predictor missed this branch.
        mispredict: bool,
        /// Branch target; `None` ⇒ not-taken (fall through).
        target: Option<VirtAddr>,
    },
    /// A load from `va`.
    Load {
        /// Virtual address accessed.
        va: VirtAddr,
        /// Attribution tag (heap object or segment).
        tag: MemTag,
        /// Address depends on the previous load's data (pointer chasing):
        /// the load may not issue until that load completes. This is what
        /// destroys memory-level parallelism for chase-patterned objects.
        dependent: bool,
        /// Dependence-chain identifier: a dependent load waits on the
        /// previous load of the *same chain*. Chains usually map 1:1 to
        /// objects, but one traversal may span several objects (mcf walks
        /// arcs→nodes→arcs in a single chain), so the key is explicit.
        chain: u16,
    },
    /// A store to `va`. Retires immediately through the store buffer but
    /// generates cache/DRAM traffic.
    Store {
        /// Virtual address accessed.
        va: VirtAddr,
        /// Attribution tag.
        tag: MemTag,
    },
}

/// A supplier of dynamic instructions (one simulated application thread).
pub trait InstrStream {
    /// Produce the next instruction, or `None` when the program ends.
    fn next_instr(&mut self) -> Option<Instr>;
}

/// Blanket implementation so closures and iterators can act as streams in
/// tests.
impl<I: Iterator<Item = Instr>> InstrStream for I {
    fn next_instr(&mut self) -> Option<Instr> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterator_is_a_stream() {
        let mut s = vec![Instr::Compute, Instr::Compute].into_iter();
        assert_eq!(s.next_instr(), Some(Instr::Compute));
        assert_eq!(s.next_instr(), Some(Instr::Compute));
        assert_eq!(s.next_instr(), None);
    }
}
