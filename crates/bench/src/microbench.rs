//! A small wall-clock benchmarking harness for the `benches/` targets.
//!
//! The workspace previously used criterion; this replaces it with a
//! dependency-free measure-and-print loop (the build container has no
//! crates.io access). It keeps the parts that matter for a simulator —
//! warmup, repeated samples, min/median/mean, optional elements-per-second
//! throughput — and drops the statistical machinery.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of related benchmarks, printed with a shared heading.
pub struct Group {
    name: String,
    samples: usize,
    throughput_elems: Option<u64>,
}

impl Group {
    /// Start a group with the default sample count.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: 20,
            throughput_elems: None,
        }
    }

    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Group {
        self.samples = n.max(3);
        self
    }

    /// Report throughput as `elems` work items per iteration.
    pub fn throughput_elems(&mut self, elems: u64) -> &mut Group {
        self.throughput_elems = Some(elems);
        self
    }

    /// Time `f` (one call = one iteration) and print a summary line.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup: let caches, allocators, and branch predictors settle.
        for _ in 0..3 {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let mut line = format!(
            "{:<40} min {:>10}  median {:>10}  mean {:>10}",
            format!("{}/{}", self.name, name),
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        if let Some(elems) = self.throughput_elems {
            let rate = elems as f64 / median.as_secs_f64();
            line.push_str(&format!("  ({} elem/s)", fmt_rate(rate)));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_magnitudes() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u32;
        let mut g = Group::new("selftest");
        g.sample_size(3).bench("counter", || {
            count += 1;
            count
        });
        // 3 warmup + 3 samples.
        assert_eq!(count, 6);
    }
}
