//! Generators for every table and figure of the paper's evaluation.
//!
//! Numbers are produced by the same flow as the paper: profile on the
//! training input (offline), classify, then run the reference input on each
//! memory system. Figures 8–13 normalize to Homogen-DDR3; Figures 14–15
//! normalize to Heter-App on config1.

use crate::harness::{suite_names, systems_under_test, Scale, SeededPipeline};
use crate::report::{f2, geomean, ratio, Table};
use moca::classify::ThresholdSearch;
use moca::pipeline::PolicyKind;
use moca_common::units::format_bytes;
use moca_dram::DeviceTiming;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_sim::metrics::RunResult;
use moca_workloads::{config_sweep_sets, multiprogram_sets};
use std::collections::HashMap;

/// Table I: the simulated microarchitecture (what the code actually runs).
pub fn table1() -> Table {
    let core = moca_cpu::CoreConfig::default();
    let l1 = moca_cache::CacheConfig::l1d();
    let l2 = moca_cache::CacheConfig::l2();
    let mut t = Table::new(
        "table1",
        "Microarchitectural configuration",
        &["component", "value"],
    );
    t.row(vec!["core clock".into(), "1 GHz (1 cycle = 1 ns)".into()]);
    t.row(vec![
        "pipeline width".into(),
        format!("{} (fetch/dispatch/issue/commit)", core.width),
    ]);
    t.row(vec!["ROB entries".into(), core.rob_entries.to_string()]);
    t.row(vec!["LQ entries".into(), core.lq_entries.to_string()]);
    t.row(vec![
        "mispredict penalty".into(),
        format!("{} cycles", core.mispredict_penalty),
    ]);
    t.row(vec![
        "L1 I/D".into(),
        format!(
            "{} split, {}-way, {} cycles, {} MSHRs",
            format_bytes(l1.size_bytes),
            l1.ways,
            l1.hit_latency,
            l1.mshrs
        ),
    ]);
    t.row(vec![
        "L2 (unified, private)".into(),
        format!(
            "{}, {}-way, {} cycles, {} MSHRs",
            format_bytes(l2.size_bytes),
            l2.ways,
            l2.hit_latency,
            l2.mshrs
        ),
    ]);
    t.row(vec![
        "memory".into(),
        "4 channels, FR-FCFS, RoRaBaChCo (homogeneous) / range-per-channel (heterogeneous)".into(),
    ]);
    t.note("matches Table I of the paper; see moca-cpu / moca-cache / moca-dram presets");
    t
}

/// Table II: the DRAM device parameters the simulator uses.
pub fn table2() -> Table {
    let mut t = Table::new(
        "table2",
        "Memory module timing/power parameters",
        &["parameter", "DDR3", "HBM", "RLDRAM3", "LPDDR2"],
    );
    let d = [
        DeviceTiming::ddr3(),
        DeviceTiming::hbm(),
        DeviceTiming::rldram3(),
        DeviceTiming::lpddr2(),
    ];
    let row = |name: &str, f: &dyn Fn(&DeviceTiming) -> String| -> Vec<String> {
        let mut r = vec![name.to_string()];
        r.extend(d.iter().map(f));
        r
    };
    t.row(row("burst length", &|x| x.burst_length.to_string()));
    t.row(row("banks", &|x| x.banks.to_string()));
    t.row(row("row buffer", &|x| format_bytes(x.row_buffer_bytes)));
    t.row(row("rows", &|x| format!("{}K", x.rows / 1024)));
    t.row(row("device width", &|x| x.device_width.to_string()));
    t.row(row("tCK (ns)", &|x| {
        format!("{:.3}", x.tck_ps as f64 / 1000.0)
    }));
    t.row(row("tRAS (cyc)", &|x| x.t_ras.to_string()));
    t.row(row("tRCD (cyc)", &|x| x.t_rcd.to_string()));
    t.row(row("tRC (cyc)", &|x| x.t_rc.to_string()));
    t.row(row("tRFC (cyc)", &|x| x.t_rfc.to_string()));
    t.row(row("standby mW/GB", &|x| {
        format!("{:.1}", x.power.standby_mw_per_gb)
    }));
    t.row(row("active W/GB", &|x| {
        format!("{:.1}", x.power.active_w_per_gb)
    }));
    t.row(row("ACT energy nJ", &|x| {
        format!("{:.1}", x.power.act_energy_nj)
    }));
    t.note("timing from Table II of the paper; RLDRAM power reconstructed per §II-A (see crates/dram/src/timing.rs)");
    t
}

/// Fig. 1: application-level LLC MPKI vs ROB-head stall scatter.
pub fn fig1(sp: &mut SeededPipeline) -> Table {
    let mut t = Table::new(
        "fig1",
        "Application-level memory behaviour (scatter data)",
        &["app", "L2 MPKI", "ROB stall/miss", "class"],
    );
    for name in suite_names() {
        let lut = sp.pipeline.profile(name).clone();
        let class = sp.pipeline.classified(name).app_class;
        t.row(vec![
            name.to_string(),
            f2(lut.app_mpki),
            f2(lut.app_stall_per_miss),
            class.letter().to_string(),
        ]);
    }
    t.note("high MPKI + high stall → latency-sensitive; high MPKI + low stall → bandwidth-sensitive (high MLP)");
    t
}

/// Fig. 2: object-level scatter for the six applications the paper plots.
pub fn fig2(sp: &mut SeededPipeline) -> Table {
    let apps = ["mcf", "milc", "libquantum", "disparity", "mser", "gcc"];
    let mut t = Table::new(
        "fig2",
        "Object-level memory behaviour within applications",
        &[
            "app",
            "object",
            "size",
            "L2 MPKI",
            "ROB stall/miss",
            "class",
        ],
    );
    for app in apps {
        let lut = sp.pipeline.profile(app).clone();
        let classes = sp.pipeline.classified(app).object_classes.clone();
        for (o, class) in lut.objects.iter().zip(classes.iter()) {
            t.row(vec![
                app.to_string(),
                o.label.clone(),
                format_bytes(o.size_bytes),
                f2(o.mpki),
                f2(o.stall_per_miss),
                class.letter().to_string(),
            ]);
        }
    }
    t.note("objects within one application spread across classes — the paper's motivating observation (§II-B)");
    t
}

/// Fig. 5: the classification map actually applied to the suite.
pub fn fig5(sp: &mut SeededPipeline) -> Table {
    let thr = sp.pipeline.thresholds;
    let mut t = Table::new(
        "fig5",
        "Object classification against (Thr_Lat, Thr_BW)",
        &["class", "objects", "criteria"],
    );
    let mut counts: HashMap<char, usize> = HashMap::new();
    for app in suite_names() {
        for &k in &sp.pipeline.classified(app).object_classes {
            *counts.entry(k.letter()).or_default() += 1;
        }
    }
    t.row(vec![
        "Lat Mem (RLDRAM)".into(),
        counts.get(&'L').copied().unwrap_or(0).to_string(),
        format!("MPKI > {} and stall/miss > {}", thr.thr_lat, thr.thr_bw),
    ]);
    t.row(vec![
        "BW Mem (HBM)".into(),
        counts.get(&'B').copied().unwrap_or(0).to_string(),
        format!("MPKI > {} and stall/miss <= {}", thr.thr_lat, thr.thr_bw),
    ]);
    t.row(vec![
        "Pow Mem (LPDDR2)".into(),
        counts.get(&'N').copied().unwrap_or(0).to_string(),
        format!("MPKI <= {}", thr.thr_lat),
    ]);
    t.note("Thr values calibrated for this platform per the §IV-C methodology (paper platform used (1, 20))");
    t
}

/// Table III: application classification.
pub fn table3(sp: &mut SeededPipeline) -> Table {
    let mut t = Table::new(
        "table3",
        "Benchmark classification",
        &["app", "measured", "paper"],
    );
    for app in moca_workloads::suite() {
        let got = sp.pipeline.classified(app.name).app_class;
        t.row(vec![
            app.name.to_string(),
            got.letter().to_string(),
            app.expected_class.letter().to_string(),
        ]);
    }
    t.note(
        "measured = classification of the profiled synthetic app; paper = Table III ground truth",
    );
    t
}

/// Fig. 16: stack/code segment MPKI.
pub fn fig16(sp: &mut SeededPipeline) -> Table {
    let mut t = Table::new(
        "fig16",
        "L2 MPKI of stack and code segments",
        &["app", "stack MPKI", "code MPKI"],
    );
    for name in suite_names() {
        let lut = sp.pipeline.profile(name).clone();
        t.row(vec![
            name.to_string(),
            format!("{:.3}", lut.stack_mpki),
            format!("{:.3}", lut.code_mpki),
        ]);
    }
    t.note("both segments cache well, justifying their static LPDDR2 placement (§VI-D)");
    t
}

/// Shared runner for the six-system comparisons. Returns
/// `results[system][workload]`.
fn run_systems(
    sp: &SeededPipeline,
    workloads: &[(String, Vec<&'static str>)],
) -> HashMap<String, HashMap<String, RunResult>> {
    let mut jobs = Vec::new();
    for (sys_name, mem, policy) in systems_under_test() {
        for (wl_name, apps) in workloads {
            jobs.push((format!("{sys_name}|{wl_name}"), apps.clone(), mem, policy));
        }
    }
    let done = sp.evaluate_all(jobs);
    let mut out: HashMap<String, HashMap<String, RunResult>> = HashMap::new();
    for (label, result) in done {
        let (sys, wl) = label.split_once('|').expect("label format");
        out.entry(sys.to_string())
            .or_default()
            .insert(wl.to_string(), result);
    }
    out
}

fn comparison_tables(
    id_perf: &str,
    id_edp: &str,
    title_perf: &str,
    title_edp: &str,
    results: &HashMap<String, HashMap<String, RunResult>>,
    workloads: &[(String, Vec<&'static str>)],
) -> (Table, Table) {
    let systems: Vec<String> = systems_under_test().into_iter().map(|s| s.0).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    let sys_refs: Vec<&str> = systems.iter().map(|s| s.as_str()).collect();
    headers.extend(sys_refs.iter());

    let mut perf = Table::new(id_perf, title_perf, &headers);
    let mut edp = Table::new(id_edp, title_edp, &headers);
    let mut per_sys_perf: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut per_sys_edp: HashMap<&str, Vec<f64>> = HashMap::new();

    for (wl, _) in workloads {
        let base = &results["Homogen-DDR3"][wl];
        let base_time = base.mem.total_read_latency_cycles.max(1) as f64;
        let base_edp = base.mem.edp().max(f64::MIN_POSITIVE);
        let mut prow = vec![wl.clone()];
        let mut erow = vec![wl.clone()];
        for sys in &systems {
            let r = &results[sys][wl];
            let p = r.mem.total_read_latency_cycles as f64 / base_time;
            let e = r.mem.edp() / base_edp;
            per_sys_perf
                .entry(sys_name(sys, &systems))
                .or_default()
                .push(p);
            per_sys_edp
                .entry(sys_name(sys, &systems))
                .or_default()
                .push(e);
            prow.push(ratio(p));
            erow.push(ratio(e));
        }
        perf.row(prow);
        edp.row(erow);
    }
    let mut prow = vec!["geomean".to_string()];
    let mut erow = vec!["geomean".to_string()];
    for sys in &systems {
        prow.push(ratio(geomean(&per_sys_perf[sys.as_str()])));
        erow.push(ratio(geomean(&per_sys_edp[sys.as_str()])));
    }
    perf.row(prow);
    edp.row(erow);
    perf.note("total memory access time, normalized to Homogen-DDR3 (lower is better)");
    edp.note("memory energy-delay product, normalized to Homogen-DDR3 (lower is better)");
    (perf, edp)
}

fn sys_name<'a>(s: &str, systems: &'a [String]) -> &'a str {
    systems
        .iter()
        .find(|x| x.as_str() == s)
        .expect("known system")
}

/// Figs. 8 and 9: single-core memory access time and memory EDP across the
/// six memory systems.
pub fn fig8_fig9(sp: &SeededPipeline) -> (Table, Table) {
    let workloads: Vec<(String, Vec<&'static str>)> = suite_names()
        .into_iter()
        .map(|n| (n.to_string(), vec![n]))
        .collect();
    let results = run_systems(sp, &workloads);
    let (mut perf, mut edp) = comparison_tables(
        "fig8",
        "fig9",
        "Single-core normalized memory access time",
        "Single-core normalized memory EDP",
        &results,
        &workloads,
    );
    perf.note("paper: MOCA reduces access time by ~51% vs DDR3, ~14% vs Heter-App on average");
    edp.note("paper: MOCA reduces memory EDP by ~43% vs DDR3, ~15% vs Heter-App on average");
    (perf, edp)
}

/// Figs. 10–13: multicore memory access time, memory EDP, system
/// performance, and system EDP over the ten multi-program sets.
pub fn fig10_to_13(sp: &SeededPipeline) -> (Table, Table, Table, Table) {
    let workloads: Vec<(String, Vec<&'static str>)> = multiprogram_sets()
        .into_iter()
        .map(|s| (s.name.to_string(), s.apps.to_vec()))
        .collect();
    let results = run_systems(sp, &workloads);
    let (mut f10, mut f11) = comparison_tables(
        "fig10",
        "fig11",
        "Multicore normalized memory access time (multi-program)",
        "Multicore normalized memory EDP (multi-program)",
        &results,
        &workloads,
    );
    f10.note("paper: MOCA reduces memory access time by ~26% vs Heter-App");
    f11.note("paper: MOCA improves memory EDP by up to 63% vs DDR3, ~33% vs Heter-App");

    // System-level: throughput (higher is better) and system EDP.
    let systems: Vec<String> = systems_under_test().into_iter().map(|s| s.0).collect();
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(systems.iter().map(|s| s.as_str()));
    let mut f12 = Table::new("fig12", "Multicore normalized system performance", &headers);
    let mut f13 = Table::new("fig13", "Multicore normalized system EDP", &headers);
    let mut acc12: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut acc13: HashMap<&str, Vec<f64>> = HashMap::new();
    for (wl, _) in &workloads {
        let base = &results["Homogen-DDR3"][wl];
        let base_ipc = base.system_ipc().max(f64::MIN_POSITIVE);
        let base_edp = base.system_edp().max(f64::MIN_POSITIVE);
        let mut r12 = vec![wl.clone()];
        let mut r13 = vec![wl.clone()];
        for sys in &systems {
            let r = &results[sys][wl];
            let p = r.system_ipc() / base_ipc;
            let e = r.system_edp() / base_edp;
            acc12.entry(sys_name(sys, &systems)).or_default().push(p);
            acc13.entry(sys_name(sys, &systems)).or_default().push(e);
            r12.push(ratio(p));
            r13.push(ratio(e));
        }
        f12.row(r12);
        f13.row(r13);
    }
    let mut r12 = vec!["geomean".to_string()];
    let mut r13 = vec!["geomean".to_string()];
    for sys in &systems {
        r12.push(ratio(geomean(&acc12[sys.as_str()])));
        r13.push(ratio(geomean(&acc13[sys.as_str()])));
    }
    f12.row(r12);
    f13.row(r13);
    f12.note(
        "aggregate committed instructions per cycle, normalized to Homogen-DDR3 (higher is better)",
    );
    f12.note("paper: MOCA within ~10% of the best homogeneous system; +10% vs Heter-App");
    f13.note("(core + memory) energy × runtime, normalized to Homogen-DDR3 (lower is better)");
    f13.note("paper: MOCA improves system EDP by up to 15% vs DDR3");
    (f10, f11, f12, f13)
}

/// Figs. 14 and 15: Heter-App vs MOCA across heterogeneous configurations
/// 1–3 for the five sweep workload sets, normalized to Heter-App on config1.
pub fn fig14_fig15(sp: &SeededPipeline) -> (Table, Table) {
    let configs = [
        ("config1", HeterogeneousLayout::config1()),
        ("config2", HeterogeneousLayout::config2()),
        ("config3", HeterogeneousLayout::config3()),
    ];
    let sets = config_sweep_sets();
    let mut jobs = Vec::new();
    for set in &sets {
        for (cname, layout) in configs {
            for policy in [PolicyKind::HeterApp, PolicyKind::Moca] {
                jobs.push((
                    format!("{}|{}|{}", set.name, cname, policy.label()),
                    set.apps.to_vec(),
                    MemSystemConfig::Heterogeneous(layout),
                    policy,
                ));
            }
        }
    }
    let done: HashMap<String, RunResult> = sp.evaluate_all(jobs).into_iter().collect();

    let headers = ["set", "config", "Heter-App time", "MOCA time"];
    let mut f14 = Table::new(
        "fig14",
        "Normalized memory access time across heterogeneous configurations",
        &headers,
    );
    let mut f15 = Table::new(
        "fig15",
        "Normalized memory EDP across heterogeneous configurations",
        &["set", "config", "Heter-App EDP", "MOCA EDP"],
    );
    for set in &sets {
        let base = &done[&format!("{}|config1|Heter-App", set.name)];
        let bt = base.mem.total_read_latency_cycles.max(1) as f64;
        let be = base.mem.edp().max(f64::MIN_POSITIVE);
        for (cname, _) in configs {
            let ha = &done[&format!("{}|{}|Heter-App", set.name, cname)];
            let mo = &done[&format!("{}|{}|MOCA", set.name, cname)];
            f14.row(vec![
                set.name.to_string(),
                cname.to_string(),
                ratio(ha.mem.total_read_latency_cycles as f64 / bt),
                ratio(mo.mem.total_read_latency_cycles as f64 / bt),
            ]);
            f15.row(vec![
                set.name.to_string(),
                cname.to_string(),
                ratio(ha.mem.edp() / be),
                ratio(mo.mem.edp() / be),
            ]);
        }
    }
    f14.note("normalized to Heter-App on config1 per set (lower is better)");
    f14.note("paper: MOCA wins on config1 (small RLDRAM, heavy contention); Heter-App catches up as RLDRAM grows");
    f15.note("paper: MOCA keeps the EDP advantage on config2/3 because it avoids filling the larger RLDRAM with cold objects");
    (f14, f15)
}

/// Extension study: MOCA (offline classification, allocation-only) vs the
/// dynamic page-migration alternative it is contrasted with in §IV-E
/// (runtime monitoring + epoch-based promotion, paying copy/invalidate/
/// TLB-shootdown costs).
pub fn migration_study(sp: &SeededPipeline) -> Table {
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let sets: Vec<(&str, Vec<&'static str>)> = vec![
        ("disparity", vec!["disparity"]),
        ("3L1B", vec!["mcf", "milc", "disparity", "lbm"]),
        ("2B2N", vec!["lbm", "tracking", "gcc", "sift"]),
    ];
    let mut jobs = Vec::new();
    for (name, apps) in &sets {
        for policy in [
            PolicyKind::HeterApp,
            PolicyKind::Moca,
            PolicyKind::Migration,
        ] {
            jobs.push((
                format!("{name}|{}", policy.label()),
                apps.clone(),
                heter,
                policy,
            ));
        }
    }
    let done: HashMap<String, RunResult> = sp.evaluate_all(jobs).into_iter().collect();
    let mut t = Table::new(
        "migration",
        "Allocation-only MOCA vs dynamic page migration (§IV-E contrast)",
        &[
            "workload",
            "policy",
            "mem time",
            "mem EDP",
            "sys perf",
            "migrations",
        ],
    );
    for (name, _) in &sets {
        let base = &done[&format!("{name}|Heter-App")];
        let bt = base.mem.total_read_latency_cycles.max(1) as f64;
        let be = base.mem.edp().max(f64::MIN_POSITIVE);
        let bp = base.system_ipc().max(f64::MIN_POSITIVE);
        for policy in ["Heter-App", "MOCA", "Heter-Migrate"] {
            let r = &done[&format!("{name}|{policy}")];
            let moves = r
                .migration
                .map(|m| format!("{} (+{} dirty wb)", m.promotions, m.dirty_writebacks))
                .unwrap_or_else(|| "-".to_string());
            t.row(vec![
                name.to_string(),
                policy.to_string(),
                ratio(r.mem.total_read_latency_cycles as f64 / bt),
                ratio(r.mem.edp() / be),
                ratio(r.system_ipc() / bp),
                moves,
            ]);
        }
    }
    t.note("normalized to Heter-App per workload; Heter-Migrate starts cold in LPDDR2 and promotes by runtime heat");
    t.note("MOCA reaches its placement with zero runtime monitoring or copy traffic (§IV-E)");
    t
}

/// Ablation 1: the fallback priority lists of §IV-D. Compares the paper's
/// orders against two plausible alternatives on a contended workload.
pub fn ablation_fallback(sp: &SeededPipeline) -> Table {
    use moca::policy::ConfigurableMocaPolicy;
    use moca_common::ModuleKind::{Ddr3, Hbm, Lpddr2, Rldram3};
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let workload = ["mcf", "milc", "disparity", "lbm"]; // 3L1B, heavy RL contention
    let variants: Vec<(&str, ConfigurableMocaPolicy)> = vec![
        ("paper (BW→LP)", ConfigurableMocaPolicy::default()),
        (
            "BW overflow → RLDRAM first",
            ConfigurableMocaPolicy {
                bw_order: [Hbm, Rldram3, Lpddr2, Ddr3],
                ..ConfigurableMocaPolicy::default()
            },
        ),
        (
            "Lat overflow → LPDDR first",
            ConfigurableMocaPolicy {
                lat_order: [Rldram3, Lpddr2, Hbm, Ddr3],
                ..ConfigurableMocaPolicy::default()
            },
        ),
    ];
    let mut t = Table::new(
        "ablation-fallback",
        "Fallback-order ablation (3L1B on config1, normalized to the paper's orders)",
        &["variant", "mem time", "mem EDP", "sys perf"],
    );
    let mut base: Option<(f64, f64, f64)> = None;
    for (name, policy) in variants {
        let mut p = sp.pipeline.clone();
        let r = p.evaluate_custom(&workload, heter, Box::new(policy), true);
        let time = r.mem.total_read_latency_cycles as f64;
        let edp = r.mem.edp();
        let perf = r.system_ipc();
        let (bt, be, bp) = *base.get_or_insert((time, edp, perf));
        t.row(vec![
            name.to_string(),
            ratio(time / bt),
            ratio(edp / be),
            ratio(perf / bp),
        ]);
    }
    t.note("§IV-D gives each class a priority list; the paper's choice ('next best for HBM is LPDDR') trades a little bandwidth latency for RLDRAM headroom");
    t
}

/// Ablation 2: §VI-D's static LPDDR2 placement of stack/code segments.
pub fn ablation_segments(sp: &SeededPipeline) -> Table {
    use moca::policy::ConfigurableMocaPolicy;
    use moca_common::ObjectClass;
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let workload = ["mcf", "milc", "libquantum", "gcc"]; // 3L1N
    let variants = [
        ("segments → LPDDR2 (paper)", ObjectClass::NonIntensive),
        ("segments → RLDRAM", ObjectClass::LatencySensitive),
        ("segments → HBM", ObjectClass::BandwidthSensitive),
    ];
    let mut t = Table::new(
        "ablation-segments",
        "Stack/code segment placement ablation (3L1N on config1)",
        &["variant", "mem time", "mem EDP", "sys perf"],
    );
    let mut base: Option<(f64, f64, f64)> = None;
    for (name, class) in variants {
        let policy = ConfigurableMocaPolicy {
            segment_class: class,
            ..ConfigurableMocaPolicy::default()
        };
        let mut p = sp.pipeline.clone();
        let r = p.evaluate_custom(&workload, heter, Box::new(policy), true);
        let time = r.mem.total_read_latency_cycles as f64;
        let edp = r.mem.edp();
        let perf = r.system_ipc();
        let (bt, be, bp) = *base.get_or_insert((time, edp, perf));
        t.row(vec![
            name.to_string(),
            ratio(time / bt),
            ratio(edp / be),
            ratio(perf / bp),
        ]);
    }
    t.note("Fig. 16: stack/code cache so well that fast-module placement buys nothing while consuming RLDRAM/HBM frames");
    t
}

/// Ablation 3: does the MOCA-vs-Heter-App comparison survive the footprint
/// scale (the one knob this reproduction adds over the paper)?
pub fn ablation_scale() -> Table {
    use moca::pipeline::Pipeline;
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let workload = ["disparity"];
    let mut t = Table::new(
        "ablation-scale",
        "Footprint/capacity scale sensitivity (disparity, MOCA vs Heter-App)",
        &["scale", "Heter-App time", "MOCA time", "MOCA/HA EDP"],
    );
    for denom in [32u64, 64, 128] {
        let mut p = Pipeline::quick();
        p.profile_cfg.capacity_scale = 1.0 / denom as f64;
        let ha = p.evaluate(&workload, heter, PolicyKind::HeterApp);
        let mo = p.evaluate(&workload, heter, PolicyKind::Moca);
        let bt = ha.mem.total_read_latency_cycles.max(1) as f64;
        t.row(vec![
            format!("1/{denom}"),
            ratio(1.0),
            ratio(mo.mem.total_read_latency_cycles as f64 / bt),
            ratio(mo.mem.edp() / ha.mem.edp().max(f64::MIN_POSITIVE)),
        ]);
    }
    t.note("the contention ratios (and therefore who wins) are preserved across scales — the scaling substitution is sound");
    t
}

/// §IV-C ablation: empirical threshold search on a validation workload.
pub fn threshold_search(scale: Scale) -> Table {
    let sp = SeededPipeline::new(scale);
    let search = ThresholdSearch::default();
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    // Validation workload: one app per class.
    let workload = ["mcf", "lbm", "gcc"];
    let mut rows = Vec::new();
    let (best, _all) = search.run(|thr| {
        let mut p = sp.pipeline.clone();
        p.thresholds = thr;
        // Re-classify with the candidate thresholds (profiles are reused).
        let luts: Vec<_> = workload.iter().map(|a| p.profile(a).clone()).collect();
        for lut in luts {
            p.insert_profile(lut);
        }
        let r = p.evaluate(&workload, heter, PolicyKind::Moca);
        let score = r.mem.edp();
        rows.push((thr, score));
        score
    });
    let mut t = Table::new(
        "threshold-search",
        "§IV-C empirical threshold calibration (memory EDP per candidate)",
        &["Thr_Lat", "Thr_BW", "memory EDP (J*s)", "best"],
    );
    for (thr, score) in rows {
        t.row(vec![
            format!("{}", thr.thr_lat),
            format!("{}", thr.thr_bw),
            format!("{score:.3e}"),
            if thr == best {
                "<-".into()
            } else {
                String::new()
            },
        ]);
    }
    t.note(format!(
        "selected thresholds: Thr_Lat={}, Thr_BW={} (platform default: 1, 10)",
        best.thr_lat, best.thr_bw
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.render().contains("ROB"));
        let t2 = table2();
        assert_eq!(t2.headers.len(), 5);
        assert!(t2.rows.len() >= 12);
    }
}
