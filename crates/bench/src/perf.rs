//! `moca-bench perf`: the cycle-engine performance-trajectory harness.
//!
//! Runs a fixed deterministic workload basket — a latency-bound chaser, a
//! bandwidth-bound streamer, and a mixed four-program machine — and reports
//! how fast the *simulator* runs them: wall seconds, simulated cycles per
//! host second, peak RSS, and the per-component host-profile split from
//! `moca-telemetry`. The JSON report (`BENCH_cycle_engine.json`) is
//! committed so every PR has a measurable perf trajectory; CI compares
//! fresh numbers against the committed baseline and warns on regressions.
//!
//! Timing runs use disabled telemetry (the production configuration);
//! component shares come from a separate profiled run of the same basket
//! entry so the `Instant::now` overhead never pollutes the timed numbers.
//! Each entry is timed best-of-[`TIMING_REPS`]: quick-scale entries finish
//! in tens of milliseconds, where a single sample is dominated by host
//! scheduler noise; the minimum wall time is the run with the least
//! interference. Every rep must simulate the identical cycle count — a
//! nondeterministic engine would invalidate the comparison and trips an
//! assert here.

use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
use moca_sim::system::{AppLaunch, System};
use moca_telemetry::{NullSink, Telemetry};
use moca_vm::policy::FirstTouchPolicy;
use moca_workloads::{app_by_name, InputSet};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Schema tag written into every report so future format changes are
/// detectable by the comparator.
pub const PERF_SCHEMA: &str = "moca-bench-perf/v1";

/// Timed repetitions per basket entry; the reported wall time is the
/// minimum (least host interference). See the module docs.
pub const TIMING_REPS: usize = 3;

/// One basket entry: a workload mix on a memory system.
struct BasketSpec {
    name: &'static str,
    /// What limits the workload ("latency" / "bandwidth" / "mixed").
    bound: &'static str,
    /// Whether the entry spends most of its simulated time memory-stalled —
    /// these are the entries the event-skip path dominates, and the ones
    /// the CI regression gate watches.
    memory_bound: bool,
    apps: &'static [&'static str],
    mem: fn() -> MemSystemConfig,
}

/// The fixed basket. Order is part of the report format.
fn basket() -> Vec<BasketSpec> {
    vec![
        BasketSpec {
            name: "mcf-ddr3",
            bound: "latency",
            memory_bound: true,
            apps: &["mcf"],
            mem: || MemSystemConfig::Homogeneous(moca_common::ModuleKind::Ddr3),
        },
        BasketSpec {
            name: "lbm-ddr3",
            bound: "bandwidth",
            memory_bound: true,
            apps: &["lbm"],
            mem: || MemSystemConfig::Homogeneous(moca_common::ModuleKind::Ddr3),
        },
        BasketSpec {
            name: "mix-heter",
            bound: "mixed",
            memory_bound: false,
            apps: &["mcf", "lbm", "gcc", "sift"],
            mem: || MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        },
        BasketSpec {
            name: "mix-heter-16",
            bound: "mixed",
            memory_bound: false,
            // A dense-colocation tenant mix: two big latency-bound apps plus
            // a rotation of the small-footprint suite, sized so the combined
            // nominal footprint (~1.8 GB) fits the 2 GB machine.
            apps: &[
                "mcf", "mser", "gcc", "sift", "stitch", "gcc", "sift", "stitch", "gcc", "sift",
                "stitch", "gcc", "sift", "stitch", "gcc", "sift",
            ],
            mem: || MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        },
    ]
}

/// Per-component share of profiled host time, as fractions of their sum.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ComponentShares {
    /// Core execute/commit ticks (includes cache lookups issued by cores).
    pub cpu: f64,
    /// DRAM channel ticks.
    pub dram: f64,
    /// Deferred writeback flushing.
    pub cache: f64,
    /// Virtual-memory work (migration epochs).
    pub vm: f64,
}

/// One timed basket entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfEntry {
    /// Basket entry name.
    pub name: String,
    /// "latency" / "bandwidth" / "mixed".
    pub bound: String,
    /// Entry participates in the CI regression gate.
    pub memory_bound: bool,
    /// Instructions per core in the timed run.
    pub instr_target: u64,
    /// Simulated cycles of the measured window.
    pub sim_cycles: u64,
    /// Host wall seconds for the timed (untraced) run.
    pub wall_seconds: f64,
    /// The headline throughput number: `sim_cycles / wall_seconds`.
    pub cycles_per_host_second: f64,
    /// Peak resident set size after this entry, in KiB (0 where
    /// unavailable). Cumulative per process, so only the max matters.
    pub peak_rss_kb: u64,
    /// Host-profile split from a separate instrumented run.
    pub components: ComponentShares,
}

/// The whole report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Format tag ([`PERF_SCHEMA`]).
    pub schema: String,
    /// "quick" or "full".
    pub scale: String,
    /// Basket entries in fixed order.
    pub entries: Vec<PerfEntry>,
}

fn build_system(spec: &BasketSpec, tel: Telemetry) -> System {
    let mem = (spec.mem)();
    let cfg = SystemConfig::multi_core(spec.apps.len(), mem);
    let launches = spec
        .apps
        .iter()
        .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
        .collect();
    System::new_with_telemetry(cfg, launches, Box::new(FirstTouchPolicy), tel)
}

/// Peak RSS of this process in KiB (`VmHWM` from procfs; 0 elsewhere).
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) = std::fs::read_to_string("/proc/self/status") {
            for line in s.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches(" kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
    }
    0
}

/// Frames per module region in the `bitalloc` churn microbench: four
/// regions of 1M frames = 4M frames total, the scale=1 regime the
/// hierarchical-bitmap allocator exists for.
const BITALLOC_FRAMES_PER_REGION: u64 = 1 << 20;

/// FNV-1a step over one pfn, matching the golden-digest hash family.
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The `bitalloc` basket entry: seeded alloc/free churn on a 4M-frame
/// heterogeneous `FrameSpace`, timed best-of-[`TIMING_REPS`] like the
/// cycle entries. `sim_cycles` is the op count (constant by construction),
/// so the headline `cycles_per_host_second` reads as allocator ops per
/// host second; rep-to-rep determinism is checked by comparing an FNV
/// fingerprint of the full pfn sequence instead.
fn run_bitalloc(quick: bool) -> PerfEntry {
    use moca_common::rng::DetRng;
    use moca_common::{ModuleKind, PAGE_SIZE};
    use moca_vm::frames::{regions_from_capacities, FrameSpace};

    let ops: u64 = if quick { 1_000_000 } else { 4_000_000 };
    eprintln!("perf: bitalloc ({ops} alloc/free ops, 4M frames) ...");
    let caps: Vec<(ModuleKind, usize, u64)> = ModuleKind::ALL
        .iter()
        .enumerate()
        .map(|(ch, &k)| (k, ch, BITALLOC_FRAMES_PER_REGION * PAGE_SIZE))
        .collect();
    // Rotations of the full kind order, so the churn exercises the
    // preference-fallback walk as well as the per-kind stripe state.
    let prefs: [[ModuleKind; 4]; 4] = std::array::from_fn(|r| {
        std::array::from_fn(|i| ModuleKind::ALL[(r + i) % ModuleKind::ALL.len()])
    });

    let mut wall = f64::INFINITY;
    let mut fingerprint: Option<u64> = None;
    for _ in 0..TIMING_REPS {
        let mut fs = FrameSpace::new(regions_from_capacities(&caps));
        let mut rng = DetRng::new(0xb17a_110c, 0);
        let mut live: Vec<u64> = Vec::new();
        let mut digest = 0xcbf29ce484222325u64;
        let t0 = std::time::Instant::now();
        for _ in 0..ops {
            // Roughly balanced churn with a bounded live set: enough
            // simultaneous frees per region to spill the LIFO cache.
            if !live.is_empty() && (live.len() >= 250_000 || rng.chance(0.45)) {
                let i = rng.below(live.len() as u64) as usize;
                let pfn = live.swap_remove(i);
                fs.free(pfn);
                digest = fnv1a(digest, pfn | 1 << 63);
            } else if let Some((pfn, _)) = fs.alloc_by_preference(&prefs[rng.below(4) as usize]) {
                live.push(pfn);
                digest = fnv1a(digest, pfn);
            }
        }
        wall = wall.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = fingerprint {
            assert_eq!(
                prev, digest,
                "bitalloc reps disagree on the pfn sequence — allocator nondeterminism"
            );
        }
        fingerprint = Some(digest);
        let budget = fs.total_frames() / 4 + 64 * 1024;
        assert!(
            (fs.alloc_bytes() as u64) < budget,
            "allocator bookkeeping {} B not bitmap-bounded (budget {budget} B)",
            fs.alloc_bytes()
        );
    }
    eprintln!(
        "perf: bitalloc: {} ops in {:.3}s = {:.2} Mops/s",
        ops,
        wall,
        ops as f64 / wall.max(1e-9) / 1e6
    );
    PerfEntry {
        name: "bitalloc".to_string(),
        bound: "alloc".to_string(),
        memory_bound: false,
        instr_target: ops,
        sim_cycles: ops,
        wall_seconds: wall,
        cycles_per_host_second: if wall > 0.0 { ops as f64 / wall } else { 0.0 },
        peak_rss_kb: peak_rss_kb(),
        components: ComponentShares::default(),
    }
}

/// Run the basket at `quick` or full scale and collect the report.
pub fn run_perf(quick: bool) -> PerfReport {
    let instr_target: u64 = if quick { 250_000 } else { 1_500_000 };
    let mut entries = Vec::new();
    for spec in basket() {
        eprintln!("perf: {} ({} instrs/core) ...", spec.name, instr_target);
        // Timed runs: telemetry disabled, exactly the production engine
        // path. Keep the fastest of TIMING_REPS fresh systems (see module
        // docs) and cross-check that every rep simulated the same cycles.
        let mut wall = f64::INFINITY;
        let mut r = None;
        for _ in 0..TIMING_REPS {
            let mut sys = build_system(&spec, Telemetry::disabled());
            let t0 = std::time::Instant::now();
            let res = sys.run(instr_target);
            wall = wall.min(t0.elapsed().as_secs_f64());
            if let Some(prev) = &r {
                let prev: &moca_sim::RunResult = prev;
                assert_eq!(
                    prev.runtime_cycles, res.runtime_cycles,
                    "perf reps disagree on simulated cycles — engine nondeterminism"
                );
            }
            r = Some(res);
        }
        let r = r.expect("TIMING_REPS >= 1");

        // Profiled run: same entry with host profiling, for the component
        // split only (its wall time is not reported).
        let tel = Telemetry::with_sink(Box::new(NullSink)).with_host_profiling();
        let mut psys = build_system(&spec, tel);
        psys.run(instr_target);
        let comp = psys.take_telemetry().components;
        let total = comp.total().as_secs_f64();
        let share = |d: std::time::Duration| {
            if total > 0.0 {
                d.as_secs_f64() / total
            } else {
                0.0
            }
        };

        let cycles = r.runtime_cycles;
        entries.push(PerfEntry {
            name: spec.name.to_string(),
            bound: spec.bound.to_string(),
            memory_bound: spec.memory_bound,
            instr_target,
            sim_cycles: cycles,
            wall_seconds: wall,
            cycles_per_host_second: if wall > 0.0 {
                cycles as f64 / wall
            } else {
                0.0
            },
            peak_rss_kb: peak_rss_kb(),
            components: ComponentShares {
                cpu: share(comp.cpu),
                dram: share(comp.dram),
                cache: share(comp.cache),
                vm: share(comp.vm),
            },
        });
        eprintln!(
            "perf: {}: {} sim cycles in {:.3}s = {:.2} Mcyc/s",
            spec.name,
            cycles,
            wall,
            cycles as f64 / wall.max(1e-9) / 1e6
        );
    }
    // The allocator microbench rides after the system basket so the fixed
    // cycle-entry order (part of the report format) is undisturbed.
    entries.push(run_bitalloc(quick));
    PerfReport {
        schema: PERF_SCHEMA.to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        entries,
    }
}

/// Render the report as an aligned text table.
pub fn render(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "moca-bench perf ({} scale)\n{:<12} {:>10} {:>12} {:>9} {:>12}  {}\n",
        report.scale, "entry", "bound", "sim-cycles", "wall-s", "Mcyc/s", "cpu/dram/cache/vm"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<12} {:>10} {:>12} {:>9.3} {:>12.2}  {:.0}%/{:.0}%/{:.0}%/{:.0}%\n",
            e.name,
            e.bound,
            e.sim_cycles,
            e.wall_seconds,
            e.cycles_per_host_second / 1e6,
            e.components.cpu * 100.0,
            e.components.dram * 100.0,
            e.components.cache * 100.0,
            e.components.vm * 100.0,
        ));
    }
    out
}

/// Save the report as pretty-printed JSON. Refuses to write a report with
/// an empty basket: a truncated `BENCH_*.json` would make every later
/// `compare`/`diff` vacuously green, which is exactly the failure mode the
/// trajectory gate exists to catch.
pub fn save(report: &PerfReport, path: &Path) -> std::io::Result<()> {
    if report.entries.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "refusing to save a perf report with an empty basket",
        ));
    }
    let json = serde_json::to_string_pretty(report).expect("perf report serializes");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// Load a committed report.
pub fn load(path: &Path) -> std::io::Result<PerfReport> {
    let s = std::fs::read_to_string(path)?;
    serde_json::from_str(&s)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// True if `e` participates in the regression gate: the memory-bound
/// entries (event-skip path), the `mix-heter*` machines (the multi-program
/// step loop the wheel + SoA + parallel work targets), and the `bitalloc`
/// allocator microbench (the hierarchical-bitmap alloc/free path).
fn gated(e: &PerfEntry) -> bool {
    e.memory_bound || e.name.starts_with("mix-heter") || e.name == "bitalloc"
}

/// Compare `fresh` against a committed `baseline`: print the per-entry and
/// per-component delta table and return the names of gated entries
/// (memory-bound or `mix-heter*`) whose cycles/host-second regressed by
/// more than `threshold` (0.20 = 20%). The caller decides whether that's a
/// warning or an error.
pub fn compare(baseline: &PerfReport, fresh: &PerfReport, threshold: f64) -> Vec<String> {
    let mut regressed = Vec::new();
    println!(
        "{:<12} {:>14} {:>14} {:>8}   component shares (cpu/dram/cache/vm) base -> now",
        "entry", "base Mcyc/s", "now Mcyc/s", "delta"
    );
    for e in &fresh.entries {
        let Some(b) = baseline.entries.iter().find(|b| b.name == e.name) else {
            println!("{:<12} (new entry, no baseline)", e.name);
            continue;
        };
        let ratio = if b.cycles_per_host_second > 0.0 {
            e.cycles_per_host_second / b.cycles_per_host_second
        } else {
            1.0
        };
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>+7.1}%   {:.0}/{:.0}/{:.0}/{:.0}% -> {:.0}/{:.0}/{:.0}/{:.0}%",
            e.name,
            b.cycles_per_host_second / 1e6,
            e.cycles_per_host_second / 1e6,
            (ratio - 1.0) * 100.0,
            b.components.cpu * 100.0,
            b.components.dram * 100.0,
            b.components.cache * 100.0,
            b.components.vm * 100.0,
            e.components.cpu * 100.0,
            e.components.dram * 100.0,
            e.components.cache * 100.0,
            e.components.vm * 100.0,
        );
        if gated(e) && ratio < 1.0 - threshold {
            regressed.push(e.name.clone());
        }
    }
    regressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basket_shape_is_fixed() {
        let b = basket();
        assert_eq!(b.len(), 4);
        assert!(b[0].memory_bound && b[1].memory_bound && !b[2].memory_bound);
        assert_eq!(b[0].bound, "latency");
        assert_eq!(b[1].bound, "bandwidth");
        assert_eq!(b[2].apps.len(), 4);
        assert_eq!(b[3].apps.len(), 16);
        assert!(!b[3].memory_bound);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![PerfEntry {
                name: "mcf-ddr3".into(),
                bound: "latency".into(),
                memory_bound: true,
                instr_target: 1000,
                sim_cycles: 123456,
                wall_seconds: 0.5,
                cycles_per_host_second: 246912.0,
                peak_rss_kb: 4096,
                components: ComponentShares {
                    cpu: 0.5,
                    dram: 0.3,
                    cache: 0.15,
                    vm: 0.05,
                },
            }],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries[0].name, "mcf-ddr3");
        assert_eq!(back.entries[0].sim_cycles, 123456);
    }

    #[test]
    fn save_refuses_empty_basket() {
        let r = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![],
        };
        let path = std::env::temp_dir().join("moca_perf_empty_refused.json");
        let err = save(&r, &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(!path.exists(), "empty report must not be written");
    }

    #[test]
    fn compare_gates_bitalloc_entry() {
        let mk = |cps: f64| PerfEntry {
            name: "bitalloc".into(),
            bound: "alloc".into(),
            memory_bound: false,
            instr_target: 1,
            sim_cycles: 1,
            wall_seconds: 1.0,
            cycles_per_host_second: cps,
            peak_rss_kb: 0,
            components: ComponentShares::default(),
        };
        let base = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(100.0)],
        };
        let slow = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(60.0)],
        };
        assert_eq!(compare(&base, &slow, 0.20), vec!["bitalloc".to_string()]);
        let ok = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(90.0)],
        };
        assert!(compare(&base, &ok, 0.20).is_empty());
    }

    #[test]
    fn compare_gates_mix_heter_entries_too() {
        let mk = |name: &str, cps: f64| PerfEntry {
            name: name.into(),
            bound: "mixed".into(),
            memory_bound: false,
            instr_target: 1,
            sim_cycles: 1,
            wall_seconds: 1.0,
            cycles_per_host_second: cps,
            peak_rss_kb: 0,
            components: ComponentShares::default(),
        };
        let base = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk("mix-heter", 100.0), mk("mix-heter-16", 100.0)],
        };
        // mix-heter* is gated despite memory_bound = false.
        let fresh = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk("mix-heter", 95.0), mk("mix-heter-16", 60.0)],
        };
        assert_eq!(
            compare(&base, &fresh, 0.20),
            vec!["mix-heter-16".to_string()]
        );
    }

    #[test]
    fn compare_flags_only_memory_bound_regressions() {
        let mk = |cps: f64, membound: bool| PerfEntry {
            name: if membound { "m" } else { "x" }.into(),
            bound: "latency".into(),
            memory_bound: membound,
            instr_target: 1,
            sim_cycles: 1,
            wall_seconds: 1.0,
            cycles_per_host_second: cps,
            peak_rss_kb: 0,
            components: ComponentShares::default(),
        };
        let base = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(100.0, true), mk(100.0, false)],
        };
        let fresh = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(70.0, true), mk(70.0, false)],
        };
        let reg = compare(&base, &fresh, 0.20);
        assert_eq!(reg, vec!["m".to_string()]);
        // A 10% dip stays under the 20% gate.
        let ok = PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries: vec![mk(90.0, true)],
        };
        assert!(compare(&base, &ok, 0.20).is_empty());
    }
}
