//! Shared experiment plumbing: run-length scales, the memory systems under
//! comparison, and a seeded pipeline that profiles each benchmark once.

use moca::pipeline::{Pipeline, PolicyKind};
use moca::profile::{profile_app, ProfileConfig};
use moca_common::par::{parallel_map, parallel_map_owned};
use moca_common::ModuleKind;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_sim::metrics::RunResult;
use moca_workloads::{app_by_name, suite, InputSet};

/// Experiment run-length scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test lengths (seconds per figure; noisy).
    Quick,
    /// Paper-reproduction lengths (minutes for the full set on one core).
    Full,
}

impl Scale {
    /// Build a pipeline at this scale.
    pub fn pipeline(self) -> Pipeline {
        match self {
            Scale::Quick => Pipeline::quick(),
            Scale::Full => Pipeline::new(),
        }
    }
}

/// The six memory systems of Figs. 8–13, in the paper's legend order.
pub fn systems_under_test() -> Vec<(String, MemSystemConfig, PolicyKind)> {
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    vec![
        (
            "Homogen-DDR3".into(),
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
            PolicyKind::Homogeneous,
        ),
        (
            "Homogen-LP".into(),
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
            PolicyKind::Homogeneous,
        ),
        (
            "Homogen-RL".into(),
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
            PolicyKind::Homogeneous,
        ),
        (
            "Homogen-HBM".into(),
            MemSystemConfig::Homogeneous(ModuleKind::Hbm),
            PolicyKind::Homogeneous,
        ),
        ("Heter-App".into(), heter, PolicyKind::HeterApp),
        ("MOCA".into(), heter, PolicyKind::Moca),
    ]
}

/// A pipeline pre-seeded with profiles for every suite benchmark (profiled
/// in parallel when worker threads are available).
pub struct SeededPipeline {
    /// The underlying pipeline, ready for `evaluate` calls.
    pub pipeline: Pipeline,
}

impl SeededPipeline {
    /// Profile the whole suite at `scale` and the default footprint scale
    /// (1/64).
    pub fn new(scale: Scale) -> SeededPipeline {
        SeededPipeline::new_scaled(scale, moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE)
    }

    /// Profile the whole suite at `scale` with an explicit
    /// footprint/capacity scale in `(0, 1]` — `1.0` runs paper-sized
    /// footprints on full-capacity machines (the regime the bitmap frame
    /// allocator exists for).
    pub fn new_scaled(scale: Scale, capacity_scale: f64) -> SeededPipeline {
        assert!(
            capacity_scale > 0.0 && capacity_scale <= 1.0,
            "capacity scale {capacity_scale} outside (0, 1]"
        );
        let mut pipeline = scale.pipeline();
        pipeline.profile_cfg.capacity_scale = capacity_scale;
        let cfg: ProfileConfig = pipeline.profile_cfg;
        let luts = parallel_map(&suite(), |spec| {
            profile_app(spec, InputSet::training(), &cfg)
        });
        for lut in luts {
            pipeline.insert_profile(lut);
        }
        SeededPipeline { pipeline }
    }

    /// Evaluate one workload on one system. Clones the seeded pipeline so
    /// callers can fan evaluations out across threads.
    pub fn evaluate(&self, apps: &[&str], mem: MemSystemConfig, policy: PolicyKind) -> RunResult {
        let mut p = self.pipeline.clone();
        p.evaluate(apps, mem, policy)
    }

    /// Evaluate many (label, apps, mem, policy) jobs in parallel.
    pub fn evaluate_all(
        &self,
        jobs: Vec<(String, Vec<&str>, MemSystemConfig, PolicyKind)>,
    ) -> Vec<(String, RunResult)> {
        parallel_map_owned(jobs, |(label, apps, mem, policy)| {
            let r = self.evaluate(&apps, mem, policy);
            (label, r)
        })
    }
}

/// All suite benchmark names in Table III order.
pub fn suite_names() -> Vec<&'static str> {
    suite().iter().map(|a| a.name).collect()
}

/// Sanity helper used by experiments: the app's expected class letter.
pub fn expected_letter(app: &str) -> char {
    app_by_name(app).expected_class.letter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_systems_in_legend_order() {
        let s = systems_under_test();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].0, "Homogen-DDR3");
        assert_eq!(s[5].0, "MOCA");
        assert!(matches!(s[5].2, PolicyKind::Moca));
    }

    #[test]
    fn suite_names_count() {
        assert_eq!(suite_names().len(), 10);
        assert_eq!(expected_letter("mcf"), 'L');
        assert_eq!(expected_letter("lbm"), 'B');
        assert_eq!(expected_letter("gcc"), 'N');
    }
}
