//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--quiet] [--jobs N] [--step-threads N] [--capacity-scale F] [--out DIR] [--trace FILE] [--metrics-window N] <target>...
//! repro explain [APP] [MEM] [--quick] [--quiet] [--jobs N] [--step-threads N] [--capacity-scale F] [--out DIR] [--top N]
//!
//! targets: table1 table2 table3 fig1 fig2 fig5 fig8 fig9 fig10 fig11
//!          fig12 fig13 fig14 fig15 fig16 thresholds migration ablations all
//! ```
//!
//! `repro explain` runs one attribution-instrumented evaluation (default
//! `mcf` on `ddr3`; MEM is one of `ddr3 lp rl hbm heter1 heter2 heter3`),
//! prints the cycle-attribution report — per-core CPI stacks, per-tier
//! stall mechanisms, the top objects by attributed stall with placement
//! verdicts, and the occupancy timeline — and writes the stable JSON twin
//! to `<out>/explain_<APP>-<MEM>.json`. Output is byte-identical across
//! repeated runs and `--jobs` counts.
//!
//! `--quiet` silences progress lines on stderr; `<out>/repro_progress.log`
//! is still written.
//!
//! `--capacity-scale F` sets the footprint/capacity scale in `(0, 1]`
//! (default 1/64, the paper-fidelity evaluation scale): workload footprints
//! and machine capacities shrink together, so placement pressure is
//! preserved. `--capacity-scale 1.0` runs the full paper-sized footprints —
//! multi-GB machines with millions of frames, the regime the hierarchical
//! bitmap frame allocator exists for.
//!
//! `--jobs N` caps the host worker threads used to fan simulations out
//! (also settable via the `MOCA_JOBS` environment variable; the flag wins).
//! `--step-threads N` additionally parallelizes core stepping *inside*
//! each simulation (`MOCA_STEP_THREADS`; default sequential). Results are
//! bit-identical regardless of either count.
//!
//! Results are printed as aligned tables and saved as JSON under `--out`
//! (default `results/`). Progress lines go to stderr and to
//! `<out>/repro_progress.log`.
//!
//! `--trace FILE` additionally runs one fully instrumented exemplar
//! evaluation (mcf on Heter config1 under MOCA) and writes a Chrome-trace /
//! Perfetto JSON file with cycle-stamped simulator events, windowed metric
//! counters, and host-side phase spans. `--metrics-window N` sets the
//! counter sampling period in cycles (default 50000 when tracing).

use moca::pipeline::PolicyKind;
use moca_bench::experiments as exp;
use moca_bench::{Scale, SeededPipeline, Table};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_telemetry::{write_chrome_trace, HostProfiler, ProgressReporter, RingSink, Telemetry};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--quiet] [--jobs N] [--step-threads N] [--capacity-scale F] [--out DIR] [--trace FILE] [--metrics-window N] <target>...\n\
         \x20      repro explain [APP] [MEM] [--quick] [--quiet] [--jobs N] [--step-threads N] [--capacity-scale F] [--out DIR] [--top N]\n\
         targets: table1 table2 table3 fig1 fig2 fig5 fig8 fig9 fig10 fig11 \
         fig12 fig13 fig14 fig15 fig16 thresholds migration ablations all\n\
         mems:    ddr3 lp rl hbm heter1 heter2 heter3"
    );
    std::process::exit(2);
}

fn set_jobs(n: &str) {
    match n.parse::<usize>() {
        // The fan-out helpers read MOCA_JOBS at each call site; exporting
        // it here makes the flag reach all of them.
        Ok(v) if v > 0 => std::env::set_var("MOCA_JOBS", v.to_string()),
        _ => {
            eprintln!("repro: --jobs wants a positive thread count, got {n:?}");
            std::process::exit(2);
        }
    }
}

fn parse_capacity_scale(n: &str) -> f64 {
    match n.parse::<f64>() {
        Ok(v) if v > 0.0 && v <= 1.0 => v,
        _ => {
            eprintln!("repro: --capacity-scale wants a fraction in (0, 1], got {n:?}");
            std::process::exit(2);
        }
    }
}

fn set_step_threads(n: &str) {
    match n.parse::<usize>() {
        // `System::new` resolves MOCA_STEP_THREADS, so exporting it here
        // reaches every simulation the targets construct. Results are
        // byte-identical for any value (see DESIGN.md §9).
        Ok(v) if v > 0 => std::env::set_var("MOCA_STEP_THREADS", v.to_string()),
        _ => {
            eprintln!("repro: --step-threads wants a positive thread count, got {n:?}");
            std::process::exit(2);
        }
    }
}

/// `repro explain`: one attribution-instrumented run, rendered + JSON.
fn explain_main(args: &[String]) -> ! {
    let mut spec = moca_bench::explain::ExplainSpec::default();
    let mut out_dir = PathBuf::from("results");
    let mut quiet = false;
    let mut positionals: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => spec.quick = true,
            "--quiet" => quiet = true,
            "--jobs" => set_jobs(&it.next().cloned().unwrap_or_else(|| usage())),
            "--step-threads" => set_step_threads(&it.next().cloned().unwrap_or_else(|| usage())),
            "--capacity-scale" => {
                spec.capacity_scale = Some(parse_capacity_scale(
                    &it.next().cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--out" => out_dir = PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())),
            "--top" => {
                let n = it.next().cloned().unwrap_or_else(|| usage());
                match n.parse::<usize>() {
                    Ok(v) if v > 0 => spec.top = v,
                    _ => {
                        eprintln!("repro explain: --top wants a positive count, got {n:?}");
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => usage(),
            p => positionals.push(p),
        }
    }
    match positionals.as_slice() {
        [] => {}
        [app] => spec.app = app.to_string(),
        [app, mem] => {
            spec.app = app.to_string();
            spec.mem = mem.to_string();
        }
        _ => usage(),
    }

    if !quiet {
        eprintln!(
            "repro explain: {} on {} ({}) ...",
            spec.app,
            spec.mem,
            if spec.quick { "quick" } else { "full" }
        );
    }
    let report = match moca_bench::explain::run_explain(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro explain: error: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", moca_bench::explain::render(&report));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("warning: could not create {}: {e}", out_dir.display());
    }
    let json_path = out_dir.join(format!("explain_{}-{}.json", spec.app, spec.mem));
    match std::fs::write(&json_path, moca_bench::explain::to_json(&report)) {
        Ok(()) => {
            if !quiet {
                eprintln!("repro explain: JSON written to {}", json_path.display());
            }
        }
        Err(e) => eprintln!("warning: could not save {}: {e}", json_path.display()),
    }
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explain") {
        explain_main(&argv[1..]);
    }
    let mut scale = Scale::Full;
    let mut capacity_scale = moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE;
    let mut out_dir = PathBuf::from("results");
    let mut trace: Option<PathBuf> = None;
    let mut metrics_window: Option<u64> = None;
    let mut quiet = false;
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut args = argv.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--quiet" => quiet = true,
            "--jobs" => set_jobs(&args.next().unwrap_or_else(|| usage())),
            "--step-threads" => set_step_threads(&args.next().unwrap_or_else(|| usage())),
            "--capacity-scale" => {
                capacity_scale = parse_capacity_scale(&args.next().unwrap_or_else(|| usage()));
            }
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--metrics-window" => {
                let n = args.next().unwrap_or_else(|| usage());
                match n.parse::<u64>() {
                    Ok(v) if v > 0 => metrics_window = Some(v),
                    _ => {
                        eprintln!(
                            "repro: --metrics-window wants a positive cycle count, got {n:?}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => usage(),
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() && trace.is_none() {
        usage();
    }
    if targets.remove("all") {
        for t in [
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig2",
            "fig5",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "thresholds",
            "migration",
            "ablations",
        ] {
            targets.insert(t.to_string());
        }
    }

    let mut progress = ProgressReporter::new(Some(&out_dir.join("repro_progress.log")));
    progress.set_quiet(quiet);
    let mut profiler = HostProfiler::new();
    let mut traced_cycles: Option<u64> = None;

    let emit = |t: &Table| {
        println!("{}", t.render());
        if let Err(e) = t.save_json(&out_dir) {
            eprintln!("warning: could not save {}.json: {e}", t.id);
        }
    };

    // Static tables need no simulation.
    if targets.contains("table1") {
        emit(&exp::table1());
    }
    if targets.contains("table2") {
        emit(&exp::table2());
    }

    let needs_profiles = trace.is_some()
        || targets.iter().any(|t| {
            matches!(
                t.as_str(),
                "table3"
                    | "fig1"
                    | "fig2"
                    | "fig5"
                    | "fig8"
                    | "fig9"
                    | "fig10"
                    | "fig11"
                    | "fig12"
                    | "fig13"
                    | "fig14"
                    | "fig15"
                    | "fig16"
                    | "migration"
                    | "ablations"
            )
        });
    if needs_profiles {
        progress.step(&format!(
            "profiling the suite ({scale:?}, capacity scale {capacity_scale}) ..."
        ));
        let sp = profiler.time("profile-suite", || {
            SeededPipeline::new_scaled(scale, capacity_scale)
        });
        progress.step("profiling done");

        if let Some(trace_path) = &trace {
            let window = metrics_window.unwrap_or(50_000);
            progress.step(&format!(
                "traced exemplar run (mcf, Heter config1, MOCA, {window}-cycle windows) ..."
            ));
            let mut p = sp.pipeline.clone();
            let mut tel = Telemetry::with_sink(Box::new(RingSink::new(200_000)))
                .with_window(window)
                .with_host_profiling();
            p.emit_classifications(&mut tel);
            let (res, mut tel) = profiler.time("traced-run", || {
                p.evaluate_with_telemetry(
                    &["mcf"],
                    MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
                    PolicyKind::Moca,
                    tel,
                )
            });
            traced_cycles = Some(res.runtime_cycles);
            let events = tel.drain_events();
            progress.step(&format!(
                "traced run finished: {} cycles, {} events captured",
                res.runtime_cycles,
                events.len()
            ));
            match write_chrome_trace(trace_path, &events, &tel.registry, Some(&profiler)) {
                Ok(()) => progress.step(&format!("trace written to {}", trace_path.display())),
                Err(e) => eprintln!("warning: could not write trace: {e}"),
            }
            print!("{}", tel.registry.render_summary());
            print!("{}", tel.components.render_summary());
        }

        let mut sp = sp;
        if targets.contains("fig1") {
            emit(&profiler.time("fig1", || exp::fig1(&mut sp)));
        }
        if targets.contains("fig2") {
            emit(&profiler.time("fig2", || exp::fig2(&mut sp)));
        }
        if targets.contains("fig5") {
            emit(&profiler.time("fig5", || exp::fig5(&mut sp)));
        }
        if targets.contains("table3") {
            emit(&profiler.time("table3", || exp::table3(&mut sp)));
        }
        if targets.contains("fig16") {
            emit(&profiler.time("fig16", || exp::fig16(&mut sp)));
        }
        if targets.contains("fig8") || targets.contains("fig9") {
            progress.step("fig8/fig9: single-core sweep (60 runs) ...");
            let (f8, f9) = profiler.time("fig8-fig9", || exp::fig8_fig9(&sp));
            progress.step("fig8/fig9 done");
            if targets.contains("fig8") {
                emit(&f8);
            }
            if targets.contains("fig9") {
                emit(&f9);
            }
        }
        let multi = ["fig10", "fig11", "fig12", "fig13"];
        if multi.iter().any(|m| targets.contains(*m)) {
            progress.step("fig10-13: multicore sweep (60 four-core runs) ...");
            let (f10, f11, f12, f13) = profiler.time("fig10-fig13", || exp::fig10_to_13(&sp));
            progress.step("fig10-13 done");
            for (name, tab) in [
                ("fig10", &f10),
                ("fig11", &f11),
                ("fig12", &f12),
                ("fig13", &f13),
            ] {
                if targets.contains(name) {
                    emit(tab);
                }
            }
        }
        if targets.contains("migration") {
            progress.step("migration study (9 runs) ...");
            emit(&profiler.time("migration", || exp::migration_study(&sp)));
            progress.step("migration study done");
        }
        if targets.contains("ablations") {
            progress.step("design ablations (fallback orders, segments, scale) ...");
            let (a, b, c) = profiler.time("ablations", || {
                (
                    exp::ablation_fallback(&sp),
                    exp::ablation_segments(&sp),
                    exp::ablation_scale(),
                )
            });
            emit(&a);
            emit(&b);
            emit(&c);
            progress.step("ablations done");
        }
        if targets.contains("fig14") || targets.contains("fig15") {
            progress.step("fig14/fig15: configuration sweep (30 four-core runs) ...");
            let (f14, f15) = profiler.time("fig14-fig15", || exp::fig14_fig15(&sp));
            progress.step("fig14/fig15 done");
            if targets.contains("fig14") {
                emit(&f14);
            }
            if targets.contains("fig15") {
                emit(&f15);
            }
        }
    }

    if targets.contains("thresholds") {
        progress.step("threshold search (16 candidate points) ...");
        emit(&profiler.time("thresholds", || exp::threshold_search(scale)));
        progress.step("threshold search done");
    }

    if !profiler.spans().is_empty() {
        eprint!("{}", profiler.render_summary(traced_cycles));
    }
    progress.step("all targets complete");
}
