//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] <target>...
//!
//! targets: table1 table2 table3 fig1 fig2 fig5 fig8 fig9 fig10 fig11
//!          fig12 fig13 fig14 fig15 fig16 thresholds migration ablations all
//! ```
//!
//! Results are printed as aligned tables and saved as JSON under `--out`
//! (default `results/`).

use moca_bench::experiments as exp;
use moca_bench::{Scale, SeededPipeline, Table};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--out DIR] <target>...\n\
         targets: table1 table2 table3 fig1 fig2 fig5 fig8 fig9 fig10 fig11 \
         fig12 fig13 fig14 fig15 fig16 thresholds migration ablations all"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() {
        usage();
    }
    if targets.remove("all") {
        for t in [
            "table1",
            "table2",
            "table3",
            "fig1",
            "fig2",
            "fig5",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "thresholds",
            "migration",
            "ablations",
        ] {
            targets.insert(t.to_string());
        }
    }

    let emit = |t: &Table| {
        println!("{}", t.render());
        if let Err(e) = t.save_json(&out_dir) {
            eprintln!("warning: could not save {}.json: {e}", t.id);
        }
    };

    // Static tables need no simulation.
    if targets.contains("table1") {
        emit(&exp::table1());
    }
    if targets.contains("table2") {
        emit(&exp::table2());
    }

    let needs_profiles = targets.iter().any(|t| {
        matches!(
            t.as_str(),
            "table3"
                | "fig1"
                | "fig2"
                | "fig5"
                | "fig8"
                | "fig9"
                | "fig10"
                | "fig11"
                | "fig12"
                | "fig13"
                | "fig14"
                | "fig15"
                | "fig16"
                | "migration"
                | "ablations"
        )
    });
    if needs_profiles {
        let t0 = Instant::now();
        eprintln!("[repro] profiling the suite ({scale:?}) ...");
        let mut sp = SeededPipeline::new(scale);
        eprintln!(
            "[repro] profiling done in {:.1}s",
            t0.elapsed().as_secs_f64()
        );

        if targets.contains("fig1") {
            emit(&exp::fig1(&mut sp));
        }
        if targets.contains("fig2") {
            emit(&exp::fig2(&mut sp));
        }
        if targets.contains("fig5") {
            emit(&exp::fig5(&mut sp));
        }
        if targets.contains("table3") {
            emit(&exp::table3(&mut sp));
        }
        if targets.contains("fig16") {
            emit(&exp::fig16(&mut sp));
        }
        if targets.contains("fig8") || targets.contains("fig9") {
            let t = Instant::now();
            eprintln!("[repro] fig8/fig9: single-core sweep (60 runs) ...");
            let (f8, f9) = exp::fig8_fig9(&sp);
            eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
            if targets.contains("fig8") {
                emit(&f8);
            }
            if targets.contains("fig9") {
                emit(&f9);
            }
        }
        let multi = ["fig10", "fig11", "fig12", "fig13"];
        if multi.iter().any(|m| targets.contains(*m)) {
            let t = Instant::now();
            eprintln!("[repro] fig10-13: multicore sweep (60 four-core runs) ...");
            let (f10, f11, f12, f13) = exp::fig10_to_13(&sp);
            eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
            for (name, tab) in [
                ("fig10", &f10),
                ("fig11", &f11),
                ("fig12", &f12),
                ("fig13", &f13),
            ] {
                if targets.contains(name) {
                    emit(tab);
                }
            }
        }
        if targets.contains("migration") {
            let t = Instant::now();
            eprintln!("[repro] migration study (9 runs) ...");
            emit(&exp::migration_study(&sp));
            eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
        }
        if targets.contains("ablations") {
            let t = Instant::now();
            eprintln!("[repro] design ablations (fallback orders, segments, scale) ...");
            emit(&exp::ablation_fallback(&sp));
            emit(&exp::ablation_segments(&sp));
            emit(&exp::ablation_scale());
            eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
        }
        if targets.contains("fig14") || targets.contains("fig15") {
            let t = Instant::now();
            eprintln!("[repro] fig14/fig15: configuration sweep (30 four-core runs) ...");
            let (f14, f15) = exp::fig14_fig15(&sp);
            eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
            if targets.contains("fig14") {
                emit(&f14);
            }
            if targets.contains("fig15") {
                emit(&f15);
            }
        }
    }

    if targets.contains("thresholds") {
        let t = Instant::now();
        eprintln!("[repro] threshold search (16 candidate points) ...");
        emit(&exp::threshold_search(scale));
        eprintln!("[repro] done in {:.1}s", t.elapsed().as_secs_f64());
    }
}
