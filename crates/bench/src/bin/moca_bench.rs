//! `moca-bench`: simulator benchmarking entry point.
//!
//! ```text
//! moca-bench perf [--quick] [--step-threads N] [--out FILE] [--compare FILE]
//! moca-bench diff BASELINE FRESH [--tolerance PCT]
//! ```
//!
//! `perf` runs the fixed cycle-engine basket (see `moca_bench::perf`) and
//! writes `BENCH_cycle_engine.json`. `--step-threads N` runs the basket
//! with intra-run parallel core stepping (`MOCA_STEP_THREADS`; results are
//! byte-identical, only the wall clock moves). With `--compare FILE` it
//! also diffs against a committed baseline, prints the per-component delta
//! table, and exits 1 when a gated entry (memory-bound or `mix-heter*`)
//! lost more than 20% cycles/host-second.
//!
//! `diff` compares two committed reports (perf or `repro explain` JSON) and
//! *does* gate: exit 0 when clean, 1 on a regression beyond the tolerance
//! (default 10%), 2 on unusable inputs — including empty baskets, which are
//! an error rather than a silent pass.

use moca_bench::{diff, perf};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: moca-bench perf [--quick] [--step-threads N] [--out FILE] [--compare FILE]\n\
         \x20      moca-bench diff BASELINE FRESH [--tolerance PCT]"
    );
    std::process::exit(2);
}

fn diff_main(mut args: impl Iterator<Item = String>) -> ! {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.10;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<f64>() {
                    Ok(pct) if pct > 0.0 && pct < 100.0 => tolerance = pct / 100.0,
                    _ => {
                        eprintln!("moca-bench diff: --tolerance wants a percentage in (0, 100), got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ => files.push(PathBuf::from(a)),
        }
    }
    let [base, fresh] = files.as_slice() else {
        usage();
    };
    match diff::diff_files(base, fresh, tolerance) {
        Ok(d) => {
            println!(
                "moca-bench diff: {} vs {} (tolerance {:.0}%)",
                base.display(),
                fresh.display(),
                tolerance * 100.0
            );
            for line in &d.lines {
                println!("  {line}");
            }
            if d.regressions.is_empty() {
                println!("diff: clean");
                std::process::exit(0);
            }
            for r in &d.regressions {
                println!("diff: REGRESSION: {r}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("moca-bench diff: error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("perf") => {}
        Some("diff") => diff_main(args),
        _ => usage(),
    }
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_cycle_engine.json");
    let mut compare: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--step-threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<usize>() {
                    // System::new resolves MOCA_STEP_THREADS, so the flag
                    // reaches every basket entry.
                    Ok(n) if n > 0 => std::env::set_var("MOCA_STEP_THREADS", n.to_string()),
                    _ => {
                        eprintln!(
                            "moca-bench perf: --step-threads wants a positive thread count, got {v:?}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--compare" => compare = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    let report = perf::run_perf(quick);
    print!("{}", perf::render(&report));
    if let Err(e) = perf::save(&report, &out) {
        eprintln!("warning: could not save {}: {e}", out.display());
    } else {
        eprintln!("perf: report written to {}", out.display());
    }

    if let Some(base_path) = compare {
        match perf::load(&base_path) {
            Ok(base) => {
                let regressed = perf::compare(&base, &report, 0.20);
                for name in &regressed {
                    // GitHub Actions picks `::error::` up as an annotation;
                    // everywhere else it is just a loud line. The 20% margin
                    // absorbs shared-runner noise; real engine regressions
                    // blow straight past it, so this gate *fails*.
                    println!(
                        "::error::moca-bench perf: {name} regressed >20% cycles/host-second vs {}",
                        base_path.display()
                    );
                }
                if regressed.is_empty() {
                    println!("perf: no gated regression vs {}", base_path.display());
                } else {
                    std::process::exit(1);
                }
            }
            Err(e) => eprintln!(
                "warning: could not load baseline {}: {e}",
                base_path.display()
            ),
        }
    }
}
