//! `moca-bench`: simulator benchmarking entry point.
//!
//! ```text
//! moca-bench perf [--quick] [--out FILE] [--compare FILE]
//! ```
//!
//! `perf` runs the fixed cycle-engine basket (see `moca_bench::perf`) and
//! writes `BENCH_cycle_engine.json`. With `--compare FILE` it also diffs
//! against a committed baseline, prints the per-component delta table, and
//! warns — without failing — when a memory-bound entry's cycles/host-second
//! regressed by more than 20%.

use moca_bench::perf;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: moca-bench perf [--quick] [--out FILE] [--compare FILE]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("perf") => {}
        _ => usage(),
    }
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_cycle_engine.json");
    let mut compare: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--compare" => compare = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    let report = perf::run_perf(quick);
    print!("{}", perf::render(&report));
    if let Err(e) = perf::save(&report, &out) {
        eprintln!("warning: could not save {}: {e}", out.display());
    } else {
        eprintln!("perf: report written to {}", out.display());
    }

    if let Some(base_path) = compare {
        match perf::load(&base_path) {
            Ok(base) => {
                let regressed = perf::compare(&base, &report, 0.20);
                for name in &regressed {
                    // GitHub Actions picks `::warning::` up as an annotation;
                    // everywhere else it is just a loud line. Warn, don't fail:
                    // shared CI runners make wall-clock numbers noisy.
                    println!(
                        "::warning::moca-bench perf: {name} regressed >20% cycles/host-second vs {}",
                        base_path.display()
                    );
                }
                if regressed.is_empty() {
                    println!(
                        "perf: no memory-bound regression vs {}",
                        base_path.display()
                    );
                }
            }
            Err(e) => eprintln!(
                "warning: could not load baseline {}: {e}",
                base_path.display()
            ),
        }
    }
}
