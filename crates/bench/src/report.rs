//! Result tables: aligned text rendering + JSON persistence.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One reproduced table/figure, as rows of strings plus notes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id (`fig8`, `table3`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (normalization, expectations from the paper).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row. Panics if the arity does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i == 0 {
                    s.push_str(&format!("{c:<w$}"));
                } else {
                    s.push_str(&format!("  {c:>w$}"));
                }
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Persist as JSON under `dir/<id>.json`.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        f.write_all(
            serde_json::to_string_pretty(self)
                .expect("serializable")
                .as_bytes(),
        )
    }
}

/// Format a ratio with 3 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric mean (ignores non-positive values, which would poison the log).
pub fn geomean(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.iter().copied().filter(|x| *x > 0.0).collect();
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.000".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("## t — demo"));
        assert!(s.contains("note: hello"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share width.
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("x", "y", &["a"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("moca_report_test");
        t.save_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("x.json")).unwrap();
        let back: Table = serde_json::from_str(&body).unwrap();
        assert_eq!(back.rows, t.rows);
    }
}
