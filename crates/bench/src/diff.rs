//! `moca-bench diff`: compare two committed JSON reports with noise
//! tolerances.
//!
//! Understands both report schemas this repo emits:
//!
//! * `moca-bench-perf/v1` (`BENCH_cycle_engine.json`) — compares
//!   cycles/host-second per basket entry; memory-bound entries whose
//!   throughput dropped by at least the tolerance are regressions.
//! * `moca-explain/v1` (`repro explain` output) — compares simulated
//!   runtime cycles and the per-core CPI-stack buckets; a runtime increase
//!   of at least the tolerance is a regression (simulated cycles are
//!   deterministic, so any change at all is worth a line in the table).
//!
//! Malformed, missing, schema-less, or *empty* inputs are hard errors, not
//! silent passes: a truncated baseline must never green-light a regression.

use crate::explain::{ExplainReport, EXPLAIN_SCHEMA};
use crate::perf::{PerfReport, PERF_SCHEMA};
use std::path::Path;

/// Outcome of a diff: rendered table lines plus the regression verdicts.
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Human-readable comparison lines, one per compared quantity.
    pub lines: Vec<String>,
    /// Regressed quantities (empty = pass).
    pub regressions: Vec<String>,
}

/// `drop >= tolerance` with a whisker of float slack, so a synthetic
/// exactly-at-threshold regression trips the gate.
fn drops_at_least(base: f64, now: f64, tolerance: f64) -> bool {
    base > 0.0 && (base - now) / base >= tolerance - 1e-12
}

fn grows_at_least(base: f64, now: f64, tolerance: f64) -> bool {
    drops_at_least(now, base, tolerance / (1.0 + tolerance))
}

fn read_report(path: &Path) -> Result<(String, String), String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let v = serde_json::parse(&body)
        .map_err(|e| format!("{}: unparseable JSON: {e}", path.display()))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or_else(|| format!("{}: no \"schema\" tag — not a moca report", path.display()))?
        .to_string();
    Ok((schema, body))
}

/// Diff two report files. `tolerance` is a fraction (0.10 = 10%). `Err` is
/// an input problem (missing/unparseable/empty/mismatched files) — callers
/// should treat it as a distinct exit status from a regression verdict.
pub fn diff_files(base: &Path, fresh: &Path, tolerance: f64) -> Result<DiffResult, String> {
    let (schema_a, body_a) = read_report(base)?;
    let (schema_b, body_b) = read_report(fresh)?;
    if schema_a != schema_b {
        return Err(format!(
            "schema mismatch: {} is {schema_a}, {} is {schema_b}",
            base.display(),
            fresh.display()
        ));
    }
    match schema_a.as_str() {
        PERF_SCHEMA => {
            let a: PerfReport = serde_json::from_str(&body_a)
                .map_err(|e| format!("{}: bad perf report: {e}", base.display()))?;
            let b: PerfReport = serde_json::from_str(&body_b)
                .map_err(|e| format!("{}: bad perf report: {e}", fresh.display()))?;
            diff_perf(base, fresh, &a, &b, tolerance)
        }
        EXPLAIN_SCHEMA => {
            let a: ExplainReport = serde_json::from_str(&body_a)
                .map_err(|e| format!("{}: bad explain report: {e}", base.display()))?;
            let b: ExplainReport = serde_json::from_str(&body_b)
                .map_err(|e| format!("{}: bad explain report: {e}", fresh.display()))?;
            diff_explain(base, fresh, &a, &b, tolerance)
        }
        other => Err(format!("unsupported report schema {other:?}")),
    }
}

fn diff_perf(
    base: &Path,
    fresh: &Path,
    a: &PerfReport,
    b: &PerfReport,
    tolerance: f64,
) -> Result<DiffResult, String> {
    for (path, r) in [(base, a), (fresh, b)] {
        if r.entries.is_empty() {
            return Err(format!(
                "{}: perf report has an empty basket — refusing to compare",
                path.display()
            ));
        }
    }
    let mut out = DiffResult::default();
    if a.scale != b.scale {
        out.lines.push(format!(
            "note: comparing {} baseline against {} run — wall-clock numbers are not like-for-like",
            a.scale, b.scale
        ));
    }
    let mut matched = 0;
    for e in &b.entries {
        let Some(be) = a.entries.iter().find(|be| be.name == e.name) else {
            out.lines
                .push(format!("{:<12} new entry, no baseline", e.name));
            continue;
        };
        matched += 1;
        let base_cps = be.cycles_per_host_second;
        let now_cps = e.cycles_per_host_second;
        let delta = if base_cps > 0.0 {
            (now_cps / base_cps - 1.0) * 100.0
        } else {
            0.0
        };
        let regressed = e.memory_bound && drops_at_least(base_cps, now_cps, tolerance);
        out.lines.push(format!(
            "{:<12} {:>12.2} -> {:>12.2} Mcyc/s ({:+.1}%){}",
            e.name,
            base_cps / 1e6,
            now_cps / 1e6,
            delta,
            if regressed { "  REGRESSION" } else { "" }
        ));
        if be.sim_cycles != e.sim_cycles && be.instr_target == e.instr_target {
            out.lines.push(format!(
                "{:<12} simulated cycles changed: {} -> {} (same instruction target)",
                e.name, be.sim_cycles, e.sim_cycles
            ));
        }
        if regressed {
            out.regressions
                .push(format!("{}: cycles/host-second", e.name));
        }
    }
    if matched == 0 {
        return Err("no basket entry names in common — nothing to compare".to_string());
    }
    Ok(out)
}

fn diff_explain(
    base: &Path,
    fresh: &Path,
    a: &ExplainReport,
    b: &ExplainReport,
    tolerance: f64,
) -> Result<DiffResult, String> {
    for (path, r) in [(base, a), (fresh, b)] {
        if r.per_core.is_empty() {
            return Err(format!(
                "{}: explain report has no cores — refusing to compare",
                path.display()
            ));
        }
    }
    let mut out = DiffResult::default();
    let delta = if a.runtime_cycles > 0 {
        (b.runtime_cycles as f64 / a.runtime_cycles as f64 - 1.0) * 100.0
    } else {
        0.0
    };
    let regressed = grows_at_least(a.runtime_cycles as f64, b.runtime_cycles as f64, tolerance);
    out.lines.push(format!(
        "runtime_cycles {} -> {} ({:+.2}%){}",
        a.runtime_cycles,
        b.runtime_cycles,
        delta,
        if regressed { "  REGRESSION" } else { "" }
    ));
    if regressed {
        out.regressions.push("runtime_cycles".to_string());
    }
    for (ca, cb) in a.per_core.iter().zip(b.per_core.iter()) {
        if ca.app != cb.app {
            out.lines.push(format!(
                "core {}: app changed {} -> {} — bucket deltas skipped",
                ca.core, ca.app, cb.app
            ));
            continue;
        }
        for ((name, va), (_, vb)) in ca.buckets.entries().into_iter().zip(cb.buckets.entries()) {
            if va != vb {
                out.lines
                    .push(format!("core {} {:<15} {} -> {}", ca.core, name, va, vb));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{ComponentShares, PerfEntry};
    use std::path::PathBuf;

    fn entry(name: &str, cps: f64, memory_bound: bool) -> PerfEntry {
        PerfEntry {
            name: name.into(),
            bound: "latency".into(),
            memory_bound,
            instr_target: 1000,
            sim_cycles: 5000,
            wall_seconds: 1.0,
            cycles_per_host_second: cps,
            peak_rss_kb: 0,
            components: ComponentShares::default(),
        }
    }

    fn perf_report(entries: Vec<PerfEntry>) -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA.into(),
            scale: "quick".into(),
            entries,
        }
    }

    fn write_tmp(name: &str, body: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("moca_bench_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, body).unwrap();
        p
    }

    fn save(name: &str, r: &PerfReport) -> PathBuf {
        write_tmp(name, &serde_json::to_string_pretty(r).unwrap())
    }

    #[test]
    fn identical_perf_reports_pass() {
        let r = perf_report(vec![entry("mcf-ddr3", 1e8, true)]);
        let a = save("ident_a.json", &r);
        let b = save("ident_b.json", &r);
        let d = diff_files(&a, &b, 0.10).unwrap();
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
    }

    #[test]
    fn ten_percent_cps_drop_is_a_regression() {
        let a = save(
            "reg_a.json",
            &perf_report(vec![entry("mcf-ddr3", 1e8, true)]),
        );
        let b = save(
            "reg_b.json",
            &perf_report(vec![entry("mcf-ddr3", 0.9e8, true)]),
        );
        let d = diff_files(&a, &b, 0.10).unwrap();
        assert_eq!(d.regressions.len(), 1, "{:?}", d.lines);
        // Non-memory-bound entries never gate.
        let a2 = save("reg_a2.json", &perf_report(vec![entry("mix", 1e8, false)]));
        let b2 = save(
            "reg_b2.json",
            &perf_report(vec![entry("mix", 0.5e8, false)]),
        );
        assert!(diff_files(&a2, &b2, 0.10).unwrap().regressions.is_empty());
        // A 5% dip stays under a 10% tolerance.
        let b3 = save(
            "reg_b3.json",
            &perf_report(vec![entry("mcf-ddr3", 0.95e8, true)]),
        );
        assert!(diff_files(&a, &b3, 0.10).unwrap().regressions.is_empty());
    }

    #[test]
    fn empty_baskets_and_bad_inputs_error() {
        let ok = save("eb_ok.json", &perf_report(vec![entry("m", 1e8, true)]));
        let empty = save("eb_empty.json", &perf_report(vec![]));
        assert!(diff_files(&ok, &empty, 0.10).is_err());
        assert!(diff_files(&empty, &ok, 0.10).is_err());

        let missing = PathBuf::from("/nonexistent/nope.json");
        assert!(diff_files(&missing, &ok, 0.10).is_err());

        let garbage = write_tmp("eb_garbage.json", "not json {");
        assert!(diff_files(&garbage, &ok, 0.10).is_err());

        let schemaless = write_tmp("eb_schemaless.json", "{\"entries\": []}");
        assert!(diff_files(&schemaless, &ok, 0.10).is_err());

        let disjoint = save(
            "eb_disjoint.json",
            &perf_report(vec![entry("z", 1e8, true)]),
        );
        assert!(diff_files(&ok, &disjoint, 0.10).is_err());
    }

    #[test]
    fn explain_runtime_growth_gates_and_buckets_are_reported() {
        let mk = |cycles: u64, load_miss: u64| ExplainReport {
            schema: EXPLAIN_SCHEMA.into(),
            target: "mcf-ddr3".into(),
            mem_label: "Homogen-DDR3".into(),
            policy: "Homogen".into(),
            scale: "quick".into(),
            runtime_cycles: cycles,
            per_core: vec![crate::explain::CoreExplain {
                core: 0,
                app: "mcf".into(),
                committed: 1000,
                cycles,
                ipc: 0.5,
                buckets: moca_telemetry::attribution::CycleBuckets {
                    committing: cycles - load_miss,
                    load_miss,
                    ..Default::default()
                },
                tiers: vec![],
                segments: vec![],
                objects: vec![],
                objects_omitted: 0,
            }],
            occupancy: vec![],
        };
        let save = |name: &str, r: &ExplainReport| {
            write_tmp(name, &serde_json::to_string_pretty(r).unwrap())
        };
        let a = save("ex_a.json", &mk(1000, 400));
        let same = save("ex_same.json", &mk(1000, 400));
        let d = diff_files(&a, &same, 0.10).unwrap();
        assert!(d.regressions.is_empty());

        let slower = save("ex_slower.json", &mk(1100, 500));
        let d = diff_files(&a, &slower, 0.10).unwrap();
        assert_eq!(d.regressions, vec!["runtime_cycles".to_string()]);
        assert!(
            d.lines.iter().any(|l| l.contains("load_miss")),
            "bucket delta should be reported: {:?}",
            d.lines
        );

        let none = save(
            "ex_none.json",
            &ExplainReport {
                per_core: vec![],
                ..mk(1000, 400)
            },
        );
        assert!(diff_files(&a, &none, 0.10).is_err());

        // Perf vs explain is a schema mismatch, not a silent pass.
        let p = write_tmp(
            "ex_perf.json",
            &serde_json::to_string_pretty(&perf_report(vec![entry("m", 1e8, true)])).unwrap(),
        );
        assert!(diff_files(&a, &p, 0.10).is_err());
    }
}
