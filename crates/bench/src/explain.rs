//! `repro explain`: cycle-attribution reports for one evaluation run.
//!
//! Runs a single application on a chosen memory system with per-core cycle
//! attribution enabled, then renders where every core cycle went (the
//! exclusive CPI-stack buckets), which *named object* the memory-stall
//! cycles belong to, which tier served them and through which mechanism,
//! and whether each object's dominant serving tier agrees with the offline
//! classifier's placement verdict.
//!
//! Reports are pure functions of the configuration: no wall-clock values
//! appear anywhere, so repeated runs (at any `--jobs` count) produce
//! byte-identical text and JSON.

use moca::classify::ClassifiedApp;
use moca::naming::NameRegistry;
use moca::pipeline::{Pipeline, PolicyKind};
use moca_common::{ModuleKind, ObjectClass};
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};
use moca_sim::metrics::RunResult;
use moca_telemetry::attribution::{
    tier_name, CycleBuckets, Mechanism, OccupancySample, TagAttr, TIER_COUNT, TIER_UNRESOLVED,
};
use moca_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Schema tag of every explain report, for the `moca-bench diff` comparator.
pub const EXPLAIN_SCHEMA: &str = "moca-explain/v1";

/// What to explain: one app on one memory label.
#[derive(Debug, Clone)]
pub struct ExplainSpec {
    /// Benchmark name (one core).
    pub app: String,
    /// Memory label: `ddr3`, `lp`, `rl`, `hbm`, `heter1..3`.
    pub mem: String,
    /// Quick-scale pipeline (CI smoke) instead of full-length runs.
    pub quick: bool,
    /// Objects listed per core, ranked by attributed stall.
    pub top: usize,
    /// Footprint/capacity scale override; `None` keeps the pipeline's
    /// default (1/64). `Some(1.0)` runs the full paper-sized footprint on
    /// the full-capacity machine.
    pub capacity_scale: Option<f64>,
}

impl Default for ExplainSpec {
    fn default() -> ExplainSpec {
        ExplainSpec {
            app: "mcf".into(),
            mem: "ddr3".into(),
            quick: false,
            top: 8,
            capacity_scale: None,
        }
    }
}

/// Resolve a memory label to its system config and the policy an explain
/// run evaluates under (homogeneous machines have nothing to place, so
/// first-touch; heterogeneous ones run MOCA's object-level allocation).
pub fn config_by_label(label: &str) -> Option<(MemSystemConfig, PolicyKind)> {
    let homog = |k| Some((MemSystemConfig::Homogeneous(k), PolicyKind::Homogeneous));
    match label {
        "ddr3" => homog(ModuleKind::Ddr3),
        "lp" | "lpddr2" => homog(ModuleKind::Lpddr2),
        "rl" | "rldram3" => homog(ModuleKind::Rldram3),
        "hbm" => homog(ModuleKind::Hbm),
        "heter1" => Some((
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
            PolicyKind::Moca,
        )),
        "heter2" => Some((
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
            PolicyKind::Moca,
        )),
        "heter3" => Some((
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
            PolicyKind::Moca,
        )),
        _ => None,
    }
}

/// The module MOCA would place a class on (§IV-E: L → RLDRAM, B → HBM,
/// N → LPDDR2).
pub fn expected_module(class: ObjectClass) -> ModuleKind {
    match class {
        ObjectClass::LatencySensitive => ModuleKind::Rldram3,
        ObjectClass::BandwidthSensitive => ModuleKind::Hbm,
        ObjectClass::NonIntensive => ModuleKind::Lpddr2,
    }
}

/// One tier's slice of a load-miss stall stack, split by mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierStack {
    /// Tier display name (`DDR3`, ..., `unresolved`).
    pub tier: String,
    /// Load-miss stall cycles served by this tier.
    pub stall_cycles: u64,
    /// `(mechanism, cycles)` split of `stall_cycles`, all mechanisms listed.
    pub mechanisms: Vec<(String, u64)>,
}

/// One named object's attribution row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectExplain {
    /// Dense object id (spec instantiation order).
    pub id: u32,
    /// Source-level label (e.g. `symtab`).
    pub label: String,
    /// Allocation-site + context name (Fig. 3 naming).
    pub name: String,
    /// Offline classifier verdict letter (`L`/`B`/`N`).
    pub class: String,
    /// Load-miss stall cycles attributed to this object.
    pub stall_cycles: u64,
    /// Share of the core's `load_miss` bucket.
    pub stall_share: f64,
    /// Cycles the core's head was this object's load blocked on a full
    /// MSHR file.
    pub mshr_full_cycles: u64,
    /// Tier serving most of this object's stall.
    pub dominant_tier: String,
    /// Module the offline classification maps this object to under MOCA.
    pub expected_module: String,
    /// Cross-check of `dominant_tier` against `expected_module`:
    /// `ok` / `mismatch` (heterogeneous MOCA runs), `n/a` (homogeneous —
    /// there is only one tier), `no-stall` (nothing attributed).
    pub verdict: String,
    /// `(tier, cycles)` stall split, all tiers listed.
    pub per_tier: Vec<(String, u64)>,
}

/// One core's full attribution report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreExplain {
    /// Core index.
    pub core: usize,
    /// Benchmark name.
    pub app: String,
    /// Committed instructions in the measured window.
    pub committed: u64,
    /// Core cycles in the measured window.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Exclusive CPI-stack buckets (sum exactly to `cycles`).
    pub buckets: CycleBuckets,
    /// Load-miss stall by serving tier, nonzero tiers only, largest first.
    pub tiers: Vec<TierStack>,
    /// `(segment, stall cycles)` for code/data/stack plus the heap total.
    pub segments: Vec<(String, u64)>,
    /// Top objects by attributed stall (`spec.top` rows; ties by id).
    pub objects: Vec<ObjectExplain>,
    /// Objects with attributed stall not shown in `objects`.
    pub objects_omitted: usize,
}

/// The whole explain report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Format tag ([`EXPLAIN_SCHEMA`]).
    pub schema: String,
    /// `<app>-<mem>` target name (e.g. `mcf-ddr3`).
    pub target: String,
    /// Memory-system label from the run.
    pub mem_label: String,
    /// Placement policy that ran.
    pub policy: String,
    /// `quick` or `full`.
    pub scale: String,
    /// Cycles until every core reached its instruction target.
    pub runtime_cycles: u64,
    /// Per-core CPI stacks and object attributions.
    pub per_core: Vec<CoreExplain>,
    /// Occupancy timeline over the measured window.
    pub occupancy: Vec<OccupancySample>,
}

/// Run the attributed evaluation and build the report. `Err` strings are
/// user errors (unknown app or memory label).
pub fn run_explain(spec: &ExplainSpec) -> Result<ExplainReport, String> {
    let (mem, policy) = config_by_label(&spec.mem).ok_or_else(|| {
        format!(
            "unknown memory label {:?} (want ddr3, lp, rl, hbm, or heter1..3)",
            spec.mem
        )
    })?;
    if !moca_workloads::suite().iter().any(|a| a.name == spec.app) {
        let names: Vec<&str> = moca_workloads::suite().iter().map(|a| a.name).collect();
        return Err(format!(
            "unknown app {:?} (want one of {})",
            spec.app,
            names.join(", ")
        ));
    }
    let mut p = if spec.quick {
        Pipeline::quick()
    } else {
        Pipeline::new()
    };
    if let Some(cs) = spec.capacity_scale {
        if !(cs > 0.0 && cs <= 1.0) {
            return Err(format!("capacity scale {cs} outside (0, 1]"));
        }
        p.profile_cfg.capacity_scale = cs;
    }
    let classified = p.classified(&spec.app).clone();
    let (res, _tel) = p.evaluate_attributed(&[&spec.app], mem, policy, Telemetry::disabled(), true);
    let check_placement = policy == PolicyKind::Moca;
    Ok(build_report(spec, &res, &[classified], check_placement))
}

/// Assemble an [`ExplainReport`] from an attributed run. `classes` carries
/// one offline classification per core, in core order.
pub fn build_report(
    spec: &ExplainSpec,
    res: &RunResult,
    classes: &[ClassifiedApp],
    check_placement: bool,
) -> ExplainReport {
    let per_core = res
        .per_core
        .iter()
        .enumerate()
        .map(|(ci, cr)| {
            let classified = &classes[ci.min(classes.len() - 1)];
            core_explain(ci, cr, classified, spec.top, check_placement)
        })
        .collect();
    ExplainReport {
        schema: EXPLAIN_SCHEMA.to_string(),
        target: format!("{}-{}", spec.app, spec.mem),
        mem_label: res.mem_label.clone(),
        policy: res.policy.clone(),
        scale: if spec.quick { "quick" } else { "full" }.to_string(),
        runtime_cycles: res.runtime_cycles,
        per_core,
        occupancy: res.occupancy.clone().unwrap_or_default(),
    }
}

fn tier_stacks(attr: &TagAttr) -> Vec<TierStack> {
    let per_tier = attr.per_tier();
    let mut order: Vec<usize> = (0..TIER_COUNT).filter(|&t| per_tier[t] > 0).collect();
    order.sort_by_key(|&t| (std::cmp::Reverse(per_tier[t]), t));
    order
        .into_iter()
        .map(|t| TierStack {
            tier: tier_name(t).to_string(),
            stall_cycles: per_tier[t],
            mechanisms: Mechanism::ALL
                .iter()
                .map(|&m| (m.name().to_string(), attr.get(t, m)))
                .collect(),
        })
        .collect()
}

fn core_explain(
    ci: usize,
    cr: &moca_sim::metrics::CoreResult,
    classified: &ClassifiedApp,
    top: usize,
    check_placement: bool,
) -> CoreExplain {
    let attr = cr
        .attr
        .as_ref()
        .expect("explain runs always enable attribution");
    let registry = NameRegistry::for_app(&moca_workloads::app_by_name(&classified.app));
    let load_miss = attr.buckets.load_miss.max(1);

    // Every object with any attributed stall, ranked by stall descending
    // (ties toward the lower id — the instantiation order).
    let mut ranked: Vec<(u32, TagAttr)> = attr
        .tags
        .iter_objects()
        .filter(|(_, t)| t.total_stall() > 0 || t.mshr_full_cycles > 0)
        .map(|(id, t)| (id.0, t.clone()))
        .collect();
    ranked.sort_by_key(|(id, t)| (std::cmp::Reverse(t.total_stall()), *id));
    let shown = ranked.len().min(top);
    let objects_omitted = ranked.len() - shown;

    let objects = ranked
        .into_iter()
        .take(top)
        .map(|(id, t)| {
            let oid = moca_common::ObjectId(id);
            let class = classified
                .object_classes
                .get(id as usize)
                .copied()
                .unwrap_or(ObjectClass::NonIntensive);
            let expected = expected_module(class);
            let dom = t.dominant_tier();
            let verdict = if t.total_stall() == 0 {
                "no-stall"
            } else if !check_placement {
                "n/a"
            } else if dom == TIER_UNRESOLVED {
                "no-stall"
            } else if tier_name(dom) == expected.name() {
                "ok"
            } else {
                "mismatch"
            };
            ObjectExplain {
                id,
                label: if (id as usize) < registry.len() {
                    registry.label_of(oid).to_string()
                } else {
                    format!("object{id}")
                },
                name: if (id as usize) < registry.len() {
                    registry.name_of(oid).to_string()
                } else {
                    String::new()
                },
                class: class.letter().to_string(),
                stall_cycles: t.total_stall(),
                stall_share: t.total_stall() as f64 / load_miss as f64,
                mshr_full_cycles: t.mshr_full_cycles,
                dominant_tier: tier_name(dom).to_string(),
                expected_module: expected.name().to_string(),
                verdict: verdict.to_string(),
                per_tier: t
                    .per_tier()
                    .iter()
                    .enumerate()
                    .map(|(ti, &v)| (tier_name(ti).to_string(), v))
                    .collect(),
            }
        })
        .collect();

    let segments = [
        moca_common::Segment::Heap,
        moca_common::Segment::Code,
        moca_common::Segment::Data,
        moca_common::Segment::Stack,
    ]
    .iter()
    .map(|&s| {
        (
            format!("{s:?}").to_lowercase(),
            attr.tags.segment(s).total_stall(),
        )
    })
    .collect();

    CoreExplain {
        core: ci,
        app: cr.app.clone(),
        committed: cr.stats.committed,
        cycles: cr.stats.cycles,
        ipc: cr.stats.ipc(),
        buckets: attr.buckets,
        tiers: tier_stacks(&attr.tags.segment(moca_common::Segment::Heap)),
        segments,
        objects,
        objects_omitted,
    }
}

/// Render the report as a human-readable text block.
pub fn render(r: &ExplainReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "repro explain: {} on {} (policy {}, {} scale)\nruntime: {} cycles\n",
        r.target, r.mem_label, r.policy, r.scale, r.runtime_cycles
    ));
    for c in &r.per_core {
        out.push_str(&format!(
            "\ncore {}: {}  ({} instrs / {} cycles, IPC {:.3})\n",
            c.core, c.app, c.committed, c.cycles, c.ipc
        ));
        out.push_str("  CPI stack (exclusive buckets):\n");
        let total = c.buckets.total().max(1);
        for (name, v) in c.buckets.entries() {
            out.push_str(&format!(
                "    {name:<15} {v:>12}  {:>5.1}%\n",
                v as f64 * 100.0 / total as f64
            ));
        }
        out.push_str(&format!(
            "    {:<15} {:>12}  100.0%\n",
            "total",
            c.buckets.total()
        ));
        if !c.tiers.is_empty() {
            out.push_str("  load-miss stall by serving tier:\n");
            for t in &c.tiers {
                let mechs: Vec<String> = t
                    .mechanisms
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(m, v)| format!("{m} {v}"))
                    .collect();
                out.push_str(&format!(
                    "    {:<10} {:>12}  ({})\n",
                    t.tier,
                    t.stall_cycles,
                    mechs.join(", ")
                ));
            }
        }
        if !c.objects.is_empty() {
            out.push_str("  top objects by attributed stall:\n");
            out.push_str(&format!(
                "    {:<3} {:<12} {:<5} {:>12} {:>7} {:<10} {:<8} {}\n",
                "id", "object", "class", "stall", "share", "tier", "expect", "verdict"
            ));
            for o in &c.objects {
                out.push_str(&format!(
                    "    {:<3} {:<12} {:<5} {:>12} {:>6.1}% {:<10} {:<8} {}\n",
                    o.id,
                    o.label,
                    o.class,
                    o.stall_cycles,
                    o.stall_share * 100.0,
                    o.dominant_tier,
                    o.expected_module,
                    o.verdict
                ));
            }
            if c.objects_omitted > 0 {
                out.push_str(&format!(
                    "    ... {} more object(s) with attributed stall\n",
                    c.objects_omitted
                ));
            }
        }
    }
    if !r.occupancy.is_empty() {
        out.push_str("\noccupancy timeline (free frames per module):\n");
        for s in &r.occupancy {
            let frames: Vec<String> = s
                .free_frames
                .iter()
                .map(|(k, v)| format!("{k} {v}"))
                .collect();
            out.push_str(&format!(
                "  @{:<12} {}  (promotions {}, demotions {})\n",
                s.at,
                frames.join(", "),
                s.promotions,
                s.demotions
            ));
        }
    }
    out
}

/// Serialize the report as pretty JSON (stable field order, trailing
/// newline).
pub fn to_json(r: &ExplainReport) -> String {
    let mut s = serde_json::to_string_pretty(r).expect("explain report serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_and_unknown_rejects() {
        for l in ["ddr3", "lp", "rl", "hbm", "heter1", "heter2", "heter3"] {
            assert!(config_by_label(l).is_some(), "label {l} should resolve");
        }
        assert!(config_by_label("sram").is_none());
        for l in ["heter1", "heter2", "heter3"] {
            assert_eq!(config_by_label(l).unwrap().1, PolicyKind::Moca);
        }
        assert_eq!(config_by_label("ddr3").unwrap().1, PolicyKind::Homogeneous);
    }

    #[test]
    fn expected_module_is_the_papers_mapping() {
        assert_eq!(
            expected_module(ObjectClass::LatencySensitive),
            ModuleKind::Rldram3
        );
        assert_eq!(
            expected_module(ObjectClass::BandwidthSensitive),
            ModuleKind::Hbm
        );
        assert_eq!(
            expected_module(ObjectClass::NonIntensive),
            ModuleKind::Lpddr2
        );
    }

    #[test]
    fn unknown_app_and_mem_error_cleanly() {
        let bad_mem = ExplainSpec {
            mem: "sram".into(),
            ..ExplainSpec::default()
        };
        assert!(run_explain(&bad_mem).is_err());
        let bad_app = ExplainSpec {
            app: "doom".into(),
            ..ExplainSpec::default()
        };
        assert!(run_explain(&bad_app).is_err());
    }

    #[test]
    fn explain_is_byte_identical_across_runs() {
        let spec = ExplainSpec {
            app: "gcc".into(),
            mem: "heter1".into(),
            quick: true,
            top: 4,
            capacity_scale: None,
        };
        let a = run_explain(&spec).unwrap();
        let b = run_explain(&spec).unwrap();
        assert_eq!(to_json(&a), to_json(&b), "explain JSON must be stable");
        assert_eq!(render(&a), render(&b), "explain text must be stable");

        // Structure sanity: schema tag, exclusive buckets, verdict fields.
        assert_eq!(a.schema, EXPLAIN_SCHEMA);
        assert_eq!(a.per_core.len(), 1);
        let c = &a.per_core[0];
        assert_eq!(c.buckets.total(), c.cycles, "buckets must sum to cycles");
        assert!(!c.objects.is_empty(), "gcc should have attributed objects");
        for o in &c.objects {
            assert!(["ok", "mismatch", "no-stall"].contains(&o.verdict.as_str()));
        }
        let json = to_json(&a);
        let v = serde_json::parse(&json).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(EXPLAIN_SCHEMA)
        );
        // The report can be read back (what `moca-bench diff` does).
        let back: ExplainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.runtime_cycles, a.runtime_cycles);
    }
}
