//! Experiment harness for the MOCA reproduction.
//!
//! Every table and figure of the paper's evaluation has a generator in
//! [`experiments`]; the `repro` binary drives them from the command line
//! (`cargo run --release -p moca-bench --bin repro -- all`) and writes both
//! aligned-text tables and JSON records (under `results/`).

pub mod diff;
pub mod experiments;
pub mod explain;
pub mod harness;
pub mod microbench;
pub mod perf;
pub mod report;

pub use harness::{Scale, SeededPipeline};
pub use report::Table;
