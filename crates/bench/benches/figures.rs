//! Scaled-down figure benchmarks: each measures one policy/system
//! comparison point from the paper's evaluation at smoke-test length, so
//! `cargo bench` exercises every experiment code path and reports the
//! simulated-system comparisons as wall-clock-stable numbers.
//!
//! The full-length reproduction lives in the `repro` binary
//! (`cargo run --release -p moca-bench --bin repro -- all`).

use moca::pipeline::{Pipeline, PolicyKind};
use moca::profile::ProfileConfig;
use moca_bench::microbench::Group;
use moca_common::ModuleKind;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn smoke_pipeline() -> Pipeline {
    let mut p = Pipeline::quick();
    p.profile_cfg = ProfileConfig {
        warmup_instrs: 60_000,
        measure_instrs: 60_000,
        ..ProfileConfig::quick()
    };
    p.eval_warmup = 50_000;
    p.eval_instrs = 60_000;
    p
}

/// Fig. 8/9 point: one app on each memory system.
fn bench_fig8_point() {
    let mut g = Group::new("fig8-single-core");
    g.sample_size(10);
    let mut p = smoke_pipeline();
    p.classified("mcf"); // profile once, outside the timed region
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    let systems = [
        (
            "ddr3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
            PolicyKind::Homogeneous,
        ),
        ("heter-app", heter, PolicyKind::HeterApp),
        ("moca", heter, PolicyKind::Moca),
    ];
    for (name, mem, policy) in systems {
        g.bench(&format!("mcf/{name}"), || {
            let mut p2 = p.clone();
            p2.evaluate(&["mcf"], mem, policy).runtime_cycles
        });
    }
}

/// Fig. 10 point: a 2B2N multicore set under Heter-App vs MOCA.
fn bench_fig10_point() {
    let mut g = Group::new("fig10-multicore");
    g.sample_size(10);
    let mut p = smoke_pipeline();
    for a in ["lbm", "tracking", "gcc", "sift"] {
        p.classified(a);
    }
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    for policy in [PolicyKind::HeterApp, PolicyKind::Moca] {
        g.bench(policy.label(), || {
            let mut p2 = p.clone();
            p2.evaluate(&["lbm", "tracking", "gcc", "sift"], heter, policy)
                .runtime_cycles
        });
    }
}

/// Profiling stage cost (the offline overhead MOCA claims is cheap).
fn bench_profiling() {
    use moca::profile::profile_app;
    use moca_workloads::{app_by_name, InputSet};
    let mut g = Group::new("offline-profiling");
    g.sample_size(10);
    let cfg = ProfileConfig {
        warmup_instrs: 40_000,
        measure_instrs: 60_000,
        ..ProfileConfig::quick()
    };
    for app in ["mcf", "gcc"] {
        let spec = app_by_name(app);
        g.bench(app, || {
            profile_app(&spec, InputSet::training(), &cfg).instructions
        });
    }
}

fn main() {
    bench_fig8_point();
    bench_fig10_point();
    bench_profiling();
}
