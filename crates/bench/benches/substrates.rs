//! Microbenchmarks for the simulation substrates: how fast the pieces
//! themselves run (simulator throughput, not simulated performance).
//!
//! Run with `cargo bench -p moca-bench --bench substrates`.

use moca_bench::microbench::Group;
use moca_cache::{CacheConfig, SetAssocCache};
use moca_common::ids::MemTag;
use moca_common::{AccessKind, CoreId, DetRng, LineAddr, ModuleKind, Segment};
use moca_dram::{Channel, ChannelConfig, DeviceTiming, MemRequest};
use moca_vm::{PageTable, Tlb};

fn bench_cache() {
    let mut g = Group::new("cache");
    g.throughput_elems(10_000);
    for (name, span) in [("hit-heavy", 400u64), ("miss-heavy", 1 << 20)] {
        let mut cache = SetAssocCache::new(CacheConfig::l2());
        let mut rng = DetRng::new(7, 7);
        g.bench(name, || {
            for _ in 0..10_000 {
                let line = LineAddr(rng.below(span));
                if !cache.access(line, false) {
                    cache.fill(line, false);
                }
            }
        });
    }
}

fn bench_dram_channel() {
    let mut g = Group::new("dram-channel");
    g.sample_size(20);
    for kind in ModuleKind::ALL {
        g.bench(&format!("stream-1k-reads/{}", kind.name()), || {
            let mut ch = Channel::new(ChannelConfig::new(DeviceTiming::for_kind(kind), 512 << 20));
            let mut now = 0u64;
            let mut sent = 0u64;
            let mut done = 0u64;
            let mut out = Vec::new();
            while done < 1000 {
                now += 1;
                while sent < 1000 && ch.can_accept(AccessKind::Read) {
                    ch.enqueue(
                        now,
                        MemRequest {
                            token: sent,
                            line: LineAddr(sent),
                            local_off: sent * 64,
                            kind: AccessKind::Read,
                            core: CoreId(0),
                            tag: MemTag::segment(Segment::Data),
                        },
                    );
                    sent += 1;
                }
                out.clear();
                ch.tick(now, &mut out);
                done += out.len() as u64;
            }
            now
        });
    }
}

fn bench_vm() {
    let mut g = Group::new("vm");
    g.throughput_elems(10_000);
    {
        let mut tlb = Tlb::new(64);
        for i in 0..64 {
            tlb.insert(i, i);
        }
        let mut rng = DetRng::new(3, 3);
        g.bench("tlb-lookup", || {
            let mut hits = 0u64;
            for _ in 0..10_000 {
                if tlb.lookup(rng.below(80)).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    }
    {
        let mut pt = PageTable::new();
        for i in 0..4096 {
            pt.map(i, i * 2);
        }
        let mut rng = DetRng::new(4, 4);
        g.bench("page-table-translate", || {
            let mut sum = 0u64;
            for _ in 0..10_000 {
                sum += pt.translate_vpn(rng.below(4096)).unwrap();
            }
            sum
        });
    }
}

fn bench_workload_gen() {
    use moca_cpu::InstrStream;
    use moca_workloads::{app_by_name, AppRun, InputSet};
    let mut g = Group::new("workload-gen");
    g.throughput_elems(100_000);
    for app in ["mcf", "lbm", "gcc"] {
        let spec = app_by_name(app);
        let sizes = moca_workloads::gen::scaled_sizes(&spec, InputSet::reference(), 1.0 / 64.0);
        let mut bases = Vec::new();
        let mut cur = 0x2000_0000u64;
        for s in sizes {
            bases.push(moca_common::VirtAddr(cur));
            cur += s;
        }
        let mut run = AppRun::new(
            &spec,
            InputSet::reference(),
            1.0 / 64.0,
            &bases,
            moca_common::VirtAddr(0x7000_0000),
            0,
        );
        g.bench(app, || {
            let mut loads = 0u64;
            for _ in 0..100_000 {
                if matches!(run.next_instr(), Some(moca_cpu::Instr::Load { .. })) {
                    loads += 1;
                }
            }
            loads
        });
    }
}

fn bench_full_system() {
    use moca_sim::config::{MemSystemConfig, SystemConfig};
    use moca_sim::system::{AppLaunch, System};
    use moca_vm::policy::FirstTouchPolicy;
    use moca_workloads::{app_by_name, InputSet};
    let mut g = Group::new("full-system");
    g.sample_size(10);
    for app in ["lbm", "gcc"] {
        g.bench(&format!("simulate-50k-instrs-{app}"), || {
            let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
            let launch = AppLaunch::untyped(app_by_name(app), InputSet::reference());
            let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
            sys.run(50_000).runtime_cycles
        });
    }
}

fn main() {
    bench_cache();
    bench_dram_channel();
    bench_vm();
    bench_workload_gen();
    bench_full_system();
}
