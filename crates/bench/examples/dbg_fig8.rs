use moca::pipeline::{Pipeline, PolicyKind};
use moca_common::ModuleKind;
use moca_sim::config::{HeterogeneousLayout, MemSystemConfig};

fn main() {
    let mut p = Pipeline::quick();
    let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app(EDP)", "LP", "RL", "HBM", "HA", "MOCA", "DDR3"
    );
    for app in ["mcf", "lbm", "gcc"] {
        let base = p.evaluate(
            &[app],
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
            PolicyKind::Homogeneous,
        );
        let be = base.mem.edp().max(1e-30);
        let rl = p.evaluate(
            &[app],
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
            PolicyKind::Homogeneous,
        );
        let hbm = p.evaluate(
            &[app],
            MemSystemConfig::Homogeneous(ModuleKind::Hbm),
            PolicyKind::Homogeneous,
        );
        let lp = p.evaluate(
            &[app],
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
            PolicyKind::Homogeneous,
        );
        let ha = p.evaluate(&[app], heter, PolicyKind::HeterApp);
        let mo = p.evaluate(&[app], heter, PolicyKind::Moca);
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            app,
            lp.mem.edp() / be,
            rl.mem.edp() / be,
            hbm.mem.edp() / be,
            ha.mem.edp() / be,
            mo.mem.edp() / be,
            1.0
        );
        println!(
            "  power W: LP {:.2} RL {:.2} HBM {:.2} HA {:.2} MOCA {:.2} DDR3 {:.2}",
            lp.mem.avg_power_w(),
            rl.mem.avg_power_w(),
            hbm.mem.avg_power_w(),
            ha.mem.avg_power_w(),
            mo.mem.avg_power_w(),
            base.mem.avg_power_w()
        );
    }
}
