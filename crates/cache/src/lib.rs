//! Cache substrate: set-associative write-back caches and MSHR files.
//!
//! Reproduces the on-chip cache hierarchy of Table I:
//!
//! * split 64 KB / 2-way / 2-cycle L1 I and D caches with 4 MSHRs,
//! * unified 512 KB / 16-way / 20-cycle L2 with 20 MSHRs,
//! * 64 B lines throughout, write-back + write-allocate, true LRU.
//!
//! The composition of the two levels into a core-private hierarchy (miss
//! paths, writebacks, DRAM hand-off) lives in `moca-sim`; this crate provides
//! the building blocks and keeps them independently testable.

pub mod mshr;
pub mod set_assoc;

pub use mshr::MshrFile;
pub use set_assoc::{CacheConfig, CacheStats, SetAssocCache, Victim};
