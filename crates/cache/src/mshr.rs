//! Miss Status Holding Registers.
//!
//! An MSHR file bounds the number of outstanding primary misses of a cache
//! (Table I: 4 for L1, 20 for L2) and merges secondary misses to the same
//! line. The MSHR count is what limits a core's memory-level parallelism —
//! the property the MOCA classifier measures through ROB-head stalls.
//!
//! The file is a fixed array of `capacity` slots searched linearly: with
//! 4–20 entries a scan over a flat array beats any tree or hash map, and
//! the search order never leaks into simulated behaviour (lookups are by
//! exact line, and the outcome of `on_miss`/`complete` is independent of
//! which slot a line occupies), so determinism is preserved without the
//! ordered map the rest of the simulator uses.

use moca_common::LineAddr;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: the caller must forward the request to the
    /// next level.
    AllocatedPrimary,
    /// Merged into an existing entry for the same line: no new downstream
    /// request is needed.
    MergedSecondary,
    /// The file is full: the requester must stall and retry.
    Full,
}

/// One register: a line with its waiter list. Invalid slots keep their
/// waiter `Vec` so its allocation is reused for the lifetime of the file.
#[derive(Debug, Clone)]
struct Slot<W> {
    valid: bool,
    line: LineAddr,
    waiters: Vec<W>,
}

/// MSHR file with per-line waiter lists. `W` is the caller's waiter token
/// (e.g. a ROB slot or an upper-level transaction id).
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    slots: Vec<Slot<W>>,
    occupancy: usize,
    peak_occupancy: usize,
    merges: u64,
    full_stalls: u64,
}

impl<W> MshrFile<W> {
    /// Create a file with `capacity` primary-miss slots.
    pub fn new(capacity: usize) -> MshrFile<W> {
        assert!(capacity > 0);
        MshrFile {
            slots: (0..capacity)
                .map(|_| Slot {
                    valid: false,
                    line: LineAddr(0),
                    waiters: Vec::new(),
                })
                .collect(),
            occupancy: 0,
            peak_occupancy: 0,
            merges: 0,
            full_stalls: 0,
        }
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        self.slots.iter().position(|s| s.valid && s.line == line)
    }

    /// Present a miss on `line` with waiter `w`.
    pub fn on_miss(&mut self, line: LineAddr, w: W) -> MshrOutcome {
        if let Some(i) = self.find(line) {
            self.slots[i].waiters.push(w);
            self.merges += 1;
            return MshrOutcome::MergedSecondary;
        }
        if self.occupancy >= self.slots.len() {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        let free = self
            .slots
            .iter()
            .position(|s| !s.valid)
            .expect("occupancy below capacity implies a free slot");
        let slot = &mut self.slots[free];
        slot.valid = true;
        slot.line = line;
        slot.waiters.push(w);
        self.occupancy += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.occupancy);
        MshrOutcome::AllocatedPrimary
    }

    /// Complete the miss on `line`, returning its waiters (empty vec if the
    /// line had no entry — e.g. a prefetch or a duplicate completion).
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// Allocation-free variant of [`MshrFile::complete`]: appends the
    /// waiters to `out`, preserving both `out`'s and the slot's capacity.
    /// This is the hot-path entry point (the fill path runs once per
    /// off-chip completion).
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<W>) {
        if let Some(i) = self.find(line) {
            let slot = &mut self.slots[i];
            slot.valid = false;
            out.append(&mut slot.waiters);
            self.occupancy -= 1;
        }
    }

    /// Whether `line` has an outstanding entry.
    pub fn pending(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Whether no further primary misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.occupancy >= self.slots.len()
    }

    /// Current number of outstanding primary misses.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy seen.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Secondary misses merged.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a requester was turned away because the file was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_then_merges() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.on_miss(LineAddr(1), 10), MshrOutcome::AllocatedPrimary);
        assert_eq!(m.on_miss(LineAddr(1), 11), MshrOutcome::MergedSecondary);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merges(), 1);
        let waiters = m.complete(LineAddr(1));
        assert_eq!(waiters, vec![10, 11]);
        assert!(!m.pending(LineAddr(1)));
    }

    #[test]
    fn full_rejects_new_lines_but_merges_existing() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.on_miss(LineAddr(1), 1);
        m.on_miss(LineAddr(2), 2);
        assert!(m.is_full());
        assert_eq!(m.on_miss(LineAddr(3), 3), MshrOutcome::Full);
        assert_eq!(m.on_miss(LineAddr(2), 4), MshrOutcome::MergedSecondary);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn completion_frees_slot() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        m.on_miss(LineAddr(7), 1);
        assert!(m.is_full());
        m.complete(LineAddr(7));
        assert_eq!(m.on_miss(LineAddr(8), 2), MshrOutcome::AllocatedPrimary);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.on_miss(LineAddr(1), 1);
        m.on_miss(LineAddr(2), 2);
        m.on_miss(LineAddr(3), 3);
        m.complete(LineAddr(1));
        m.complete(LineAddr(2));
        assert_eq!(m.peak_occupancy(), 3);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert!(m.complete(LineAddr(99)).is_empty());
    }

    #[test]
    fn complete_into_appends_and_reuses_slot() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.on_miss(LineAddr(1), 10);
        m.on_miss(LineAddr(1), 11);
        let mut out = vec![9];
        m.complete_into(LineAddr(1), &mut out);
        assert_eq!(out, vec![9, 10, 11]);
        // The slot is free again and merges still work after reuse.
        assert_eq!(m.on_miss(LineAddr(5), 1), MshrOutcome::AllocatedPrimary);
        assert_eq!(m.on_miss(LineAddr(5), 2), MshrOutcome::MergedSecondary);
        assert_eq!(m.complete(LineAddr(5)), vec![1, 2]);
    }
}
