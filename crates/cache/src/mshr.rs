//! Miss Status Holding Registers.
//!
//! An MSHR file bounds the number of outstanding primary misses of a cache
//! (Table I: 4 for L1, 20 for L2) and merges secondary misses to the same
//! line. The MSHR count is what limits a core's memory-level parallelism —
//! the property the MOCA classifier measures through ROB-head stalls.

use moca_common::{DetMap, LineAddr};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: the caller must forward the request to the
    /// next level.
    AllocatedPrimary,
    /// Merged into an existing entry for the same line: no new downstream
    /// request is needed.
    MergedSecondary,
    /// The file is full: the requester must stall and retry.
    Full,
}

/// MSHR file with per-line waiter lists. `W` is the caller's waiter token
/// (e.g. a ROB slot or an upper-level transaction id).
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: DetMap<LineAddr, Vec<W>>,
    peak_occupancy: usize,
    merges: u64,
    full_stalls: u64,
}

impl<W> MshrFile<W> {
    /// Create a file with `capacity` primary-miss slots.
    pub fn new(capacity: usize) -> MshrFile<W> {
        assert!(capacity > 0);
        MshrFile {
            capacity,
            entries: DetMap::new(),
            peak_occupancy: 0,
            merges: 0,
            full_stalls: 0,
        }
    }

    /// Present a miss on `line` with waiter `w`.
    pub fn on_miss(&mut self, line: LineAddr, w: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(w);
            self.merges += 1;
            return MshrOutcome::MergedSecondary;
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![w]);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::AllocatedPrimary
    }

    /// Complete the miss on `line`, returning its waiters (empty vec if the
    /// line had no entry — e.g. a prefetch or a duplicate completion).
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Whether `line` has an outstanding entry.
    pub fn pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether no further primary misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current number of outstanding primary misses.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Highest occupancy seen.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Secondary misses merged.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Times a requester was turned away because the file was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_then_merges() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.on_miss(LineAddr(1), 10), MshrOutcome::AllocatedPrimary);
        assert_eq!(m.on_miss(LineAddr(1), 11), MshrOutcome::MergedSecondary);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merges(), 1);
        let waiters = m.complete(LineAddr(1));
        assert_eq!(waiters, vec![10, 11]);
        assert!(!m.pending(LineAddr(1)));
    }

    #[test]
    fn full_rejects_new_lines_but_merges_existing() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.on_miss(LineAddr(1), 1);
        m.on_miss(LineAddr(2), 2);
        assert!(m.is_full());
        assert_eq!(m.on_miss(LineAddr(3), 3), MshrOutcome::Full);
        assert_eq!(m.on_miss(LineAddr(2), 4), MshrOutcome::MergedSecondary);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn completion_frees_slot() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        m.on_miss(LineAddr(7), 1);
        assert!(m.is_full());
        m.complete(LineAddr(7));
        assert_eq!(m.on_miss(LineAddr(8), 2), MshrOutcome::AllocatedPrimary);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.on_miss(LineAddr(1), 1);
        m.on_miss(LineAddr(2), 2);
        m.on_miss(LineAddr(3), 3);
        m.complete(LineAddr(1));
        m.complete(LineAddr(2));
        assert_eq!(m.peak_occupancy(), 3);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert!(m.complete(LineAddr(99)).is_empty());
    }
}
