//! Set-associative write-back cache with true LRU replacement.

use moca_common::addr::{LineAddr, CACHE_LINE_SIZE};
use moca_common::units::narrow_usize;
use moca_common::{Cycle, KB};
use serde::{Deserialize, Serialize};

/// Static configuration of one cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable name for reports ("L1D", "L2", ...).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: Cycle,
    /// Number of MSHRs (outstanding primary misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Table I L1 data cache: 64 KB, 2-way, 2 cycles, 4 MSHRs.
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            name: "L1D",
            size_bytes: 64 * KB,
            ways: 2,
            hit_latency: 2,
            mshrs: 4,
        }
    }

    /// Table I L1 instruction cache: 64 KB, 2-way, 2 cycles, 4 MSHRs.
    pub fn l1i() -> CacheConfig {
        CacheConfig {
            name: "L1I",
            size_bytes: 64 * KB,
            ways: 2,
            hit_latency: 2,
            mshrs: 4,
        }
    }

    /// Table I unified L2: 512 KB, 16-way, 20 cycles, 20 MSHRs.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            name: "L2",
            size_bytes: 512 * KB,
            ways: 16,
            hit_latency: 20,
            mshrs: 20,
        }
    }

    /// Number of sets implied by the capacity/ways/line size.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (CACHE_LINE_SIZE * self.ways as u64)
    }
}

/// An evicted line that must be written back (it was dirty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether it was dirty (needs a writeback to the next level).
    pub dirty: bool,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (loads + stores).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines evicted (any state).
    pub evictions: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        moca_common::stats::safe_div(self.misses as f64, self.accesses as f64)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    used: u64,
}

/// The cache proper.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Way>,
    set_count: u64,
    /// `set_count - 1`; the set count is asserted to be a power of two, so
    /// set selection is a mask and tag extraction a shift. `index` runs on
    /// every demand access at every level, where a 64-bit divide is
    /// measurable.
    set_mask: u64,
    set_shift: u32,
    ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache. Panics if the geometry is degenerate.
    pub fn new(cfg: CacheConfig) -> SetAssocCache {
        let set_count = cfg.sets();
        assert!(
            set_count > 0 && set_count.is_power_of_two(),
            "bad set count"
        );
        let ways = cfg.ways as usize;
        assert!(ways > 0);
        SetAssocCache {
            sets: vec![Way::default(); (set_count as usize) * ways],
            set_count,
            set_mask: set_count - 1,
            set_shift: set_count.trailing_zeros(),
            ways,
            clock: 0,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn index(&self, line: LineAddr) -> (usize, u64) {
        let set = narrow_usize(line.0 & self.set_mask);
        let tag = line.0 >> self.set_shift;
        (set * self.ways, tag)
    }

    /// Demand access. Returns `true` on hit; on a hit, LRU is updated and
    /// `write` marks the line dirty. On a miss only the statistics change —
    /// the caller drives the fill via [`SetAssocCache::fill`] once the data
    /// arrives (write-allocate).
    pub fn access(&mut self, line: LineAddr, write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let (base, tag) = self.index(line);
        for w in &mut self.sets[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.used = self.clock;
                w.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probe without updating LRU or statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (base, tag) = self.index(line);
        self.sets[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Install `line` (after a miss). `dirty` marks a write-allocate fill.
    /// Returns the victim if a valid line had to be evicted.
    ///
    /// Filling a line that is already present just refreshes its state (this
    /// happens when an MSHR merged multiple requests to the line).
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Victim> {
        self.clock += 1;
        let (base, tag) = self.index(line);
        // Already present: refresh.
        let clock = self.clock;
        for w in &mut self.sets[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.used = clock;
                w.dirty |= dirty;
                return None;
            }
        }
        // Choose an invalid way, else the LRU way.
        let set = &mut self.sets[base..base + self.ways];
        let mut victim_i = 0;
        let mut best_used = u64::MAX;
        for (i, w) in set.iter().enumerate() {
            if !w.valid {
                victim_i = i;
                break;
            }
            if w.used < best_used {
                best_used = w.used;
                victim_i = i;
            }
        }
        let w = &mut set[victim_i];
        let victim = if w.valid {
            self.stats.evictions += 1;
            if w.dirty {
                self.stats.writebacks += 1;
            }
            Some(Victim {
                line: LineAddr(w.tag * self.set_count + (line.0 % self.set_count)),
                dirty: w.dirty,
            })
        } else {
            None
        };
        *w = Way {
            tag,
            valid: true,
            dirty,
            used: self.clock,
        };
        victim
    }

    /// Accept a writeback from the level above: mark the line dirty if
    /// present, otherwise install it dirty (non-inclusive fallback). Does
    /// not count as a demand access. Returns a victim if installing evicted
    /// a valid line.
    pub fn writeback(&mut self, line: LineAddr) -> Option<Victim> {
        let (base, tag) = self.index(line);
        self.clock += 1;
        let clock = self.clock;
        for w in &mut self.sets[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.dirty = true;
                w.used = clock;
                return None;
            }
        }
        self.fill(line, true)
    }

    /// Remove `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (base, tag) = self.index(line);
        for w in &mut self.sets[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return Some(w.dirty);
            }
        }
        None
    }

    /// Number of valid lines currently resident (test/debug helper).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }

    /// Addresses of all currently resident lines (test/inspection helper).
    pub fn resident_addrs(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for set in 0..self.set_count {
            let base = (set as usize) * self.ways;
            for w in &self.sets[base..base + self.ways] {
                if w.valid {
                    out.push(LineAddr(w.tag * self.set_count + set));
                }
            }
        }
        out
    }

    /// Invalidate every line for which `pred` holds (e.g. all lines of a
    /// migrated physical page), returning the dirty ones so the caller can
    /// write their data back. Used by the OS page-migration path; a full
    /// scan is fine at migration-epoch frequency.
    pub fn invalidate_matching<F: Fn(LineAddr) -> bool>(&mut self, pred: F) -> Vec<Victim> {
        let mut dirty = Vec::new();
        for set in 0..self.set_count {
            let base = (set as usize) * self.ways;
            for w in &mut self.sets[base..base + self.ways] {
                if !w.valid {
                    continue;
                }
                let line = LineAddr(w.tag * self.set_count + set);
                if pred(line) {
                    w.valid = false;
                    if w.dirty {
                        dirty.push(Victim { line, dirty: true });
                    }
                }
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        SetAssocCache::new(CacheConfig {
            name: "tiny",
            size_bytes: 512,
            ways: 2,
            hit_latency: 1,
            mshrs: 4,
        })
    }

    /// Address that maps to `set` with tag `tag` for the tiny cache.
    fn line(set: u64, tag: u64) -> LineAddr {
        LineAddr(tag * 4 + set)
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 512);
        assert_eq!(CacheConfig::l2().sets(), 512);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(line(0, 1), false));
        assert_eq!(c.fill(line(0, 1), false), None);
        assert!(c.access(line(0, 1), false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.fill(line(0, 1), false);
        c.fill(line(0, 2), false);
        // Touch tag 1 so tag 2 is LRU.
        assert!(c.access(line(0, 1), false));
        let v = c.fill(line(0, 3), false).expect("eviction");
        assert_eq!(v.line, line(0, 2));
        assert!(c.contains(line(0, 1)));
        assert!(c.contains(line(0, 3)));
        assert!(!c.contains(line(0, 2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(line(0, 1), false);
        assert!(c.access(line(0, 1), true)); // dirty it
        c.fill(line(0, 2), false);
        let v = c.fill(line(0, 3), false).expect("eviction");
        assert_eq!(v.line, line(0, 1));
        assert!(v.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fill_of_present_line_is_noop_eviction() {
        let mut c = tiny();
        c.fill(line(1, 5), false);
        assert_eq!(c.fill(line(1, 5), true), None);
        assert_eq!(c.resident_lines(), 1);
        // The refresh marked it dirty.
        c.fill(line(1, 6), false);
        let v = c.fill(line(1, 7), false).unwrap();
        assert!(v.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(line(2, 9), true);
        assert_eq!(c.invalidate(line(2, 9)), Some(true));
        assert_eq!(c.invalidate(line(2, 9)), None);
        assert!(!c.contains(line(2, 9)));
    }

    #[test]
    fn victim_reconstructed_address_maps_to_same_set() {
        let mut c = tiny();
        c.fill(line(3, 1), false);
        c.fill(line(3, 2), false);
        let v = c.fill(line(3, 9), false).unwrap();
        assert_eq!(v.line.0 % 4, 3, "victim must come from the same set");
    }

    #[test]
    fn writeback_marks_present_line_dirty() {
        let mut c = tiny();
        c.fill(line(0, 1), false);
        assert_eq!(c.writeback(line(0, 1)), None);
        c.fill(line(0, 2), false);
        let v = c.fill(line(0, 3), false).unwrap();
        assert_eq!(v.line, line(0, 1));
        assert!(v.dirty, "writeback should have dirtied the line");
    }

    #[test]
    fn writeback_installs_missing_line_dirty() {
        let mut c = tiny();
        assert_eq!(c.writeback(line(1, 4)), None);
        assert!(c.contains(line(1, 4)));
        c.fill(line(1, 5), false);
        let v = c.fill(line(1, 6), false).unwrap();
        assert!(v.dirty);
        // Writebacks are not demand accesses.
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn invalidate_matching_returns_dirty_lines() {
        let mut c = tiny();
        c.fill(line(0, 1), true); // dirty
        c.fill(line(1, 1), false); // clean
        c.fill(line(2, 9), true); // dirty, different "page"
        let dirty = c.invalidate_matching(|l| l == line(0, 1) || l == line(1, 1));
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].line, line(0, 1));
        assert!(!c.contains(line(0, 1)));
        assert!(!c.contains(line(1, 1)));
        assert!(c.contains(line(2, 9)), "unmatched line must survive");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for s in 0..4 {
            c.fill(line(s, 7), false);
        }
        assert_eq!(c.resident_lines(), 4);
        for s in 0..4 {
            assert!(c.contains(line(s, 7)));
        }
    }
}
