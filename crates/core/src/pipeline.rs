//! End-to-end MOCA flow (Fig. 4 / Fig. 7): profile each application on the
//! training input, classify its objects, then evaluate a workload on a
//! target memory system under MOCA or a baseline policy with the reference
//! input.

use crate::classify::{classify_lut, AppThresholds, ClassifiedApp, Thresholds};
use crate::policy::{HeterAppPolicy, HomogeneousPolicy, LowPowerFirstPolicy, MocaPolicy};
use crate::profile::{profile_app, ProfileConfig, ProfileLut};
use moca_common::{DetMap, ObjectClass};
use moca_sim::config::{MemSystemConfig, SystemConfig};
use moca_sim::metrics::RunResult;
use moca_sim::system::{AppLaunch, System};
use moca_telemetry::{Event, Telemetry};
use moca_vm::PagePlacementPolicy;
use moca_workloads::{app_by_name, InputSet};

/// Which placement policy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// MOCA's object-level allocation (typed heap + per-class placement).
    Moca,
    /// Application-level allocation (the Heter-App baseline).
    HeterApp,
    /// First-touch (homogeneous machines; placement is irrelevant when all
    /// modules are identical).
    Homogeneous,
    /// Dynamic page migration: cold start in the low-power module, promote
    /// hot pages by runtime monitoring — the §IV-E counterpoint. Profiles
    /// are not consulted.
    Migration,
}

impl PolicyKind {
    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Moca => "MOCA",
            PolicyKind::HeterApp => "Heter-App",
            PolicyKind::Homogeneous => "Homogen",
            PolicyKind::Migration => "Heter-Migrate",
        }
    }
}

/// Construct the placement policy for an evaluation run. One-time setup:
/// kept out of the `evaluate*` driver bodies so the hot-path lint can hold
/// those to a no-allocation rule.
fn make_policy(policy: PolicyKind, app_classes: Vec<ObjectClass>) -> Box<dyn PagePlacementPolicy> {
    match policy {
        PolicyKind::Moca => Box::new(MocaPolicy),
        PolicyKind::HeterApp => Box::new(HeterAppPolicy::new(app_classes)),
        PolicyKind::Homogeneous => Box::new(HomogeneousPolicy),
        PolicyKind::Migration => Box::new(LowPowerFirstPolicy),
    }
}

/// The profiling → classification → evaluation pipeline, with a per-app
/// profile cache (each application is profiled once on the training input,
/// like the paper's offline stage). `Clone` copies the cache, so a seeded
/// pipeline can be fanned out across threads for parallel evaluations.
#[derive(Clone)]
pub struct Pipeline {
    /// Object-level thresholds.
    pub thresholds: Thresholds,
    /// Application-level thresholds (Heter-App / Table III).
    pub app_thresholds: AppThresholds,
    /// Profiling-run configuration.
    pub profile_cfg: ProfileConfig,
    /// Evaluation warmup instructions per core.
    pub eval_warmup: u64,
    /// Evaluation measured instructions per core.
    pub eval_instrs: u64,
    cache: DetMap<String, (ProfileLut, ClassifiedApp)>,
}

impl Pipeline {
    /// Full-length runs (used by the figure-reproduction harness).
    pub fn new() -> Pipeline {
        Pipeline {
            thresholds: Thresholds::platform_default(),
            app_thresholds: AppThresholds::default(),
            profile_cfg: ProfileConfig::default(),
            eval_warmup: 500_000,
            eval_instrs: 1_000_000,
            cache: DetMap::new(),
        }
    }

    /// Short runs for tests, examples, and quick demos.
    pub fn quick() -> Pipeline {
        Pipeline {
            profile_cfg: ProfileConfig::quick(),
            eval_warmup: 120_000,
            eval_instrs: 150_000,
            ..Pipeline::new()
        }
    }

    /// Profile + classify an application (cached). Profiling always uses the
    /// training input (§V-D).
    pub fn classified(&mut self, app: &str) -> &ClassifiedApp {
        &self.entry(app).1
    }

    /// The raw profile of an application (cached).
    pub fn profile(&mut self, app: &str) -> &ProfileLut {
        &self.entry(app).0
    }

    /// Insert an externally produced profile (e.g. from a parallel
    /// profiling sweep), classifying it with this pipeline's thresholds.
    pub fn insert_profile(&mut self, lut: ProfileLut) {
        let classified = classify_lut(&lut, self.thresholds, self.app_thresholds);
        self.cache.insert(lut.app.clone(), (lut, classified));
    }

    /// Whether an application is already profiled.
    pub fn is_seeded(&self, app: &str) -> bool {
        self.cache.contains_key(app)
    }

    fn entry(&mut self, app: &str) -> &(ProfileLut, ClassifiedApp) {
        if !self.cache.contains_key(app) {
            let spec = app_by_name(app);
            let lut = profile_app(&spec, InputSet::training(), &self.profile_cfg);
            let classified = classify_lut(&lut, self.thresholds, self.app_thresholds);
            self.cache.insert(app.to_string(), (lut, classified));
        }
        &self.cache[app]
    }

    /// Evaluate a workload (one app name per core) on `mem` under `policy`,
    /// using the reference input. Returns the full metrics bundle.
    pub fn evaluate(
        &mut self,
        apps: &[&str],
        mem: MemSystemConfig,
        policy: PolicyKind,
    ) -> RunResult {
        self.evaluate_with_telemetry(apps, mem, policy, Telemetry::disabled())
            .0
    }

    /// [`Pipeline::evaluate`] with an observability context threaded through
    /// the run. Returns the metrics bundle together with the telemetry (its
    /// sink holds the captured events, its registry the counters/windows).
    /// Telemetry is write-only for the machine: the `RunResult` is
    /// bit-identical to what [`Pipeline::evaluate`] returns.
    pub fn evaluate_with_telemetry(
        &mut self,
        apps: &[&str],
        mem: MemSystemConfig,
        policy: PolicyKind,
        tel: Telemetry,
    ) -> (RunResult, Telemetry) {
        self.evaluate_attributed(apps, mem, policy, tel, false)
    }

    /// [`Pipeline::evaluate_with_telemetry`] with per-core cycle attribution
    /// switched on: the returned `RunResult` carries CPI stacks, per-object
    /// stall ledgers, and the occupancy timeline (`repro explain` consumes
    /// this). Attribution is observational, so every simulated metric is
    /// bit-identical to the unattributed run.
    pub fn evaluate_attributed(
        &mut self,
        apps: &[&str],
        mem: MemSystemConfig,
        policy: PolicyKind,
        tel: Telemetry,
        attribution: bool,
    ) -> (RunResult, Telemetry) {
        let sys_cfg = SystemConfig {
            cores: apps.len(),
            capacity_scale: self.profile_cfg.capacity_scale,
            ..SystemConfig::single_core(mem)
        };
        let mut launches = Vec::with_capacity(apps.len());
        let mut app_classes = Vec::with_capacity(apps.len());
        for &name in apps {
            let classified = self.classified(name).clone();
            app_classes.push(classified.app_class);
            let spec = app_by_name(name);
            let launch = match policy {
                // MOCA instruments the binary with per-object types: heap
                // virtual addresses come from the typed partitions.
                PolicyKind::Moca => AppLaunch {
                    spec,
                    input: InputSet::reference(),
                    object_classes: classified.object_classes,
                },
                // Baselines have no typed heap.
                _ => AppLaunch::untyped(spec, InputSet::reference()),
            };
            launches.push(launch);
        }
        let policy_box = make_policy(policy, app_classes);
        let mut sys = System::new_with_telemetry(sys_cfg, launches, policy_box, tel);
        if policy == PolicyKind::Migration {
            sys.attach_migration(moca_sim::migration::MigrationConfig::default());
        }
        if attribution {
            sys.enable_attribution();
        }
        let result = sys.run_warmed(self.eval_warmup, self.eval_instrs);
        (result, sys.take_telemetry())
    }

    /// Emit the offline classification verdicts of every profiled app into
    /// `tel` (cycle 0: the decisions predate the run). One app-level verdict
    /// (`object: None`) plus one verdict per memory object, in the spec's
    /// instantiation order.
    pub fn emit_classifications(&mut self, tel: &mut Telemetry) {
        let mut names: Vec<String> = self.cache.keys().cloned().collect();
        names.sort();
        for name in names {
            let classified = self.cache[&name].1.clone();
            tel.record(
                0,
                Event::ClassificationVerdict {
                    app: name.clone(),
                    object: None,
                    class: classified.app_class.letter(),
                },
            );
            for (i, class) in classified.object_classes.iter().enumerate() {
                tel.record(
                    0,
                    Event::ClassificationVerdict {
                        app: name.clone(),
                        object: Some(i as u32),
                        class: class.letter(),
                    },
                );
            }
        }
    }
}

impl Pipeline {
    /// Evaluate with an arbitrary placement policy. `typed_heap` selects
    /// whether object virtual addresses come from the MOCA class partitions
    /// (required for class-aware policies) or the untyped heap.
    pub fn evaluate_custom(
        &mut self,
        apps: &[&str],
        mem: MemSystemConfig,
        policy: Box<dyn PagePlacementPolicy>,
        typed_heap: bool,
    ) -> RunResult {
        let sys_cfg = SystemConfig {
            cores: apps.len(),
            capacity_scale: self.profile_cfg.capacity_scale,
            ..SystemConfig::single_core(mem)
        };
        let launches = apps
            .iter()
            .map(|&name| {
                let classified = self.classified(name).clone();
                let spec = app_by_name(name);
                if typed_heap {
                    AppLaunch {
                        spec,
                        input: InputSet::reference(),
                        object_classes: classified.object_classes,
                    }
                } else {
                    AppLaunch::untyped(spec, InputSet::reference())
                }
            })
            .collect();
        let mut sys = System::new(sys_cfg, launches, policy);
        sys.run_warmed(self.eval_warmup, self.eval_instrs)
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::{ModuleKind, ObjectClass};
    use moca_sim::config::HeterogeneousLayout;

    #[test]
    fn table3_app_classification_reproduced() {
        let mut p = Pipeline::quick();
        for app in moca_workloads::suite() {
            let got = p.classified(app.name).app_class;
            assert_eq!(
                got, app.expected_class,
                "{} should classify as {}",
                app.name, app.expected_class
            );
        }
    }

    #[test]
    fn gcc_owns_one_latency_object() {
        // §VI-A: MOCA promotes gcc's higher-MPKI object to RLDRAM while the
        // application as a whole is non-memory-intensive.
        let mut p = Pipeline::quick();
        let c = p.classified("gcc").clone();
        assert_eq!(c.app_class, ObjectClass::NonIntensive);
        assert_eq!(
            c.object_classes[0],
            ObjectClass::LatencySensitive,
            "symtab should be latency-sensitive"
        );
        assert!(
            c.object_classes[1..]
                .iter()
                .all(|&k| k == ObjectClass::NonIntensive),
            "remaining gcc objects stay non-intensive: {:?}",
            c.object_classes
        );
    }

    #[test]
    fn disparity_has_high_and_low_mpki_major_objects() {
        // §VI-A: two major objects, one high-L2MPKI (→ RLDRAM under MOCA)
        // and one lower (→ HBM).
        // Object 0 is SAD (instantiated first, lower MPKI), object 1 is
        // imgDisp (higher MPKI) — the §VI-A instantiation order.
        let mut p = Pipeline::quick();
        let lut = p.profile("disparity").clone();
        let c = p.classified("disparity").clone();
        assert!(lut.objects[1].mpki > 2.0 * lut.objects[0].mpki);
        assert_eq!(c.object_classes[1], ObjectClass::LatencySensitive);
        assert_eq!(c.object_classes[0], ObjectClass::BandwidthSensitive);
    }

    #[test]
    fn moca_places_objects_in_distinct_modules() {
        let mut p = Pipeline::quick();
        let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
        let r = p.evaluate(&["disparity"], heter, PolicyKind::Moca);
        let app = moca_common::AppId(0);
        // Latency pages landed on RLDRAM, bandwidth pages on HBM,
        // non-intensive pages on LPDDR2.
        assert!(
            r.placement.pages_of_class(
                app,
                Some(ObjectClass::LatencySensitive),
                ModuleKind::Rldram3
            ) > 0
        );
        assert!(
            r.placement
                .pages_of_class(app, Some(ObjectClass::BandwidthSensitive), ModuleKind::Hbm)
                > 0
        );
        assert!(
            r.placement
                .pages_of_class(app, Some(ObjectClass::NonIntensive), ModuleKind::Lpddr2)
                > 0
        );
    }

    #[test]
    fn heter_app_puts_everything_in_one_module_until_full() {
        let mut p = Pipeline::quick();
        let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
        let r = p.evaluate(&["gcc"], heter, PolicyKind::HeterApp);
        let app = moca_common::AppId(0);
        // gcc is app-classified N → every page goes to LPDDR2 (it fits).
        assert_eq!(r.placement.app_pages_on(app, ModuleKind::Rldram3), 0);
        assert_eq!(r.placement.app_pages_on(app, ModuleKind::Hbm), 0);
        assert!(r.placement.app_pages_on(app, ModuleKind::Lpddr2) > 0);
    }

    #[test]
    fn moca_promotes_gccs_hot_object_to_rldram() {
        // The §VI-A gcc anecdote, end to end.
        let mut p = Pipeline::quick();
        let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
        let r = p.evaluate(&["gcc"], heter, PolicyKind::Moca);
        let app = moca_common::AppId(0);
        assert!(
            r.placement.pages_of_class(
                app,
                Some(ObjectClass::LatencySensitive),
                ModuleKind::Rldram3
            ) > 0,
            "symtab pages should reach RLDRAM under MOCA"
        );
    }
}
