//! Persistence of the offline artifacts (§III: "the classification is
//! stored as part of the application binary"; §IV-C: "we instrument the
//! memory object classification information into application binaries").
//!
//! In the real system the classification travels inside the instrumented
//! binary; here it is a JSON sidecar file that a deployment would ship next
//! to the executable. Both the raw profile LUT (§IV-A) and the classified
//! result round-trip, so profiling machines and serving machines can be
//! different hosts.

use crate::classify::ClassifiedApp;
use crate::profile::ProfileLut;
use std::io::Write;
use std::path::Path;

/// Errors from artifact persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed artifact.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "artifact I/O error: {e}"),
            PersistError::Format(e) => write!(f, "artifact format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

fn save<T: serde::Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(serde_json::to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

fn load<T: serde::de::DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let body = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&body)?)
}

impl ProfileLut {
    /// Write the lookup table to `path` as JSON.
    pub fn save_json(&self, path: &Path) -> Result<(), PersistError> {
        save(self, path)
    }

    /// Read a lookup table back.
    pub fn load_json(path: &Path) -> Result<ProfileLut, PersistError> {
        load(path)
    }
}

impl ClassifiedApp {
    /// Write the classification (the binary-instrumentation payload) to
    /// `path` as JSON.
    pub fn save_json(&self, path: &Path) -> Result<(), PersistError> {
        save(self, path)
    }

    /// Read a classification back.
    pub fn load_json(path: &Path) -> Result<ClassifiedApp, PersistError> {
        load(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_lut, AppThresholds, Thresholds};
    use crate::profile::{profile_app, ProfileConfig};
    use moca_workloads::{app_by_name, InputSet};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join("moca_persist_test").join(name)
    }

    #[test]
    fn profile_roundtrips() {
        let cfg = ProfileConfig {
            warmup_instrs: 30_000,
            measure_instrs: 40_000,
            ..ProfileConfig::quick()
        };
        let lut = profile_app(&app_by_name("gcc"), InputSet::training(), &cfg);
        let path = tmp("gcc.profile.json");
        lut.save_json(&path).unwrap();
        let back = ProfileLut::load_json(&path).unwrap();
        assert_eq!(back.app, lut.app);
        assert_eq!(back.objects.len(), lut.objects.len());
        for (a, b) in lut.objects.iter().zip(back.objects.iter()) {
            assert_eq!(a.llc_misses, b.llc_misses);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn classification_roundtrips_and_matches() {
        let cfg = ProfileConfig {
            warmup_instrs: 30_000,
            measure_instrs: 40_000,
            ..ProfileConfig::quick()
        };
        let lut = profile_app(&app_by_name("lbm"), InputSet::training(), &cfg);
        let classified = classify_lut(&lut, Thresholds::default(), AppThresholds::default());
        let path = tmp("lbm.classes.json");
        classified.save_json(&path).unwrap();
        let back = ClassifiedApp::load_json(&path).unwrap();
        assert_eq!(back.object_classes, classified.object_classes);
        assert_eq!(back.app_class, classified.app_class);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = ClassifiedApp::load_json(&tmp("nope.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not json").unwrap();
        let err = ProfileLut::load_json(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }
}
