//! Offline profiler (§IV-A/B): runs an application on the profiling
//! platform and builds the per-object lookup table of LLC MPKI and ROB-head
//! stall cycles per load miss.
//!
//! The paper profiles with hardware counters on the simulated baseline
//! machine using the *training* input; evaluation then uses the *reference*
//! input (§V-D). The profiling platform here is the homogeneous DDR3
//! single-core system — the same machine the paper normalizes against.

use crate::naming::{NameRegistry, ObjectName};
use moca_common::{ModuleKind, ObjectId, Segment};
use moca_sim::config::{MemSystemConfig, SystemConfig};
use moca_sim::system::{AppLaunch, System};
use moca_vm::policy::FirstTouchPolicy;
use moca_workloads::gen::scaled_sizes;
use moca_workloads::{AppSpec, InputSet};
use serde::{Deserialize, Serialize};

/// Profiling-run lengths (instructions per core).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Fast-forward instructions (cache/TLB warmup — the SimPoint
    /// fast-forward of §V-A).
    pub warmup_instrs: u64,
    /// Measured instructions.
    pub measure_instrs: u64,
    /// Footprint scale (must match the evaluation systems).
    pub capacity_scale: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            warmup_instrs: 500_000,
            measure_instrs: 1_000_000,
            capacity_scale: moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE,
        }
    }
}

impl ProfileConfig {
    /// Shorter runs for tests and quick demos.
    pub fn quick() -> ProfileConfig {
        ProfileConfig {
            warmup_instrs: 150_000,
            measure_instrs: 200_000,
            ..ProfileConfig::default()
        }
    }
}

/// One lookup-table entry: a named object and its profiled statistics
/// (§IV-A: "call stack, size, start address, LLC MPKI, ROB head stall
/// cycles per load miss").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectProfile {
    /// Dense id (index in the application's object list).
    pub id: ObjectId,
    /// Unique name (allocation site + calling context).
    pub name: ObjectName,
    /// Source-level label for reports.
    pub label: String,
    /// Object size in (scaled) bytes at profiling time.
    pub size_bytes: u64,
    /// Demand accesses observed.
    pub accesses: u64,
    /// Primary LLC misses observed.
    pub llc_misses: u64,
    /// Loads that waited on DRAM.
    pub miss_loads: u64,
    /// ROB-head stall cycles attributed to this object.
    pub rob_head_stall_cycles: u64,
    /// LLC misses per kilo-instruction (over the app's instructions).
    pub mpki: f64,
    /// ROB-head stall cycles per missing load — the MLP metric.
    pub stall_per_miss: f64,
}

/// The profiler's output for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileLut {
    /// Application name.
    pub app: String,
    /// Input set used.
    pub input: String,
    /// Instructions measured.
    pub instructions: u64,
    /// Per-object entries, in object-id order.
    pub objects: Vec<ObjectProfile>,
    /// Application-level LLC MPKI (Fig. 1 x-axis).
    pub app_mpki: f64,
    /// Application-level ROB-head stall per load miss (Fig. 1 y-axis).
    pub app_stall_per_miss: f64,
    /// Stack-segment MPKI (Fig. 16).
    pub stack_mpki: f64,
    /// Code-segment MPKI (Fig. 16).
    pub code_mpki: f64,
}

impl ProfileLut {
    /// Entry by object id.
    pub fn object(&self, id: ObjectId) -> &ObjectProfile {
        &self.objects[id.0 as usize]
    }
}

/// Profile `spec` on the baseline platform with `input`.
pub fn profile_app(spec: &AppSpec, input: InputSet, cfg: &ProfileConfig) -> ProfileLut {
    let registry = NameRegistry::for_app(spec);
    let sys_cfg = SystemConfig {
        capacity_scale: cfg.capacity_scale,
        ..SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3))
    };
    let launch = AppLaunch::untyped(spec.clone(), input);
    let mut sys = System::new(sys_cfg, vec![launch], Box::new(FirstTouchPolicy));
    let result = sys.run_warmed(cfg.warmup_instrs, cfg.measure_instrs);
    let stats = &result.per_core[0].stats;
    let sizes = scaled_sizes(spec, input, cfg.capacity_scale);

    let objects = spec
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let id = ObjectId(i as u32);
            let t = stats.tags.object(id);
            ObjectProfile {
                id,
                name: registry.name_of(id).clone(),
                label: o.label.to_string(),
                size_bytes: sizes[i],
                accesses: t.accesses,
                llc_misses: t.llc_misses,
                miss_loads: t.miss_loads,
                rob_head_stall_cycles: t.rob_head_stall_cycles,
                mpki: t.mpki(stats.committed),
                stall_per_miss: t.stall_per_miss(),
            }
        })
        .collect();

    ProfileLut {
        app: spec.name.to_string(),
        input: input.label.to_string(),
        instructions: stats.committed,
        objects,
        app_mpki: stats.app_mpki(),
        app_stall_per_miss: stats.app_stall_per_miss(),
        stack_mpki: stats.tags.segment(Segment::Stack).mpki(stats.committed),
        code_mpki: stats.tags.segment(Segment::Code).mpki(stats.committed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_workloads::app_by_name;

    fn quick_lut(name: &str) -> ProfileLut {
        profile_app(
            &app_by_name(name),
            InputSet::training(),
            &ProfileConfig::quick(),
        )
    }

    #[test]
    fn lut_covers_all_objects() {
        let spec = app_by_name("mcf");
        let lut = quick_lut("mcf");
        assert_eq!(lut.objects.len(), spec.objects.len());
        assert!(lut.instructions >= 200_000);
        for o in &lut.objects {
            assert!(o.size_bytes > 0);
        }
    }

    #[test]
    fn chase_object_dominates_mpki_and_stall() {
        let lut = quick_lut("mcf");
        let arcs = &lut.objects[0];
        let perm = &lut.objects[3];
        assert!(arcs.mpki > 10.0, "arcs mpki {}", arcs.mpki);
        assert!(arcs.mpki > 50.0 * perm.mpki.max(0.01));
        assert!(
            arcs.stall_per_miss > 15.0,
            "arcs stall {}",
            arcs.stall_per_miss
        );
    }

    #[test]
    fn stream_app_has_low_stall() {
        let lut = quick_lut("lbm");
        assert!(lut.app_mpki > 10.0);
        assert!(
            lut.app_stall_per_miss < 5.0,
            "lbm stall {}",
            lut.app_stall_per_miss
        );
    }

    #[test]
    fn quiet_app_has_low_mpki() {
        let lut = quick_lut("stitch");
        assert!(lut.app_mpki < 5.0, "stitch mpki {}", lut.app_mpki);
    }

    #[test]
    fn stack_and_code_mpki_are_low() {
        // Fig. 16: stack and code segments cache well.
        let lut = quick_lut("mcf");
        assert!(lut.stack_mpki < 1.0, "stack {}", lut.stack_mpki);
        assert!(lut.code_mpki < 5.0, "code {}", lut.code_mpki);
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = quick_lut("milc");
        let b = quick_lut("milc");
        assert_eq!(a.instructions, b.instructions);
        for (x, y) in a.objects.iter().zip(b.objects.iter()) {
            assert_eq!(x.llc_misses, y.llc_misses);
            assert_eq!(x.rob_head_stall_cycles, y.rob_head_stall_cycles);
        }
    }
}
