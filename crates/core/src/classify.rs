//! Classification (§III-B, §IV-C, Fig. 5).
//!
//! Objects with `LLC MPKI > Thr_Lat` are memory-intensive; among those,
//! `ROB-head stall cycles per load miss > Thr_BW` means the misses are
//! exposed (no MLP) ⇒ latency-sensitive, otherwise they overlap ⇒
//! bandwidth-sensitive. Everything else is non-memory-intensive.
//!
//! §IV-C: thresholds are *empirically set per platform* ("Thr_Lat and
//! Thr_BW need to be customized for a given system"). The paper's gem5
//! machine used (1, 20); the calibration for this repository's simulator —
//! reproduced by [`ThresholdSearch`] — lands at (1, 10): our ROB-head stall
//! attribution begins when the load reaches the commit head, which shifts
//! the absolute stall scale down relative to gem5's.

use crate::profile::ProfileLut;
use moca_common::{ObjectClass, ObjectId};
use serde::{Deserialize, Serialize};

/// Object-level classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// LLC MPKI above which an object is memory-intensive.
    pub thr_lat: f64,
    /// ROB-head stall cycles per load miss above which a memory-intensive
    /// object is latency-sensitive.
    pub thr_bw: f64,
}

impl Thresholds {
    /// Calibrated defaults for this simulator platform (§IV-C methodology).
    pub fn platform_default() -> Thresholds {
        Thresholds {
            thr_lat: 1.0,
            thr_bw: 10.0,
        }
    }

    /// The values the paper reports for its gem5 platform.
    pub fn paper_nominal() -> Thresholds {
        Thresholds {
            thr_lat: 1.0,
            thr_bw: 20.0,
        }
    }

    /// Fig. 5: classify one object from its metrics.
    pub fn classify(&self, mpki: f64, stall_per_miss: f64) -> ObjectClass {
        if mpki <= self.thr_lat {
            ObjectClass::NonIntensive
        } else if stall_per_miss > self.thr_bw {
            ObjectClass::LatencySensitive
        } else {
            ObjectClass::BandwidthSensitive
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::platform_default()
    }
}

/// Application-level thresholds used by the Heter-App baseline (Phadke &
/// Narayanasamy profile whole applications; their cut-offs sit higher than
/// the per-object ones because an application aggregates quiet objects over
/// the same instruction count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppThresholds {
    /// App-level memory-intensity threshold (LLC MPKI).
    pub thr_lat: f64,
    /// App-level MLP threshold (ROB-head stall cycles per load miss).
    pub thr_bw: f64,
}

impl Default for AppThresholds {
    fn default() -> Self {
        AppThresholds {
            thr_lat: 5.0,
            thr_bw: 10.0,
        }
    }
}

impl AppThresholds {
    /// Classify a whole application (Table III / Fig. 1).
    pub fn classify(&self, app_mpki: f64, app_stall_per_miss: f64) -> ObjectClass {
        if app_mpki <= self.thr_lat {
            ObjectClass::NonIntensive
        } else if app_stall_per_miss > self.thr_bw {
            ObjectClass::LatencySensitive
        } else {
            ObjectClass::BandwidthSensitive
        }
    }
}

/// Classification result for one application: the information MOCA
/// instruments into the binary (§III-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifiedApp {
    /// Application name.
    pub app: String,
    /// Per-object class, indexed by object id.
    pub object_classes: Vec<ObjectClass>,
    /// Application-level class (what Heter-App uses).
    pub app_class: ObjectClass,
    /// Thresholds used.
    pub thresholds: Thresholds,
}

impl ClassifiedApp {
    /// Class of one object.
    pub fn class_of(&self, id: ObjectId) -> ObjectClass {
        self.object_classes[id.0 as usize]
    }

    /// Count of objects in each class `(L, B, N)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for k in &self.object_classes {
            match k {
                ObjectClass::LatencySensitive => c.0 += 1,
                ObjectClass::BandwidthSensitive => c.1 += 1,
                ObjectClass::NonIntensive => c.2 += 1,
            }
        }
        c
    }
}

/// Classify every object of a profiled application (plus the app itself).
pub fn classify_lut(
    lut: &ProfileLut,
    thresholds: Thresholds,
    app_thresholds: AppThresholds,
) -> ClassifiedApp {
    ClassifiedApp {
        app: lut.app.clone(),
        object_classes: lut
            .objects
            .iter()
            .map(|o| thresholds.classify(o.mpki, o.stall_per_miss))
            .collect(),
        app_class: app_thresholds.classify(lut.app_mpki, lut.app_stall_per_miss),
        thresholds,
    }
}

/// Reproduction of the §IV-C empirical threshold search: sweep a grid of
/// `(Thr_Lat, Thr_BW)` candidates, score each by an evaluation callback
/// (typically MOCA's memory EDP on a validation workload), and return the
/// best.
#[derive(Debug, Clone)]
pub struct ThresholdSearch {
    /// Candidate `Thr_Lat` values.
    pub lat_grid: Vec<f64>,
    /// Candidate `Thr_BW` values.
    pub bw_grid: Vec<f64>,
}

impl Default for ThresholdSearch {
    fn default() -> Self {
        ThresholdSearch {
            lat_grid: vec![0.5, 1.0, 2.0, 5.0],
            bw_grid: vec![5.0, 10.0, 20.0, 40.0],
        }
    }
}

impl ThresholdSearch {
    /// Run the sweep. `score` maps thresholds to a cost (lower is better,
    /// e.g. memory EDP). Returns the best thresholds and all scored points.
    pub fn run<F: FnMut(Thresholds) -> f64>(
        &self,
        mut score: F,
    ) -> (Thresholds, Vec<(Thresholds, f64)>) {
        assert!(!self.lat_grid.is_empty() && !self.bw_grid.is_empty());
        let mut results = Vec::new();
        for &thr_lat in &self.lat_grid {
            for &thr_bw in &self.bw_grid {
                let t = Thresholds { thr_lat, thr_bw };
                let s = score(t);
                results.push((t, s));
            }
        }
        let best = results
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are comparable"))
            .expect("non-empty grid")
            .0;
        (best, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_regions() {
        let t = Thresholds::platform_default();
        assert_eq!(t.classify(0.5, 100.0), ObjectClass::NonIntensive);
        assert_eq!(t.classify(30.0, 35.0), ObjectClass::LatencySensitive);
        assert_eq!(t.classify(30.0, 2.0), ObjectClass::BandwidthSensitive);
        // Boundary: at exactly Thr_Lat the object is still non-intensive.
        assert_eq!(t.classify(1.0, 50.0), ObjectClass::NonIntensive);
    }

    #[test]
    fn classification_is_monotone_in_mpki() {
        // Raising MPKI never moves an object from intensive to
        // non-intensive.
        let t = Thresholds::platform_default();
        let rank = |c: ObjectClass| matches!(c, ObjectClass::NonIntensive) as u8;
        for stall in [0.0, 5.0, 15.0, 50.0] {
            let mut last = 1u8;
            for mpki in [0.0, 0.5, 1.0, 2.0, 10.0, 100.0] {
                let r = rank(t.classify(mpki, stall));
                assert!(r <= last, "intensity not monotone");
                last = r;
            }
        }
    }

    #[test]
    fn paper_nominal_differs_from_platform() {
        assert_ne!(Thresholds::paper_nominal(), Thresholds::platform_default());
        assert_eq!(Thresholds::paper_nominal().thr_bw, 20.0);
    }

    #[test]
    fn threshold_search_finds_minimum() {
        let search = ThresholdSearch::default();
        // Synthetic score with a unique minimum at (2, 10).
        let (best, all) = search.run(|t| (t.thr_lat - 2.0).abs() + (t.thr_bw - 10.0).abs());
        assert_eq!(best.thr_lat, 2.0);
        assert_eq!(best.thr_bw, 10.0);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn class_counts_sum() {
        let c = ClassifiedApp {
            app: "x".into(),
            object_classes: vec![
                ObjectClass::LatencySensitive,
                ObjectClass::BandwidthSensitive,
                ObjectClass::NonIntensive,
                ObjectClass::NonIntensive,
            ],
            app_class: ObjectClass::LatencySensitive,
            thresholds: Thresholds::default(),
        };
        assert_eq!(c.class_counts(), (1, 1, 2));
        assert_eq!(c.class_of(ObjectId(2)), ObjectClass::NonIntensive);
    }
}
