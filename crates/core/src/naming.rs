//! Memory-object naming (§III-A, Fig. 3).
//!
//! A heap object is named by the return address of the allocation call that
//! created it plus the return addresses of its calling context, up to five
//! levels (§V-A). Two objects allocated through the same `malloc` wrapper
//! from different call sites therefore get distinct names — the example of
//! Fig. 3, and exactly what the `disparity`/`tracking` workload models
//! exercise.

use moca_common::units::narrow_u32;
use moca_common::{DetMap, ObjectId};
use moca_workloads::AppSpec;
use serde::{Deserialize, Serialize};

/// Maximum calling-context depth recorded (§V-A: "five levels of return
/// addresses in our callstack").
pub const MAX_CONTEXT_DEPTH: usize = 5;

/// The unique name of a heap object.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectName {
    /// Return address of the allocation function call.
    pub alloc_site: u64,
    /// Return addresses of the callers, innermost first, truncated to
    /// [`MAX_CONTEXT_DEPTH`].
    pub context: Vec<u64>,
}

impl ObjectName {
    /// Build a name, truncating the context to the recorded depth.
    pub fn new(alloc_site: u64, context: &[u64]) -> ObjectName {
        ObjectName {
            alloc_site,
            context: context.iter().take(MAX_CONTEXT_DEPTH).copied().collect(),
        }
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.alloc_site)?;
        for c in &self.context {
            write!(f, "<{c:#x}")?;
        }
        Ok(())
    }
}

/// Interns object names to dense [`ObjectId`]s — the profiler's lookup
/// table key (§IV-A: "maintain all the objects within an application in a
/// lookup table").
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    ids: DetMap<ObjectName, ObjectId>,
    names: Vec<ObjectName>,
    labels: Vec<&'static str>,
}

impl NameRegistry {
    /// Empty registry.
    pub fn new() -> NameRegistry {
        NameRegistry::default()
    }

    /// Intern a name, returning its id (existing or fresh).
    pub fn intern(&mut self, name: ObjectName, label: &'static str) -> ObjectId {
        if let Some(&id) = self.ids.get(&name) {
            return id;
        }
        let id = ObjectId(narrow_u32(self.names.len() as u64));
        self.ids.insert(name.clone(), id);
        self.names.push(name);
        self.labels.push(label);
        id
    }

    /// Look up a name without interning.
    pub fn get(&self, name: &ObjectName) -> Option<ObjectId> {
        self.ids.get(name).copied()
    }

    /// The name of an id.
    pub fn name_of(&self, id: ObjectId) -> &ObjectName {
        &self.names[id.0 as usize]
    }

    /// The source-level label of an id.
    pub fn label_of(&self, id: ObjectId) -> &'static str {
        self.labels[id.0 as usize]
    }

    /// Number of distinct objects.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Build the registry for an application: intern every object's
    /// allocation-site + context name in `spec.objects` order.
    ///
    /// The simulator tags accesses with the object's *index*; this function
    /// asserts the naming convention yields exactly one id per object (i.e.
    /// `(alloc_site, context)` pairs are unique), which is what makes the
    /// index a faithful stand-in for the name at runtime.
    pub fn for_app(spec: &AppSpec) -> NameRegistry {
        let mut reg = NameRegistry::new();
        for (i, o) in spec.objects.iter().enumerate() {
            let id = reg.intern(ObjectName::new(o.alloc_site, &o.call_stack), o.label);
            assert_eq!(
                id.0 as usize, i,
                "{}: object {} name collides with an earlier object",
                spec.name, o.label
            );
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_workloads::suite;

    #[test]
    fn same_site_different_context_distinct() {
        // The Fig. 3 scenario: one malloc wrapper, two callers.
        let mut reg = NameRegistry::new();
        let a = reg.intern(ObjectName::new(0x4004ee, &[0x400600]), "a");
        let b = reg.intern(ObjectName::new(0x4004ee, &[0x400700]), "b");
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut reg = NameRegistry::new();
        let a = reg.intern(ObjectName::new(1, &[2, 3]), "a");
        let a2 = reg.intern(ObjectName::new(1, &[2, 3]), "a");
        assert_eq!(a, a2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn context_truncated_to_five_levels() {
        let long = [1u64, 2, 3, 4, 5, 6, 7];
        let n = ObjectName::new(9, &long);
        assert_eq!(n.context.len(), MAX_CONTEXT_DEPTH);
        // Names differing only beyond level 5 collide (by design).
        let m = ObjectName::new(9, &[1, 2, 3, 4, 5, 99]);
        assert_eq!(n, m);
    }

    #[test]
    fn whole_suite_names_are_unique_per_app() {
        for app in suite() {
            let reg = NameRegistry::for_app(&app);
            assert_eq!(reg.len(), app.objects.len());
            for (i, o) in app.objects.iter().enumerate() {
                let id = reg
                    .get(&ObjectName::new(o.alloc_site, &o.call_stack))
                    .unwrap();
                assert_eq!(id.0 as usize, i);
                assert_eq!(reg.label_of(id), o.label);
            }
        }
    }

    #[test]
    fn display_renders_site_and_context() {
        let n = ObjectName::new(0x4004ee, &[0x4004d6]);
        assert_eq!(n.to_string(), "0x4004ee<0x4004d6");
    }
}
