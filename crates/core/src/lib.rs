//! # MOCA — Memory Object Classification and Allocation
//!
//! Reproduction of *MOCA: Memory Object Classification and Allocation in
//! Heterogeneous Memory Systems* (Narayan, Zhang, Aga, Narayanasamy,
//! Coskun — IPDPS 2018), built on the workspace's simulation substrates.
//!
//! The framework has the paper's three stages (Fig. 4):
//!
//! 1. **Naming + profiling** ([`naming`], [`profile`]) — every heap object
//!    is uniquely named by its allocation-site return address plus up to
//!    five levels of calling context (§III-A, Fig. 3); an offline profiling
//!    run on the baseline platform collects each object's LLC MPKI and
//!    ROB-head stall cycles per load miss into a lookup table (§IV-A/B).
//! 2. **Classification** ([`classify`]) — objects are split into
//!    latency-sensitive / bandwidth-sensitive / non-memory-intensive by the
//!    `(Thr_Lat, Thr_BW)` thresholds of Fig. 5. Thresholds are
//!    platform-specific (§IV-C); [`classify::ThresholdSearch`] reproduces
//!    the empirical search that derives them.
//! 3. **Runtime allocation** ([`policy`]) — the typed virtual heap (Fig. 6)
//!    plus the [`policy::MocaPolicy`] page-placement policy allocate each
//!    object's pages from its best-fit module, falling back down the
//!    priority list when a module fills (§IV-D).
//!
//! The comparison points of the evaluation are here too:
//! [`policy::HeterAppPolicy`] (application-level allocation, Phadke &
//! Narayanasamy DATE'11) and the homogeneous baselines. [`pipeline`] wires
//! everything into the paper's end-to-end flow: profile on the training
//! input, classify, then evaluate on the reference input.
//!
//! ```no_run
//! use moca::pipeline::{Pipeline, PolicyKind};
//! use moca_sim::config::{MemSystemConfig, HeterogeneousLayout};
//!
//! let mut pipeline = Pipeline::quick();
//! let heter = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
//! let result = pipeline.evaluate(&["mcf"], heter, PolicyKind::Moca);
//! println!("memory EDP: {:.3e} J·s", result.mem.edp());
//! ```

pub mod classify;
pub mod naming;
pub mod persist;
pub mod pipeline;
pub mod policy;
pub mod profile;

pub use classify::{AppThresholds, ClassifiedApp, Thresholds};
pub use naming::{NameRegistry, ObjectName};
pub use persist::PersistError;
pub use pipeline::{Pipeline, PolicyKind};
pub use policy::{
    ConfigurableMocaPolicy, HeterAppPolicy, HomogeneousPolicy, LowPowerFirstPolicy, MocaPolicy,
};
pub use profile::{ObjectProfile, ProfileLut};
