//! Page-placement policies (§IV-D and the evaluation baselines).

use moca_common::{AppId, ModuleKind, ObjectClass};
use moca_vm::frames::FrameSpace;
use moca_vm::layout::PageIntent;
use moca_vm::policy::{preference_order, PagePlacementPolicy};

/// MOCA's object-level policy: a faulting heap page's class is recovered
/// from its virtual partition (the typed heap of Fig. 6) and its frame is
/// taken from that class's preferred module, falling back down the priority
/// list when full (§IV-D). Stack, code, and data pages go to the low-power
/// module (§VI-D).
#[derive(Debug, Default, Clone)]
pub struct MocaPolicy;

impl PagePlacementPolicy for MocaPolicy {
    fn place(&mut self, _app: AppId, intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        let class = match intent {
            PageIntent::Heap(c) => c,
            // §VI-D: "we allocate pages from LPDDR module for these
            // segments".
            PageIntent::Stack | PageIntent::Code | PageIntent::Data => ObjectClass::NonIntensive,
        };
        frames
            .alloc_by_preference(&preference_order(class))
            .map(|(pfn, _)| pfn)
    }

    fn name(&self) -> &'static str {
        "MOCA"
    }

    fn preferred(&self, _app: AppId, intent: PageIntent) -> Option<ModuleKind> {
        let class = match intent {
            PageIntent::Heap(c) => c,
            PageIntent::Stack | PageIntent::Code | PageIntent::Data => ObjectClass::NonIntensive,
        };
        Some(preference_order(class)[0])
    }
}

/// The application-level baseline (Phadke & Narayanasamy, DATE'11; the
/// paper's "Heter-App"): every page of an application — objects, stack,
/// code — is allocated from the module preferred by the application's
/// aggregate class, with the same fallback chain ("when there are no pages
/// left in the best-fit module, the objects are then allocated to this
/// application's next-best memory module", §V-C).
#[derive(Debug, Clone)]
pub struct HeterAppPolicy {
    app_classes: Vec<ObjectClass>,
}

impl HeterAppPolicy {
    /// Build from per-application classes (indexed by [`AppId`]).
    pub fn new(app_classes: Vec<ObjectClass>) -> HeterAppPolicy {
        HeterAppPolicy { app_classes }
    }
}

impl PagePlacementPolicy for HeterAppPolicy {
    fn place(&mut self, app: AppId, _intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        // moca-lint: allow(narrowing-cast): AppId.0 is u32; u32 -> usize never truncates
        let class = self.app_classes[app.0 as usize];
        frames
            .alloc_by_preference(&preference_order(class))
            .map(|(pfn, _)| pfn)
    }

    fn name(&self) -> &'static str {
        "Heter-App"
    }

    fn preferred(&self, app: AppId, _intent: PageIntent) -> Option<ModuleKind> {
        self.app_classes
            .get(app.0 as usize)
            .map(|&c| preference_order(c)[0])
    }
}

/// Baseline for homogeneous machines: every module is the same technology,
/// so placement is first-touch across the regions.
#[derive(Debug, Default, Clone)]
pub struct HomogeneousPolicy;

impl PagePlacementPolicy for HomogeneousPolicy {
    fn place(&mut self, _app: AppId, _intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        for i in 0..frames.regions().len() {
            if let Some(pfn) = frames.alloc_in_region(i) {
                return Some(pfn);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "Homogeneous"
    }
}

/// Initial placement for the dynamic-migration baseline: everything starts
/// in the cheapest memory; the runtime monitor is expected to promote hot
/// pages afterwards (§IV-E's contrast, related work \[19], \[33]).
#[derive(Debug, Default, Clone)]
pub struct LowPowerFirstPolicy;

impl PagePlacementPolicy for LowPowerFirstPolicy {
    fn place(&mut self, _app: AppId, _intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        frames
            .alloc_by_preference(&preference_order(ObjectClass::NonIntensive))
            .map(|(pfn, _)| pfn)
    }

    fn name(&self) -> &'static str {
        "Heter-Migrate"
    }

    fn preferred(&self, _app: AppId, _intent: PageIntent) -> Option<ModuleKind> {
        Some(preference_order(ObjectClass::NonIntensive)[0])
    }
}

/// A MOCA variant with configurable per-class fallback orders and segment
/// placement — used by the ablation studies (`repro ablations`) to quantify
/// the design choices §IV-D fixes: the fallback priority lists and the
/// static LPDDR2 placement of stack/code (§VI-D).
#[derive(Debug, Clone)]
pub struct ConfigurableMocaPolicy {
    /// Fallback order for latency-sensitive pages.
    pub lat_order: [ModuleKind; 4],
    /// Fallback order for bandwidth-sensitive pages.
    pub bw_order: [ModuleKind; 4],
    /// Fallback order for non-intensive pages.
    pub pow_order: [ModuleKind; 4],
    /// Class used for stack/code/data pages.
    pub segment_class: ObjectClass,
}

impl Default for ConfigurableMocaPolicy {
    fn default() -> Self {
        ConfigurableMocaPolicy {
            lat_order: preference_order(ObjectClass::LatencySensitive),
            bw_order: preference_order(ObjectClass::BandwidthSensitive),
            pow_order: preference_order(ObjectClass::NonIntensive),
            segment_class: ObjectClass::NonIntensive,
        }
    }
}

impl ConfigurableMocaPolicy {
    fn order_for(&self, class: ObjectClass) -> &[ModuleKind; 4] {
        match class {
            ObjectClass::LatencySensitive => &self.lat_order,
            ObjectClass::BandwidthSensitive => &self.bw_order,
            ObjectClass::NonIntensive => &self.pow_order,
        }
    }
}

impl PagePlacementPolicy for ConfigurableMocaPolicy {
    fn place(&mut self, _app: AppId, intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        let class = match intent {
            PageIntent::Heap(c) => c,
            _ => self.segment_class,
        };
        frames
            .alloc_by_preference(self.order_for(class))
            .map(|(pfn, _)| pfn)
    }

    fn name(&self) -> &'static str {
        "MOCA-custom"
    }

    fn preferred(&self, _app: AppId, intent: PageIntent) -> Option<ModuleKind> {
        let class = match intent {
            PageIntent::Heap(c) => c,
            _ => self.segment_class,
        };
        Some(self.order_for(class)[0])
    }
}

/// Convenience: the module kind a class lands on when nothing is full.
pub fn preferred_kind(class: ObjectClass) -> ModuleKind {
    preference_order(class)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::addr::PAGE_SIZE;
    use moca_vm::frames::regions_from_capacities;

    fn heter_frames(rl_pages: u64, hbm_pages: u64, lp_pages: u64) -> FrameSpace {
        FrameSpace::new(regions_from_capacities(&[
            (ModuleKind::Rldram3, 0, rl_pages * PAGE_SIZE),
            (ModuleKind::Hbm, 1, hbm_pages * PAGE_SIZE),
            (ModuleKind::Lpddr2, 2, lp_pages * PAGE_SIZE),
        ]))
    }

    #[test]
    fn moca_routes_by_class() {
        let mut fs = heter_frames(4, 4, 4);
        let mut p = MocaPolicy;
        let lat = p
            .place(
                AppId(0),
                PageIntent::Heap(ObjectClass::LatencySensitive),
                &mut fs,
            )
            .unwrap();
        let bw = p
            .place(
                AppId(0),
                PageIntent::Heap(ObjectClass::BandwidthSensitive),
                &mut fs,
            )
            .unwrap();
        let pow = p
            .place(
                AppId(0),
                PageIntent::Heap(ObjectClass::NonIntensive),
                &mut fs,
            )
            .unwrap();
        assert_eq!(fs.kind_of(lat), Some(ModuleKind::Rldram3));
        assert_eq!(fs.kind_of(bw), Some(ModuleKind::Hbm));
        assert_eq!(fs.kind_of(pow), Some(ModuleKind::Lpddr2));
    }

    #[test]
    fn moca_sends_stack_and_code_to_lpddr() {
        let mut fs = heter_frames(4, 4, 4);
        let mut p = MocaPolicy;
        for intent in [PageIntent::Stack, PageIntent::Code, PageIntent::Data] {
            let pfn = p.place(AppId(0), intent, &mut fs).unwrap();
            assert_eq!(fs.kind_of(pfn), Some(ModuleKind::Lpddr2), "{intent:?}");
        }
    }

    #[test]
    fn moca_falls_back_when_preferred_full() {
        let mut fs = heter_frames(1, 4, 4);
        let mut p = MocaPolicy;
        let intent = PageIntent::Heap(ObjectClass::LatencySensitive);
        let a = p.place(AppId(0), intent, &mut fs).unwrap();
        let b = p.place(AppId(0), intent, &mut fs).unwrap();
        assert_eq!(fs.kind_of(a), Some(ModuleKind::Rldram3));
        assert_eq!(fs.kind_of(b), Some(ModuleKind::Hbm), "RLDRAM full → HBM");
    }

    #[test]
    fn heter_app_ignores_object_classes() {
        let mut fs = heter_frames(4, 4, 4);
        let mut p = HeterAppPolicy::new(vec![ObjectClass::LatencySensitive]);
        // Even a non-intensive heap page of an L-classified app goes to
        // RLDRAM — the coarseness MOCA fixes.
        let pfn = p
            .place(
                AppId(0),
                PageIntent::Heap(ObjectClass::NonIntensive),
                &mut fs,
            )
            .unwrap();
        assert_eq!(fs.kind_of(pfn), Some(ModuleKind::Rldram3));
    }

    #[test]
    fn heter_app_distinguishes_apps() {
        let mut fs = heter_frames(4, 4, 4);
        let mut p = HeterAppPolicy::new(vec![
            ObjectClass::LatencySensitive,
            ObjectClass::NonIntensive,
        ]);
        let a = p.place(AppId(0), PageIntent::Stack, &mut fs).unwrap();
        let b = p.place(AppId(1), PageIntent::Stack, &mut fs).unwrap();
        assert_eq!(fs.kind_of(a), Some(ModuleKind::Rldram3));
        assert_eq!(fs.kind_of(b), Some(ModuleKind::Lpddr2));
    }

    #[test]
    fn exhaustion_cascades_to_none() {
        let mut fs = heter_frames(1, 1, 1);
        let mut p = MocaPolicy;
        let intent = PageIntent::Heap(ObjectClass::BandwidthSensitive);
        for _ in 0..3 {
            assert!(p.place(AppId(0), intent, &mut fs).is_some());
        }
        // DDR3 is in the fallback list but absent from this machine.
        assert_eq!(p.place(AppId(0), intent, &mut fs), None);
    }

    #[test]
    fn preferred_reports_first_choice_for_fallback_detection() {
        let mut fs = heter_frames(1, 4, 4);
        let mut p = MocaPolicy;
        let intent = PageIntent::Heap(ObjectClass::LatencySensitive);
        // With capacity, preferred() matches the actual placement.
        let a = p.place(AppId(0), intent, &mut fs).unwrap();
        assert_eq!(fs.kind_of(a), p.preferred(AppId(0), intent));
        // When the preferred module is full, place() falls back but
        // preferred() still names the first choice — the mismatch telemetry
        // reports as a fallback allocation.
        let b = p.place(AppId(0), intent, &mut fs).unwrap();
        assert_ne!(fs.kind_of(b), p.preferred(AppId(0), intent));
        assert_eq!(p.preferred(AppId(0), intent), Some(ModuleKind::Rldram3));
        // Heter-App prefers by app class; out-of-range apps yield None.
        let h = HeterAppPolicy::new(vec![ObjectClass::BandwidthSensitive]);
        assert_eq!(h.preferred(AppId(0), intent), Some(ModuleKind::Hbm));
        assert_eq!(h.preferred(AppId(9), intent), None);
    }

    #[test]
    fn preferred_kinds_match_paper() {
        assert_eq!(
            preferred_kind(ObjectClass::LatencySensitive),
            ModuleKind::Rldram3
        );
        assert_eq!(
            preferred_kind(ObjectClass::BandwidthSensitive),
            ModuleKind::Hbm
        );
        assert_eq!(
            preferred_kind(ObjectClass::NonIntensive),
            ModuleKind::Lpddr2
        );
    }
}
