//! Analytic DRAM energy model.
//!
//! The paper feeds simulated read/write activity into Micron's DRAM power
//! calculators. Table II condenses the result into per-capacity standby and
//! active power coefficients; we integrate the same coefficients over
//! simulated time and add a per-activation term so that technologies with
//! tiny row buffers (RLDRAM3) pay their real activation cost. See
//! [`crate::timing`] for the source-text reconstruction notes.

use moca_common::units::cycles_to_seconds;
use moca_common::{Cycle, GB};
use serde::{Deserialize, Serialize};

/// Power coefficients of one memory technology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerCoefficients {
    /// Background (standby + refresh) power, mW per GB of capacity.
    pub standby_mw_per_gb: f64,
    /// Additional power while the device is actively transferring or has
    /// banks open, W per GB of capacity.
    pub active_w_per_gb: f64,
    /// Energy per row activation, nJ.
    pub act_energy_nj: f64,
}

impl PowerCoefficients {
    /// DDR3 coefficients (Table II).
    pub fn ddr3() -> Self {
        PowerCoefficients {
            standby_mw_per_gb: 256.0,
            active_w_per_gb: 1.5,
            act_energy_nj: 2.0,
        }
    }

    /// HBM coefficients (Table II; active power reflects the much higher
    /// deliverable bandwidth per GB).
    pub fn hbm() -> Self {
        PowerCoefficients {
            standby_mw_per_gb: 335.0,
            active_w_per_gb: 4.5,
            act_energy_nj: 1.2,
        }
    }

    /// RLDRAM3 coefficients — reconstructed from §II-A's "4–5× DDR3"
    /// statement for both static and dynamic power (the power rows of our
    /// source text are OCR-garbled).
    pub fn rldram3() -> Self {
        PowerCoefficients {
            standby_mw_per_gb: 1150.0,
            active_w_per_gb: 6.75,
            act_energy_nj: 0.6,
        }
    }

    /// LPDDR2 coefficients (Table II).
    pub fn lpddr2() -> Self {
        PowerCoefficients {
            standby_mw_per_gb: 6.5,
            active_w_per_gb: 0.4,
            act_energy_nj: 1.5,
        }
    }
}

/// Integrated energy of one channel over a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Background energy (J): standby power × capacity × wall time.
    pub standby_j: f64,
    /// Active energy (J): active power × capacity × busy time.
    pub active_j: f64,
    /// Activation energy (J): activates × per-ACT energy.
    pub activate_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.standby_j + self.active_j + self.activate_j
    }

    /// Compute the breakdown from raw activity numbers.
    pub fn compute(
        coeff: &PowerCoefficients,
        capacity_bytes: u64,
        runtime: Cycle,
        busy: Cycle,
        activates: u64,
    ) -> EnergyBreakdown {
        let cap_gb = capacity_bytes as f64 / GB as f64;
        let t = cycles_to_seconds(runtime);
        let tb = cycles_to_seconds(busy.min(runtime));
        EnergyBreakdown {
            standby_j: coeff.standby_mw_per_gb * 1e-3 * cap_gb * t,
            active_j: coeff.active_w_per_gb * cap_gb * tb,
            activate_j: activates as f64 * coeff.act_energy_nj * 1e-9,
        }
    }

    /// Sum two breakdowns.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.standby_j += other.standby_j;
        self.active_j += other.active_j;
        self.activate_j += other.activate_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::MB;

    #[test]
    fn idle_channel_consumes_only_standby() {
        let e = EnergyBreakdown::compute(&PowerCoefficients::ddr3(), GB, 1_000_000_000, 0, 0);
        // 256 mW × 1 GB × 1 s = 0.256 J
        assert!((e.standby_j - 0.256).abs() < 1e-9);
        assert_eq!(e.active_j, 0.0);
        assert_eq!(e.activate_j, 0.0);
    }

    #[test]
    fn busy_is_clamped_to_runtime() {
        let e = EnergyBreakdown::compute(&PowerCoefficients::ddr3(), GB, 100, 500, 0);
        let f = EnergyBreakdown::compute(&PowerCoefficients::ddr3(), GB, 100, 100, 0);
        assert_eq!(e.active_j, f.active_j);
    }

    #[test]
    fn lpddr_is_cheapest_at_idle() {
        let run = 1_000_000;
        let cap = 512 * MB;
        let mut totals: Vec<(f64, &str)> = vec![
            (
                EnergyBreakdown::compute(&PowerCoefficients::lpddr2(), cap, run, 0, 0).total_j(),
                "lp",
            ),
            (
                EnergyBreakdown::compute(&PowerCoefficients::ddr3(), cap, run, 0, 0).total_j(),
                "ddr3",
            ),
            (
                EnergyBreakdown::compute(&PowerCoefficients::hbm(), cap, run, 0, 0).total_j(),
                "hbm",
            ),
            (
                EnergyBreakdown::compute(&PowerCoefficients::rldram3(), cap, run, 0, 0).total_j(),
                "rl",
            ),
        ];
        totals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(totals[0].1, "lp");
        assert_eq!(totals[3].1, "rl");
    }

    #[test]
    fn merge_adds_components() {
        let mut a = EnergyBreakdown {
            standby_j: 1.0,
            active_j: 2.0,
            activate_j: 3.0,
        };
        a.merge(&EnergyBreakdown {
            standby_j: 0.5,
            active_j: 0.5,
            activate_j: 0.5,
        });
        assert!((a.total_j() - 7.5).abs() < 1e-12);
    }
}
