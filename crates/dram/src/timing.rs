//! Device timing presets — Table II of the paper.
//!
//! | Parameter        | DDR3  | HBM  | RLDRAM3 | LPDDR2 |
//! |------------------|-------|------|---------|--------|
//! | Burst length     | 8     | 4    | 8       | 4      |
//! | # banks          | 8     | 8    | 16      | 8      |
//! | Row buffer       | 128 B | 2 kB | 16 B    | 1 kB   |
//! | # rows           | 32 K  | 32 K | 8 K     | 8 K    |
//! | Device width     | 8     | 128  | 8       | 32     |
//! | tCK (ns)         | 1.07  | 2    | 0.93    | 1.875  |
//! | tRAS (ns)        | 35    | 33   | 6       | 42     |
//! | tRCD (ns)        | 13.75 | 15   | 2       | 15     |
//! | tRC (ns)         | 48.75 | 48   | 8       | 60     |
//! | tRFC (ns)        | 160   | 160  | 110     | 130    |
//!
//! `tCL` and `tRP` are not listed in Table II; we use the standard symmetric
//! approximation `tCL = tRP = tRCD` (true to within one cycle for all four
//! parts). `tREFI` is the JEDEC 7.8 µs.
//!
//! **Power-row reconstruction.** The source text of the paper available to us
//! has OCR-scrambled values in the two power rows (as printed they would make
//! RLDRAM3 the *cheapest* DRAM, contradicting §II-A's statement that RLDRAM
//! power is 4–5× DDR3 and §VI-A's result that Homogen-RL has the worst energy
//! efficiency). We therefore keep the printed DDR3/LPDDR2/HBM standby values
//! (256 / 6.5 / 335 mW/GB) and reconstruct RLDRAM3 from the 4–5× statement
//! (1100 mW/GB standby, 4.5 W/GB active). Activate energy per row activation
//! is taken from typical device datasheets; RLDRAM's 16 B row buffer then
//! makes its per-line activate count 4× that of the others, reproducing the
//! qualitative power ordering LPDDR2 < DDR3 < HBM < RLDRAM under load.

use crate::power::PowerCoefficients;
use moca_common::units::{narrow_u32, ns_to_cycles};
use moca_common::{Cycle, ModuleKind};
use serde::{Deserialize, Serialize};

/// Timing and architecture parameters of one memory technology.
///
/// Durations are stored in core cycles (1 cycle = 1 ns), pre-converted with
/// ceiling rounding from the nanosecond values of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceTiming {
    /// Which technology this is.
    pub kind: ModuleKind,
    /// Burst length in beats.
    pub burst_length: u32,
    /// Banks per device.
    pub banks: u32,
    /// Row-buffer (DRAM page) size in bytes.
    pub row_buffer_bytes: u64,
    /// Rows per bank.
    pub rows: u32,
    /// Device interface width in bits.
    pub device_width: u32,
    /// Clock period in picoseconds.
    pub tck_ps: u64,
    /// Parallel data lanes: independent sub-channels folded into this
    /// controller. HBM stacks expose 8 narrow channels ("more channels per
    /// device", §II-A); we model the stack as one controller whose aggregate
    /// bus moves `data_lanes` bursts concurrently. 1 for planar DRAM.
    pub data_lanes: u32,
    /// ACT-to-PRE minimum (cycles).
    pub t_ras: Cycle,
    /// ACT-to-CAS delay (cycles).
    pub t_rcd: Cycle,
    /// ACT-to-ACT same-bank cycle time (cycles).
    pub t_rc: Cycle,
    /// Refresh cycle time (cycles).
    pub t_rfc: Cycle,
    /// CAS latency (cycles); approximated as `tRCD` (see module docs).
    pub t_cl: Cycle,
    /// Precharge time (cycles); approximated as `tRCD`.
    pub t_rp: Cycle,
    /// Average refresh interval (cycles).
    pub t_refi: Cycle,
    /// Power coefficients for the energy model.
    pub power: PowerCoefficients,
}

impl DeviceTiming {
    #[allow(clippy::too_many_arguments)]
    fn build(
        kind: ModuleKind,
        burst_length: u32,
        banks: u32,
        row_buffer_bytes: u64,
        rows: u32,
        device_width: u32,
        tck_ns: f64,
        t_ras_ns: f64,
        t_rcd_ns: f64,
        t_rc_ns: f64,
        t_rfc_ns: f64,
        power: PowerCoefficients,
    ) -> DeviceTiming {
        DeviceTiming {
            kind,
            burst_length,
            banks,
            row_buffer_bytes,
            rows,
            device_width,
            tck_ps: (tck_ns * 1000.0).round() as u64,
            data_lanes: 1,
            t_ras: ns_to_cycles(t_ras_ns),
            t_rcd: ns_to_cycles(t_rcd_ns),
            t_rc: ns_to_cycles(t_rc_ns),
            t_rfc: ns_to_cycles(t_rfc_ns),
            t_cl: ns_to_cycles(t_rcd_ns),
            t_rp: ns_to_cycles(t_rcd_ns),
            t_refi: ns_to_cycles(7800.0),
            power,
        }
    }

    /// DDR3-1866 (Table II column 1) — the homogeneous baseline technology.
    pub fn ddr3() -> DeviceTiming {
        Self::build(
            ModuleKind::Ddr3,
            8,
            8,
            128,
            32 * 1024,
            8,
            1.07,
            35.0,
            13.75,
            48.75,
            160.0,
            PowerCoefficients::ddr3(),
        )
    }

    /// HBM (Table II column 2) — bandwidth-optimized stacked DRAM. A stack
    /// carries 8 independent 128-bit channels; folded into one controller
    /// this yields 4× the aggregate data bus of a DDR3 DIMM and 64 banks,
    /// while per-access latency stays DDR3-like — exactly the
    /// high-bandwidth / ordinary-latency profile of §II-A.
    pub fn hbm() -> DeviceTiming {
        let mut d = Self::build(
            ModuleKind::Hbm,
            4,
            64,
            2048,
            32 * 1024,
            128,
            2.0,
            33.0,
            15.0,
            48.0,
            160.0,
            PowerCoefficients::hbm(),
        );
        d.data_lanes = 4;
        d
    }

    /// RLDRAM3 (Table II column 3) — latency-optimized, SRAM-like DRAM.
    pub fn rldram3() -> DeviceTiming {
        Self::build(
            ModuleKind::Rldram3,
            8,
            16,
            16,
            8 * 1024,
            8,
            0.93,
            6.0,
            2.0,
            8.0,
            110.0,
            PowerCoefficients::rldram3(),
        )
    }

    /// LPDDR2-1066 (Table II column 4) — power-optimized mobile DRAM.
    pub fn lpddr2() -> DeviceTiming {
        Self::build(
            ModuleKind::Lpddr2,
            4,
            8,
            1024,
            8 * 1024,
            32,
            1.875,
            42.0,
            15.0,
            60.0,
            130.0,
            PowerCoefficients::lpddr2(),
        )
    }

    /// Preset for a given technology.
    pub fn for_kind(kind: ModuleKind) -> DeviceTiming {
        match kind {
            ModuleKind::Ddr3 => Self::ddr3(),
            ModuleKind::Hbm => Self::hbm(),
            ModuleKind::Rldram3 => Self::rldram3(),
            ModuleKind::Lpddr2 => Self::lpddr2(),
        }
    }

    /// Cycles the (aggregate) data bus is occupied to transfer one 64 B
    /// cache line: `burst_length / 2 · tCK` for double-data-rate interfaces
    /// divided by the parallel lanes, rounded up.
    ///
    /// The channel is assumed to deliver one full line per burst (e.g. DDR3:
    /// 8 beats × 64-bit DIMM bus = 64 B; HBM: 4 beats × 128-bit = 64 B per
    /// internal channel, 4 lanes concurrently).
    pub fn line_transfer_cycles(&self) -> Cycle {
        let ns = (self.burst_length as f64 / 2.0) * self.tck_ps as f64
            / 1000.0
            / self.data_lanes.max(1) as f64;
        ns_to_cycles(ns).max(1)
    }

    /// Number of sub-accesses (activates) needed to fetch one 64 B line.
    /// 1 for devices whose row buffer holds a whole line; 4 for RLDRAM3's
    /// 16 B rows.
    pub fn subaccesses_per_line(&self) -> u32 {
        narrow_u32(
            (moca_common::addr::CACHE_LINE_SIZE)
                .div_ceil(self.row_buffer_bytes)
                .max(1),
        )
    }

    /// Whether the device can ever produce open-row hits on 64 B requests.
    pub fn supports_row_hits(&self) -> bool {
        self.row_buffer_bytes >= moca_common::addr::CACHE_LINE_SIZE
    }

    /// Closed-row read latency (ACT + CAS) in cycles, excluding queueing and
    /// data transfer — a rough "device latency" figure.
    pub fn closed_row_latency(&self) -> Cycle {
        self.t_rcd + self.t_cl
    }

    /// Check the inter-parameter constraints every DRAM device must satisfy.
    /// Errors name the violated constraint so a misconfigured preset is
    /// rejected with an actionable message. Also run offline by
    /// `moca-lint check-model` against every Table II preset.
    pub fn validate(&self) -> Result<(), String> {
        let who = self.kind;
        if self.tck_ps == 0 {
            return Err(format!("{who}: tCK must be positive"));
        }
        if self.burst_length == 0
            || self.banks == 0
            || self.rows == 0
            || self.device_width == 0
            || self.row_buffer_bytes == 0
            || self.data_lanes == 0
        {
            return Err(format!(
                "{who}: architecture parameters (burst, banks, rows, width, \
                 row buffer, lanes) must all be positive"
            ));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "{who}: tRC ({}) must be >= tRAS + tRP ({} + {}): a bank \
                 cannot re-activate before the previous row is restored and \
                 precharged",
                self.t_rc, self.t_ras, self.t_rp
            ));
        }
        if self.t_ras < self.t_rcd {
            return Err(format!(
                "{who}: tRAS ({}) must be >= tRCD ({}): the row must stay \
                 open at least until the first CAS can issue",
                self.t_ras, self.t_rcd
            ));
        }
        if self.t_refi <= self.t_rfc {
            return Err(format!(
                "{who}: tREFI ({}) must be > tRFC ({}): refresh would \
                 otherwise consume the entire schedule",
                self.t_refi, self.t_rfc
            ));
        }
        // Burst capacity identity: one burst on the device interface moves
        // burst_length × device_width / 8 bytes; a 64 B line must be an
        // exact multiple of it or the transfer model miscounts bus cycles.
        let burst_bytes = self.burst_length as u64 * self.device_width as u64 / 8;
        if burst_bytes == 0 || !moca_common::addr::CACHE_LINE_SIZE.is_multiple_of(burst_bytes) {
            return Err(format!(
                "{who}: burst capacity identity violated: cache line (64 B) \
                 is not a multiple of burst_length x device_width / 8 \
                 ({burst_bytes} B)"
            ));
        }
        // Sub-line devices must stripe a line's sub-blocks across distinct
        // banks, which requires enough banks for one line.
        let subline = self.subaccesses_per_line() as u64;
        if subline > self.banks as u64 {
            return Err(format!(
                "{who}: a 64 B line needs {subline} sub-accesses but the \
                 device only has {} banks",
                self.banks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2_cycles() {
        let d = DeviceTiming::ddr3();
        assert_eq!((d.t_ras, d.t_rcd, d.t_rc, d.t_rfc), (35, 14, 49, 160));
        let h = DeviceTiming::hbm();
        assert_eq!((h.t_ras, h.t_rcd, h.t_rc, h.t_rfc), (33, 15, 48, 160));
        let r = DeviceTiming::rldram3();
        assert_eq!((r.t_ras, r.t_rcd, r.t_rc, r.t_rfc), (6, 2, 8, 110));
        let l = DeviceTiming::lpddr2();
        assert_eq!((l.t_ras, l.t_rcd, l.t_rc, l.t_rfc), (42, 15, 60, 130));
    }

    #[test]
    fn rldram_is_fastest_closed_row() {
        let lat: Vec<_> = ModuleKind::ALL
            .iter()
            .map(|&k| (k, DeviceTiming::for_kind(k).closed_row_latency()))
            .collect();
        let rl = lat
            .iter()
            .find(|(k, _)| *k == ModuleKind::Rldram3)
            .unwrap()
            .1;
        for (k, l) in &lat {
            if *k != ModuleKind::Rldram3 {
                assert!(rl < *l, "RLDRAM should beat {k}");
            }
        }
    }

    #[test]
    fn line_transfer_is_one_line_per_burst() {
        assert_eq!(DeviceTiming::ddr3().line_transfer_cycles(), 5); // 4.28 ns
        assert_eq!(DeviceTiming::hbm().line_transfer_cycles(), 1); // 4.0 ns / 4 lanes
        assert_eq!(DeviceTiming::rldram3().line_transfer_cycles(), 4); // 3.72 ns
        assert_eq!(DeviceTiming::lpddr2().line_transfer_cycles(), 4); // 3.75 ns
    }

    #[test]
    fn rldram_needs_four_subaccesses() {
        assert_eq!(DeviceTiming::rldram3().subaccesses_per_line(), 4);
        assert_eq!(DeviceTiming::ddr3().subaccesses_per_line(), 1);
        assert!(!DeviceTiming::rldram3().supports_row_hits());
        assert!(DeviceTiming::ddr3().supports_row_hits());
    }

    #[test]
    fn all_table2_presets_validate() {
        for k in ModuleKind::ALL {
            DeviceTiming::for_kind(k)
                .validate()
                .unwrap_or_else(|e| panic!("{k} preset invalid: {e}"));
        }
    }

    #[test]
    fn perturbed_preset_is_rejected_with_named_constraint() {
        let mut d = DeviceTiming::ddr3();
        d.t_rc = d.t_ras + d.t_rp - 1;
        let err = d.validate().unwrap_err();
        assert!(err.contains("tRC"), "error must name the constraint: {err}");

        let mut d = DeviceTiming::hbm();
        d.t_ras = d.t_rcd - 1;
        // Keep tRC consistent so the first failing constraint is tRAS.
        assert!(d.validate().unwrap_err().contains("tRAS"));

        let mut d = DeviceTiming::lpddr2();
        d.t_refi = d.t_rfc;
        assert!(d.validate().unwrap_err().contains("tREFI"));

        let mut d = DeviceTiming::rldram3();
        d.device_width = 24; // 8 beats x 24 bits = 24 B: does not divide 64 B
        assert!(d.validate().unwrap_err().contains("burst"));
    }

    #[test]
    fn for_kind_roundtrips() {
        for k in ModuleKind::ALL {
            assert_eq!(DeviceTiming::for_kind(k).kind, k);
        }
    }
}
