//! DRAM subsystem: device timing models, banks, FR-FCFS channel controllers,
//! address mapping, and energy accounting.
//!
//! This crate is the reproduction of the memory-device layer the paper gets
//! from gem5's DRAM controller plus the Micron power calculators. Each of the
//! four technologies of Table II (DDR3-1866, LPDDR2-1066, RLDRAM3, HBM) is a
//! [`DeviceTiming`] preset; a [`Channel`] owns the banks and queues of one
//! memory channel and schedules commands with the FR-FCFS policy the paper
//! configures (Table I: "4 channels, FR-FCFS scheduling").
//!
//! # Timing model
//!
//! One simulated cycle is 1 ns (the 1 GHz core clock). Device parameters are
//! converted with ceiling rounding. A read that misses the open row pays
//! `tRP + tRCD + tCL` before its data burst; a row hit pays only `tCL`;
//! consecutive activates to one bank are separated by `tRC` and a precharge
//! may not happen before `tRAS` has elapsed. Refresh blocks the whole channel
//! for `tRFC` every `tREFI`.
//!
//! Devices whose row buffer is smaller than a 64 B cache line (RLDRAM3's is
//! 16 B) fetch a line with several sub-accesses striped over consecutive
//! banks; this never produces row hits and multiplies activate energy — the
//! mechanism that makes RLDRAM fast but power-hungry, exactly the trade-off
//! the paper exploits.
//!
//! # Power model
//!
//! Energy is integrated per channel as
//! `standby(W/GB)·capacity·T + active(W/GB)·capacity·T_busy + E_act·activates`
//! using the Table II coefficients (see [`timing`] for the reconstruction
//! notes on the power rows).

pub mod channel;
pub mod mapping;
pub mod power;
pub mod timing;

pub use channel::{Channel, ChannelConfig, ChannelStats, Completion, MemRequest};
pub use mapping::{AddressMapper, DecodedAddr};
pub use power::{EnergyBreakdown, PowerCoefficients};
pub use timing::DeviceTiming;
