//! FR-FCFS memory-channel controller.
//!
//! One [`Channel`] models a dedicated memory controller plus the device banks
//! behind it (the paper gives every module its own controller, §V-C). The
//! scheduler implements First-Ready, First-Come-First-Served (Table I):
//! row-buffer hits are served before older row misses; among equals the
//! oldest wins. Writes are buffered in a separate queue and drained with
//! hysteresis so they do not sit in front of latency-critical reads.
//!
//! Command timing (tRCD/tRAS/tRC/tRP/tCL) is enforced per bank; the shared
//! data bus serializes bursts; refresh blocks the channel for `tRFC` every
//! `tREFI`. Bank preparation overlaps with in-flight data transfers up to a
//! bounded reservation horizon, which is what gives bandwidth-optimized
//! devices their streaming throughput (bank-level parallelism).

use crate::mapping::decode_local;
use crate::power::EnergyBreakdown;
use crate::timing::DeviceTiming;
use moca_common::ids::MemTag;
use moca_common::{AccessKind, CoreId, Cycle, LineAddr};
use moca_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A request as seen by a channel (already mapped to a channel-local offset).
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Caller-chosen token returned in the [`Completion`].
    pub token: u64,
    /// Global physical line address (for statistics only).
    pub line: LineAddr,
    /// Channel-local byte offset (from the address mapper).
    pub local_off: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Requesting core.
    pub core: CoreId,
    /// Attribution tag (object / segment).
    pub tag: MemTag,
}

/// Completion record for a read request.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Token from the original request.
    pub token: u64,
    /// Requesting core.
    pub core: CoreId,
    /// Attribution tag.
    pub tag: MemTag,
    /// Physical line serviced (lets the OS-level migration engine track
    /// per-page heat without a reverse token map).
    pub line: LineAddr,
    /// Cycle at which the data burst finished.
    pub finish: Cycle,
    /// Cycles spent waiting in the read queue.
    pub queue_cycles: Cycle,
    /// Cycles from scheduling to data delivery (bank prep + bus + burst).
    pub service_cycles: Cycle,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// The access found another row open in its bank and had to precharge
    /// it first (the row-buffer-conflict penalty path).
    pub bank_conflict: bool,
    /// The access arrived while a refresh window held the channel, so part
    /// of its queueing delay was refresh-induced.
    pub refresh_delayed: bool,
}

/// Configuration of one channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Device technology behind this channel.
    pub timing: DeviceTiming,
    /// Module capacity in bytes as simulated (drives frame counts; may be
    /// scaled down — see DESIGN.md).
    pub capacity_bytes: u64,
    /// Capacity used for the power model. Footprints and module capacities
    /// are scaled down *together* to keep runs small, but power per GB is a
    /// device property: energy is integrated at the nominal (unscaled)
    /// capacity so memory power keeps its real magnitude relative to the
    /// cores.
    pub power_capacity_bytes: u64,
    /// Read queue depth.
    pub read_queue: usize,
    /// Write queue depth.
    pub write_queue: usize,
}

impl ChannelConfig {
    /// Standard queue depths with the given device and capacity.
    pub fn new(timing: DeviceTiming, capacity_bytes: u64) -> ChannelConfig {
        ChannelConfig {
            timing,
            capacity_bytes,
            power_capacity_bytes: capacity_bytes,
            read_queue: 32,
            write_queue: 32,
        }
    }

    /// Set the nominal capacity the power model integrates over.
    pub fn with_power_capacity(mut self, nominal_bytes: u64) -> ChannelConfig {
        self.power_capacity_bytes = nominal_bytes;
        self
    }
}

/// Aggregate statistics of one channel.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Read requests completed.
    pub reads: u64,
    /// Write requests completed.
    pub writes: u64,
    /// Open-row hits (reads and writes).
    pub row_hits: u64,
    /// Row activations issued (sub-line devices issue several per request).
    pub activates: u64,
    /// Cycles the data bus was transferring.
    pub busy_cycles: Cycle,
    /// Sum of read queueing cycles.
    pub read_queue_cycles: Cycle,
    /// Sum of read service cycles.
    pub read_service_cycles: Cycle,
    /// Refresh windows executed.
    pub refreshes: u64,
}

impl ChannelStats {
    /// Average read latency (queue + service) in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        moca_common::stats::safe_div(
            (self.read_queue_cycles + self.read_service_cycles) as f64,
            self.reads as f64,
        )
    }

    /// Row-hit rate over all serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        moca_common::stats::safe_div(self.row_hits as f64, (self.reads + self.writes) as f64)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u32>,
    /// Earliest cycle a new ACT may issue (tRC from last ACT).
    rc_ready: Cycle,
    /// Earliest cycle a precharge may issue (tRAS from last ACT).
    ras_ready: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    req: MemRequest,
    arrival: Cycle,
    /// Bank index, decoded once at enqueue. `decode_local` is a pure
    /// function of the (fixed) device timing and the request offset, but
    /// FR-FCFS re-examines every queued entry every scheduling cycle —
    /// caching the decode removes a divide chain from the hottest loop.
    bank: u32,
    /// Row within the bank, decoded once at enqueue.
    row: u32,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    token: u64,
    core: CoreId,
    tag: MemTag,
    line: LineAddr,
    finish: Cycle,
    queue_cycles: Cycle,
    service_cycles: Cycle,
    row_hit: bool,
    bank_conflict: bool,
    refresh_delayed: bool,
}

/// One memory channel: banks, queues, bus, refresh, statistics.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: ChannelConfig,
    banks: Vec<BankState>,
    readq: VecDeque<Queued>,
    writeq: VecDeque<Queued>,
    inflight: Vec<InFlight>,
    /// Cached `min(finish)` over `inflight` (`Cycle::MAX` when empty),
    /// maintained on issue and completion so event-skipping never rescans
    /// the in-flight set. Cross-checked against a full scan in debug builds.
    min_inflight_finish: Cycle,
    bus_free_at: Cycle,
    next_refresh_at: Cycle,
    refresh_until: Cycle,
    drain_writes: bool,
    transfer_cycles: Cycle,
    reserve_horizon: Cycle,
    stats: ChannelStats,
    /// Row activations per bank (index = bank), for per-bank occupancy
    /// telemetry tracks. Copy-DMA activates are not bank-attributed (the OS
    /// copies whole pages; see `inject_copy_traffic`).
    bank_activates: Vec<u64>,
    /// Monotonic counter bumped on every state change (enqueue, executed
    /// tick, copy-DMA injection). The system compares it against the version
    /// it last posted into the global event wheel, so an untouched channel's
    /// wheel entry is refreshed with a single integer compare instead of a
    /// `next_event_after` recomputation.
    state_version: u64,
}

impl Channel {
    /// Build a channel.
    pub fn new(cfg: ChannelConfig) -> Channel {
        let t = &cfg.timing;
        let transfer_cycles = t.line_transfer_cycles();
        let reserve_horizon = t.t_rcd + t.t_cl + transfer_cycles;
        // moca-lint: allow(narrowing-cast): bank count is u32; u32 -> usize never truncates
        let nbanks = t.banks as usize;
        let banks = vec![BankState::default(); nbanks];
        let bank_activates = vec![0u64; nbanks];
        let t_refi = t.t_refi;
        Channel {
            cfg,
            banks,
            readq: VecDeque::new(),
            writeq: VecDeque::new(),
            inflight: Vec::new(),
            min_inflight_finish: Cycle::MAX,
            bus_free_at: 0,
            next_refresh_at: t_refi,
            refresh_until: 0,
            drain_writes: false,
            transfer_cycles,
            reserve_horizon,
            stats: ChannelStats::default(),
            bank_activates,
            state_version: 0,
        }
    }

    /// Monotonic state-change counter (see the field docs). Purely
    /// observational: nothing simulated ever reads it.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// Channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Cumulative row activations per bank (index = bank number).
    pub fn bank_activates(&self) -> &[u64] {
        &self.bank_activates
    }

    /// Zero the statistics (end of a warmup phase). Bank/queue state is
    /// kept.
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
    }

    /// Reads currently queued (not yet issued).
    pub fn read_queue_len(&self) -> usize {
        self.readq.len()
    }

    /// Writes currently queued (not yet issued).
    pub fn write_queue_len(&self) -> usize {
        self.writeq.len()
    }

    /// Whether a request of `kind` can currently be enqueued.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.readq.len() < self.cfg.read_queue,
            AccessKind::Write => self.writeq.len() < self.cfg.write_queue,
        }
    }

    /// Enqueue a request. Panics if the corresponding queue is full — call
    /// [`Channel::can_accept`] first; the cache hierarchy applies
    /// backpressure through its MSHRs.
    pub fn enqueue(&mut self, now: Cycle, req: MemRequest) {
        assert!(self.can_accept(req.kind), "channel queue overflow");
        self.state_version += 1;
        let d = decode_local(&self.cfg.timing, req.local_off);
        let q = Queued {
            req,
            arrival: now,
            bank: d.bank,
            row: d.row,
        };
        match req.kind {
            AccessKind::Read => self.readq.push_back(q),
            AccessKind::Write => self.writeq.push_back(q),
        }
    }

    /// True when the channel holds no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.readq.is_empty() && self.writeq.is_empty() && self.inflight.is_empty()
    }

    /// Earliest future cycle at which calling [`Channel::tick`] could make
    /// progress, for event-skipping. `None` when idle.
    ///
    /// O(1): the in-flight component comes from the incrementally maintained
    /// `min_inflight_finish` and the queue component needs no per-entry
    /// state. Debug builds cross-check against a full scan.
    pub fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
        let fast = if self.is_idle() {
            None
        } else {
            let mut best = Cycle::MAX;
            if !self.inflight.is_empty() {
                best = self.min_inflight_finish.max(now + 1);
            }
            if !self.readq.is_empty() || !self.writeq.is_empty() {
                let q = if self.refresh_until > now {
                    self.refresh_until.max(now + 1)
                } else {
                    // A scheduling attempt next cycle may succeed; the exact
                    // bank ready times are folded in by attempting every
                    // cycle after.
                    now + 1
                };
                best = best.min(q);
            }
            Some(best)
        };
        debug_assert_eq!(
            fast,
            self.next_event_scan(now),
            "cached channel next-event diverged from full scan"
        );
        fast
    }

    /// Reference full-scan implementation of [`Channel::next_event_after`],
    /// kept as the debug-build cross-check for the cached fast path.
    fn next_event_scan(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            return None;
        }
        let mut best: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            let c = c.max(now + 1);
            best = Some(best.map_or(c, |b| b.min(c)));
        };
        for f in &self.inflight {
            consider(f.finish);
        }
        if !self.readq.is_empty() || !self.writeq.is_empty() {
            if self.refresh_until > now {
                consider(self.refresh_until);
            } else {
                consider(now + 1);
            }
        }
        best
    }

    /// True when [`Channel::tick`] at `now` would not change any state: the
    /// channel holds no work and no refresh window would start this cycle.
    /// The refresh predicate mirrors `tick_impl` exactly, so gating ticks on
    /// this keeps refresh slip (idle channels refresh at the first *ticked*
    /// cycle ≥ `next_refresh_at`) bit-identical with the ungated engine.
    pub fn tick_is_noop(&self, now: Cycle) -> bool {
        self.is_idle()
            && !(now >= self.next_refresh_at
                && self.refresh_until <= now
                && self.bus_free_at <= now)
    }

    /// Advance the channel to cycle `now`: start refresh if due, complete
    /// finished reads into `out`, and schedule at most one new command.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        self.tick_impl(now, out, None);
    }

    /// [`Channel::tick`] with telemetry: refresh windows and row-buffer
    /// conflicts are emitted as events tagged with this channel's index.
    pub fn tick_tel(
        &mut self,
        now: Cycle,
        out: &mut Vec<Completion>,
        tel: &mut Telemetry,
        channel: u32,
    ) {
        self.tick_impl(now, out, Some((tel, channel)));
    }

    fn tick_impl(
        &mut self,
        now: Cycle,
        out: &mut Vec<Completion>,
        mut tel: Option<(&mut Telemetry, u32)>,
    ) {
        self.state_version += 1;
        // Deliver finished reads. The single pass also rebuilds the cached
        // minimum finish over the survivors.
        if self.min_inflight_finish <= now {
            let mut i = 0;
            let mut min_left = Cycle::MAX;
            while i < self.inflight.len() {
                if self.inflight[i].finish <= now {
                    let f = self.inflight.swap_remove(i);
                    out.push(Completion {
                        token: f.token,
                        core: f.core,
                        tag: f.tag,
                        line: f.line,
                        finish: f.finish,
                        queue_cycles: f.queue_cycles,
                        service_cycles: f.service_cycles,
                        row_hit: f.row_hit,
                        bank_conflict: f.bank_conflict,
                        refresh_delayed: f.refresh_delayed,
                    });
                } else {
                    min_left = min_left.min(self.inflight[i].finish);
                    i += 1;
                }
            }
            self.min_inflight_finish = min_left;
        }

        // Refresh management: refresh begins once the bus is quiet.
        if now >= self.next_refresh_at && self.refresh_until <= now && self.bus_free_at <= now {
            self.refresh_until = now + self.cfg.timing.t_rfc;
            self.next_refresh_at = now + self.cfg.timing.t_refi;
            self.stats.refreshes += 1;
            if let Some((t, ch)) = tel.as_mut() {
                t.record(
                    now,
                    Event::RefreshStart {
                        channel: *ch,
                        cycles: self.cfg.timing.t_rfc,
                    },
                );
            }
            for b in &mut self.banks {
                b.open_row = None;
                b.rc_ready = b.rc_ready.max(self.refresh_until);
            }
        }
        if self.refresh_until > now {
            return;
        }

        // Bounded run-ahead: do not reserve the bus beyond the horizon, so
        // FR-FCFS still gets to reorder among queued requests.
        if self.bus_free_at > now + self.reserve_horizon {
            return;
        }

        // Write-drain hysteresis.
        let hi = (self.cfg.write_queue * 3) / 4;
        let lo = self.cfg.write_queue / 4;
        if self.writeq.len() >= hi {
            self.drain_writes = true;
        } else if self.writeq.len() <= lo {
            self.drain_writes = false;
        }
        let serve_writes = self.drain_writes || (self.readq.is_empty() && !self.writeq.is_empty());

        if serve_writes {
            if let Some(idx) = self.select(now, false) {
                // moca-lint: allow(panic-in-hot): idx was produced by select() over this queue this cycle
                let q = self.writeq.remove(idx).expect("selected write exists");
                self.issue(now, q, false, tel);
            }
        } else if let Some(idx) = self.select(now, true) {
            // moca-lint: allow(panic-in-hot): idx was produced by select() over this queue this cycle
            let q = self.readq.remove(idx).expect("selected read exists");
            self.issue(now, q, true, tel);
        }
    }

    /// FR-FCFS selection: oldest row-hit whose bank can CAS now; otherwise
    /// oldest request whose bank can ACT now.
    fn select(&self, now: Cycle, reads: bool) -> Option<usize> {
        let queue = if reads { &self.readq } else { &self.writeq };
        let row_hits = self.cfg.timing.supports_row_hits();
        let mut fallback: Option<usize> = None;
        for (i, q) in queue.iter().enumerate() {
            let bank = &self.banks[q.bank as usize];
            if row_hits && bank.open_row == Some(q.row) {
                return Some(i); // first (oldest) ready row hit wins
            }
            if fallback.is_none() && self.act_possible_at(bank) <= now {
                fallback = Some(i);
            }
        }
        fallback
    }

    /// Earliest cycle at which a new activate may issue on `bank`.
    fn act_possible_at(&self, bank: &BankState) -> Cycle {
        let t = &self.cfg.timing;
        let mut at = bank.rc_ready;
        if bank.open_row.is_some() {
            // Must precharge first: PRE no earlier than tRAS after ACT, then tRP.
            at = at.max(bank.ras_ready + t.t_rp);
        }
        at
    }

    fn issue(
        &mut self,
        now: Cycle,
        q: Queued,
        is_read: bool,
        mut tel: Option<(&mut Telemetry, u32)>,
    ) {
        // Disjoint-field borrow: only `banks`/`stats` are mutated below, so
        // borrowing the timing avoids copying the whole DeviceTiming (power
        // coefficients included) once per issued command.
        let t = &self.cfg.timing;
        let is_hit = t.supports_row_hits() && self.banks[q.bank as usize].open_row == Some(q.row);
        let bank_conflict = !is_hit && self.banks[q.bank as usize].open_row.is_some();
        let refresh_delayed = q.arrival < self.refresh_until;

        let (ready, row_hit) = if is_hit {
            (now + t.t_cl, true)
        } else {
            debug_assert!(self.act_possible_at(&self.banks[q.bank as usize]) <= now);
            if let Some((tl, ch)) = tel.as_mut() {
                if bank_conflict {
                    tl.record(
                        now,
                        Event::BankConflict {
                            channel: *ch,
                            bank: q.bank,
                        },
                    );
                }
            }
            let bank = &mut self.banks[q.bank as usize];
            bank.open_row = Some(q.row);
            bank.rc_ready = now + t.t_rc;
            bank.ras_ready = now + t.t_ras;
            self.stats.activates += t.subaccesses_per_line() as u64;
            // moca-lint: allow(narrowing-cast): bank index is u32; u32 -> usize never truncates
            self.bank_activates[q.bank as usize] += t.subaccesses_per_line() as u64;
            (now + t.t_rcd + t.t_cl, false)
        };

        let data_start = ready.max(self.bus_free_at);
        let data_end = data_start + self.transfer_cycles;
        self.bus_free_at = data_end;
        self.stats.busy_cycles += self.transfer_cycles;
        if row_hit {
            self.stats.row_hits += 1;
        }

        if is_read {
            let queue_cycles = now - q.arrival;
            let service_cycles = data_end - now;
            self.stats.reads += 1;
            self.stats.read_queue_cycles += queue_cycles;
            self.stats.read_service_cycles += service_cycles;
            self.inflight.push(InFlight {
                token: q.req.token,
                core: q.req.core,
                tag: q.req.tag,
                line: q.req.line,
                finish: data_end,
                queue_cycles,
                service_cycles,
                row_hit,
                bank_conflict,
                refresh_delayed,
            });
            self.min_inflight_finish = self.min_inflight_finish.min(data_end);
        } else {
            self.stats.writes += 1;
        }
    }

    /// Account a bulk page-copy on this channel (the DMA traffic of an OS
    /// page migration): occupies the data bus for `lines` transfers and
    /// books the corresponding activates/energy. Copy traffic bypasses the
    /// request queues (it is scheduled by the OS in the background) but the
    /// bus occupancy delays subsequent demand requests — the interference a
    /// migration-based scheme pays and MOCA avoids (§IV-E).
    pub fn inject_copy_traffic(&mut self, now: Cycle, lines_read: u64, lines_written: u64) {
        let lines = lines_read + lines_written;
        if lines == 0 {
            return;
        }
        self.state_version += 1;
        let t = self.transfer_cycles * lines;
        self.bus_free_at = self.bus_free_at.max(now) + t;
        self.stats.busy_cycles += t;
        self.stats.activates += lines * self.cfg.timing.subaccesses_per_line() as u64;
        self.stats.reads += lines_read;
        self.stats.writes += lines_written;
    }

    /// Integrated energy over a run of `runtime` cycles.
    pub fn energy(&self, runtime: Cycle) -> EnergyBreakdown {
        EnergyBreakdown::compute(
            &self.cfg.timing.power,
            self.cfg.power_capacity_bytes,
            runtime,
            self.stats.busy_cycles,
            self.stats.activates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::{Segment, MB};

    fn read_req(token: u64, local_off: u64) -> MemRequest {
        MemRequest {
            token,
            line: LineAddr(local_off / 64),
            local_off,
            kind: AccessKind::Read,
            core: CoreId(0),
            tag: MemTag::segment(Segment::Data),
        }
    }

    fn run_until_complete(ch: &mut Channel, limit: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut now = 0;
        while !ch.is_idle() && now < limit {
            now += 1;
            ch.tick(now, &mut out);
        }
        out
    }

    fn ddr3_channel() -> Channel {
        Channel::new(ChannelConfig::new(DeviceTiming::ddr3(), 512 * MB))
    }

    #[test]
    fn single_read_latency_is_closed_row_plus_transfer() {
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0));
        let done = run_until_complete(&mut ch, 10_000);
        assert_eq!(done.len(), 1);
        let c = done[0];
        // Scheduled at cycle 1: ACT(14) + CAS(14) + burst(5) = 33, finish 34.
        assert_eq!(c.finish, 1 + 14 + 14 + 5);
        assert!(!c.row_hit);
        assert_eq!(c.queue_cycles, 1);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0));
        ch.enqueue(0, read_req(2, 64)); // same 128 B row
        let done = run_until_complete(&mut ch, 10_000);
        assert_eq!(done.len(), 2);
        let second = done.iter().find(|c| c.token == 2).unwrap();
        assert!(second.row_hit);
        assert!(ch.stats().row_hits >= 1);
    }

    #[test]
    fn rldram_never_row_hits_but_is_fast() {
        let mut ch = Channel::new(ChannelConfig::new(DeviceTiming::rldram3(), 256 * MB));
        ch.enqueue(0, read_req(1, 0));
        ch.enqueue(0, read_req(2, 64));
        let done = run_until_complete(&mut ch, 10_000);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| !c.row_hit));
        // Each line costs 4 activates on 16 B rows.
        assert_eq!(ch.stats().activates, 8);
        let worst = done.iter().map(|c| c.finish).max().unwrap();
        assert!(worst < 20, "RLDRAM back-to-back reads too slow: {worst}");
    }

    #[test]
    fn bank_conflict_serializes_on_trc() {
        let t = DeviceTiming::ddr3();
        let conflict_stride = t.row_buffer_bytes * t.banks as u64; // same bank, next row
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0));
        ch.enqueue(0, read_req(2, conflict_stride));
        let done = run_until_complete(&mut ch, 10_000);
        let f: Vec<_> = done.iter().map(|c| (c.token, c.finish)).collect();
        let first = f.iter().find(|(t, _)| *t == 1).unwrap().1;
        let second = f.iter().find(|(t, _)| *t == 2).unwrap().1;
        // Second ACT must wait for precharge: > tRAS + tRP after the first.
        assert!(second >= first + 20, "finishes: {first} vs {second}");
    }

    #[test]
    fn bank_parallel_reads_overlap() {
        // Two reads to different banks should finish much closer together
        // than two reads to the same bank.
        let t = DeviceTiming::ddr3();
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0));
        ch.enqueue(0, read_req(2, t.row_buffer_bytes)); // bank 1
        let done = run_until_complete(&mut ch, 10_000);
        let finishes: Vec<_> = done.iter().map(|c| c.finish).collect();
        let spread = finishes.iter().max().unwrap() - finishes.iter().min().unwrap();
        assert!(spread <= 6, "bank-parallel spread too large: {spread}");
    }

    #[test]
    fn streaming_throughput_approaches_bus_limit() {
        let t = DeviceTiming::ddr3();
        let mut ch = ddr3_channel();
        let mut out = Vec::new();
        let mut sent = 0u64;
        let mut done = 0u64;
        let total = 400u64;
        let mut now = 0;
        let mut addr = 0u64;
        while done < total {
            now += 1;
            while sent < total && ch.can_accept(AccessKind::Read) {
                ch.enqueue(now, read_req(sent, addr));
                addr += 64;
                sent += 1;
            }
            out.clear();
            ch.tick(now, &mut out);
            done += out.len() as u64;
            assert!(now < 100_000, "streaming run did not finish");
        }
        let cycles_per_line = now as f64 / total as f64;
        let bus = t.line_transfer_cycles() as f64;
        assert!(
            cycles_per_line < bus * 1.8,
            "streaming too slow: {cycles_per_line:.2} cycles/line vs bus {bus}"
        );
    }

    #[test]
    fn writes_complete_silently_and_count() {
        let mut ch = ddr3_channel();
        let mut req = read_req(1, 0);
        req.kind = AccessKind::Write;
        ch.enqueue(0, req);
        let done = run_until_complete(&mut ch, 10_000);
        assert!(done.is_empty());
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_until_drain() {
        let mut ch = ddr3_channel();
        for i in 0..4 {
            let mut w = read_req(100 + i, i * 4096);
            w.kind = AccessKind::Write;
            ch.enqueue(0, w);
        }
        ch.enqueue(0, read_req(1, 0));
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() && now < 10_000 {
            now += 1;
            ch.tick(now, &mut out);
        }
        // The read finishes even though writes arrived first.
        assert_eq!(out[0].token, 1);
        assert!(ch.stats().writes < 4, "writes should not all drain first");
    }

    #[test]
    fn refresh_blocks_and_counts() {
        let mut ch = ddr3_channel();
        let mut out = Vec::new();
        // Run past one refresh interval while idle-enqueueing nothing.
        for now in 1..=8000 {
            ch.tick(now, &mut out);
        }
        assert!(ch.stats().refreshes >= 1);
        // A read arriving mid-refresh is delayed past the refresh window.
        let mut ch = ddr3_channel();
        for now in 1..=7801 {
            ch.tick(now, &mut out);
        }
        ch.enqueue(7801, read_req(9, 0));
        out.clear();
        let mut now = 7801;
        while out.is_empty() {
            now += 1;
            ch.tick(now, &mut out);
        }
        assert!(out[0].finish > 7800 + 160, "read not blocked by refresh");
    }

    #[test]
    fn fr_fcfs_serves_row_hit_before_older_miss() {
        // Open a row, then enqueue (older) a miss to a busy bank and
        // (younger) a hit to the open row: the hit must finish first.
        let t = DeviceTiming::ddr3();
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0)); // opens bank 0 row 0
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() {
            now += 1;
            ch.tick(now, &mut out);
        }
        // Older request: same bank, different row (needs PRE+ACT, blocked by
        // tRAS). Younger request: row hit on the open row.
        let conflict = t.row_buffer_bytes * t.banks as u64;
        ch.enqueue(now, read_req(2, conflict));
        ch.enqueue(now, read_req(3, 64));
        let mut finishes = Vec::new();
        while finishes.len() < 2 {
            now += 1;
            out.clear();
            ch.tick(now, &mut out);
            finishes.extend(out.iter().map(|c| (c.token, c.finish, c.row_hit)));
        }
        let hit = finishes.iter().find(|f| f.0 == 3).unwrap();
        let miss = finishes.iter().find(|f| f.0 == 2).unwrap();
        assert!(hit.2, "younger request should row-hit");
        assert!(
            hit.1 < miss.1,
            "row hit (finish {}) must beat the older miss (finish {})",
            hit.1,
            miss.1
        );
    }

    #[test]
    fn copy_traffic_occupies_the_bus() {
        let mut ch = ddr3_channel();
        ch.inject_copy_traffic(0, 64, 64); // one page copy
        let before = ch.stats().busy_cycles;
        assert_eq!(before, 128 * DeviceTiming::ddr3().line_transfer_cycles());
        assert_eq!(ch.stats().reads, 64);
        assert_eq!(ch.stats().writes, 64);
        // A demand read issued right after must wait behind the copy burst.
        ch.enqueue(1, read_req(9, 0));
        let done = run_until_complete(&mut ch, 10_000);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].finish > 128 * 5 / 2,
            "read finished at {} -- copy did not delay it",
            done[0].finish
        );
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut ch = ddr3_channel();
        let cap = ch.config().read_queue;
        for i in 0..cap as u64 {
            assert!(ch.can_accept(AccessKind::Read));
            ch.enqueue(0, read_req(i, i * 64));
        }
        assert!(!ch.can_accept(AccessKind::Read));
    }

    #[test]
    fn next_event_none_when_idle() {
        let ch = ddr3_channel();
        assert_eq!(ch.next_event_after(5), None);
        let mut ch = ddr3_channel();
        ch.enqueue(0, read_req(1, 0));
        assert!(ch.next_event_after(0).is_some());
    }

    #[test]
    fn noop_gate_matches_ungated_ticking() {
        // Ticking only when `tick_is_noop` is false must produce the same
        // refresh schedule and stats as ticking every cycle, including a
        // request arriving mid-run and a long idle tail.
        let mut gated = ddr3_channel();
        let mut plain = ddr3_channel();
        let mut out_g = Vec::new();
        let mut out_p = Vec::new();
        for now in 1..=20_000u64 {
            if now == 9000 {
                gated.enqueue(now - 1, read_req(1, 0));
                plain.enqueue(now - 1, read_req(1, 0));
            }
            if !gated.tick_is_noop(now) {
                gated.tick(now, &mut out_g);
            }
            plain.tick(now, &mut out_p);
        }
        assert_eq!(out_g.len(), out_p.len());
        assert_eq!(gated.stats().refreshes, plain.stats().refreshes);
        assert_eq!(gated.stats().reads, plain.stats().reads);
        assert!(gated.stats().refreshes >= 2);
        let g = out_g[0];
        let p = out_p[0];
        assert_eq!((g.finish, g.queue_cycles), (p.finish, p.queue_cycles));
    }

    #[test]
    fn energy_grows_with_activity() {
        let mut busy = ddr3_channel();
        for i in 0..32u64 {
            busy.enqueue(0, read_req(i, i * 4096));
        }
        let _ = run_until_complete(&mut busy, 100_000);
        let idle = ddr3_channel();
        let e_busy = busy.energy(100_000).total_j();
        let e_idle = idle.energy(100_000).total_j();
        assert!(e_busy > e_idle);
    }
}
