//! Physical-address decoding.
//!
//! Two mappings are used, following the paper:
//!
//! * **Homogeneous systems** use gem5's `RoRaBaChCo` interleaving (Table I):
//!   the channel bits sit directly above the cache-line offset, so
//!   consecutive lines round-robin across the four channels, and within a
//!   channel the remaining bits split into column / bank / row.
//! * **Heterogeneous systems** give each module its own physical address
//!   range with a dedicated controller (§V-C), so the channel is selected by
//!   range and only the intra-channel bits are decoded.

use crate::timing::DeviceTiming;
use moca_common::addr::{LineAddr, CACHE_LINE_SIZE};
use moca_common::units::{narrow_u32, narrow_usize};
use serde::{Deserialize, Serialize};

/// Intra-channel coordinates of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Bank index within the device.
    pub bank: u32,
    /// Row within the bank. Rows are taken modulo the device's row count so
    /// scaled-down capacities still exercise the full row space.
    pub row: u32,
    /// Byte column within the row buffer.
    pub col: u32,
}

/// Decode a channel-local byte address into bank/row/column for `timing`.
///
/// The layout is column (row-buffer sized) → bank → row, i.e. consecutive
/// row-buffer-sized blocks stripe across banks, which maximizes bank-level
/// parallelism for streaming access — the standard open-page interleave.
/// For devices whose row buffer is smaller than a cache line (RLDRAM3), the
/// line's sub-blocks land in consecutive banks by the same formula.
pub fn decode_local(timing: &DeviceTiming, local_byte_addr: u64) -> DecodedAddr {
    let rb = timing.row_buffer_bytes.max(1);
    let col = narrow_u32(local_byte_addr % rb);
    let block = local_byte_addr / rb;
    let bank = narrow_u32(block % timing.banks as u64);
    let row = narrow_u32((block / timing.banks as u64) % timing.rows as u64);
    DecodedAddr { bank, row, col }
}

/// Identifier of the "row" for open-page hit detection: unique per
/// (bank, row) pair at line granularity.
pub fn open_row_id(timing: &DeviceTiming, local_byte_addr: u64) -> u32 {
    decode_local(timing, local_byte_addr).row
}

/// Maps a global physical line address to a channel and a channel-local byte
/// offset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AddressMapper {
    /// `RoRaBaChCo`: channel bits immediately above the line offset.
    Interleaved {
        /// Number of channels (power of two).
        channels: u32,
    },
    /// Range-per-channel: `bounds[i]..bounds[i+1]` (byte addresses) belongs
    /// to channel `i`. `bounds` has `channels + 1` entries, starts at 0 and
    /// is strictly increasing.
    Ranged {
        /// Exclusive upper byte bounds per channel, prefixed with 0.
        bounds: Vec<u64>,
    },
}

impl AddressMapper {
    /// Build a range mapper from per-channel capacities in bytes.
    pub fn ranged(capacities: &[u64]) -> AddressMapper {
        let mut bounds = Vec::with_capacity(capacities.len() + 1);
        bounds.push(0);
        let mut acc = 0u64;
        for &c in capacities {
            assert!(c > 0, "zero-capacity channel");
            acc += c;
            bounds.push(acc);
        }
        AddressMapper::Ranged { bounds }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        match self {
            // moca-lint: allow(narrowing-cast): channel count is u32; u32 -> usize never truncates
            AddressMapper::Interleaved { channels } => *channels as usize,
            AddressMapper::Ranged { bounds } => bounds.len() - 1,
        }
    }

    /// Total addressable bytes (`None` means unbounded interleaved space —
    /// capacity is enforced by the frame allocator, not the mapper).
    pub fn total_bytes(&self) -> Option<u64> {
        match self {
            AddressMapper::Interleaved { .. } => None,
            AddressMapper::Ranged { bounds } => Some(*bounds.last().unwrap()),
        }
    }

    /// Map a physical line address to `(channel, channel-local byte offset)`.
    pub fn map(&self, line: LineAddr) -> (usize, u64) {
        let byte = line.0 * CACHE_LINE_SIZE;
        match self {
            AddressMapper::Interleaved { channels } => {
                let ch = narrow_usize(line.0 % *channels as u64);
                let local = (line.0 / *channels as u64) * CACHE_LINE_SIZE;
                (ch, local)
            }
            AddressMapper::Ranged { bounds } => {
                // Channels are few (≤ 4 in all configurations), linear scan.
                for ch in 0..bounds.len() - 1 {
                    if byte >= bounds[ch] && byte < bounds[ch + 1] {
                        return (ch, byte - bounds[ch]);
                    }
                }
                panic!(
                    "physical address {byte:#x} outside mapped memory ({:#x})",
                    bounds.last().unwrap()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_round_robins_lines() {
        let m = AddressMapper::Interleaved { channels: 4 };
        let chans: Vec<usize> = (0..8).map(|i| m.map(LineAddr(i)).0).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Local addresses are dense per channel.
        assert_eq!(m.map(LineAddr(0)).1, 0);
        assert_eq!(m.map(LineAddr(4)).1, 64);
        assert_eq!(m.map(LineAddr(8)).1, 128);
    }

    #[test]
    fn ranged_selects_by_capacity() {
        let m = AddressMapper::ranged(&[1024, 2048, 4096]);
        assert_eq!(m.channels(), 3);
        assert_eq!(m.total_bytes(), Some(7168));
        assert_eq!(m.map(LineAddr(0)), (0, 0));
        assert_eq!(m.map(LineAddr(1024 / 64)), (1, 0));
        assert_eq!(m.map(LineAddr((1024 + 2048) / 64)), (2, 0));
        assert_eq!(m.map(LineAddr((1024 + 2048 + 64) / 64)), (2, 64));
    }

    #[test]
    #[should_panic(expected = "outside mapped memory")]
    fn ranged_rejects_out_of_range() {
        let m = AddressMapper::ranged(&[1024]);
        m.map(LineAddr(1024 / 64));
    }

    #[test]
    fn decode_stripes_banks() {
        let t = DeviceTiming::ddr3(); // 128 B rows, 8 banks
        let a = decode_local(&t, 0);
        let b = decode_local(&t, 128);
        let c = decode_local(&t, 128 * 8);
        assert_eq!(a.bank, 0);
        assert_eq!(b.bank, 1);
        assert_eq!(c.bank, 0);
        assert_eq!(c.row, a.row + 1);
    }

    #[test]
    fn decode_rldram_subline_banks_differ() {
        let t = DeviceTiming::rldram3(); // 16 B rows
        let banks: Vec<u32> = (0..4).map(|i| decode_local(&t, i * 16).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rows_wrap_modulo_device_rows() {
        let t = DeviceTiming::rldram3();
        let big = t.row_buffer_bytes * t.banks as u64 * t.rows as u64;
        assert_eq!(decode_local(&t, big).row, 0);
    }
}
