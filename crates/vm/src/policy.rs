//! OS page-placement policy hook.
//!
//! The simulator's page-fault handler calls a [`PagePlacementPolicy`] to pick
//! the physical frame for a faulting page. The three policies the paper
//! evaluates (MOCA object-level, Heter-App application-level, homogeneous)
//! are implemented in the `moca` crate against this trait; keeping the trait
//! here lets `moca-sim` stay independent of the policy crate.

use crate::frames::FrameSpace;
use crate::layout::PageIntent;
use moca_common::{AppId, ModuleKind, ObjectClass};

/// Module-kind preference list for an object class in a heterogeneous
/// system (§III-C / §IV-D: "the OS is also given the priorities of memory
/// modules for different memory object types in case the most desired
/// memory module is full", with "next best for HBM is LPDDR").
pub fn preference_order(class: ObjectClass) -> [ModuleKind; 4] {
    match class {
        ObjectClass::LatencySensitive => [
            ModuleKind::Rldram3,
            ModuleKind::Hbm,
            ModuleKind::Lpddr2,
            ModuleKind::Ddr3,
        ],
        ObjectClass::BandwidthSensitive => [
            ModuleKind::Hbm,
            ModuleKind::Lpddr2,
            ModuleKind::Rldram3,
            ModuleKind::Ddr3,
        ],
        ObjectClass::NonIntensive => [
            ModuleKind::Lpddr2,
            ModuleKind::Ddr3,
            ModuleKind::Hbm,
            ModuleKind::Rldram3,
        ],
    }
}

/// Decides which physical frame backs a faulting virtual page.
pub trait PagePlacementPolicy {
    /// Allocate a frame for a page of `intent` faulting in application
    /// `app`. Returns `None` only when physical memory is completely
    /// exhausted.
    fn place(&mut self, app: AppId, intent: PageIntent, frames: &mut FrameSpace) -> Option<u64>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// The module kind this policy would ideally place the page on, before
    /// any capacity fallback. Purely informational — telemetry compares it
    /// against the frame actually returned by [`place`](Self::place) to flag
    /// fallback allocations. Policies without a meaningful notion of a
    /// preferred module (e.g. first-touch) return `None`.
    fn preferred(&self, app: AppId, intent: PageIntent) -> Option<ModuleKind> {
        let _ = (app, intent);
        None
    }
}

/// Trivial policy: first-touch over every region in layout order, ignoring
/// intent. Used for tests and as the degenerate baseline.
#[derive(Debug, Default, Clone)]
pub struct FirstTouchPolicy;

impl PagePlacementPolicy for FirstTouchPolicy {
    fn place(&mut self, _app: AppId, _intent: PageIntent, frames: &mut FrameSpace) -> Option<u64> {
        for i in 0..frames.regions().len() {
            if let Some(pfn) = frames.alloc_in_region(i) {
                return Some(pfn);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "first-touch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::regions_from_capacities;
    use moca_common::addr::PAGE_SIZE;

    #[test]
    fn preference_orders_cover_all_kinds() {
        for class in ObjectClass::ALL {
            let order = preference_order(class);
            let set: moca_common::DetSet<_> = order.iter().collect();
            assert_eq!(set.len(), 4, "{class} order has duplicates");
        }
    }

    #[test]
    fn latency_prefers_rldram_bandwidth_prefers_hbm() {
        assert_eq!(
            preference_order(ObjectClass::LatencySensitive)[0],
            ModuleKind::Rldram3
        );
        assert_eq!(
            preference_order(ObjectClass::BandwidthSensitive)[0],
            ModuleKind::Hbm
        );
        assert_eq!(
            preference_order(ObjectClass::NonIntensive)[0],
            ModuleKind::Lpddr2
        );
    }

    #[test]
    fn hbm_falls_back_to_lpddr() {
        // §IV-D: "next best for HBM is LPDDR".
        assert_eq!(
            preference_order(ObjectClass::BandwidthSensitive)[1],
            ModuleKind::Lpddr2
        );
    }

    #[test]
    fn first_touch_fills_in_order() {
        let mut fs = FrameSpace::new(regions_from_capacities(&[
            (ModuleKind::Rldram3, 0, PAGE_SIZE),
            (ModuleKind::Hbm, 1, PAGE_SIZE),
        ]));
        let mut p = FirstTouchPolicy;
        let a = p.place(AppId(0), PageIntent::Stack, &mut fs).unwrap();
        let b = p.place(AppId(0), PageIntent::Stack, &mut fs).unwrap();
        assert_eq!(fs.kind_of(a), Some(ModuleKind::Rldram3));
        assert_eq!(fs.kind_of(b), Some(ModuleKind::Hbm));
        assert_eq!(p.place(AppId(0), PageIntent::Stack, &mut fs), None);
    }
}
