//! Per-process virtual address-space layout with typed heap partitions
//! (Fig. 6 of the paper).
//!
//! ```text
//!   0x0040_0000  code (text)
//!   0x1000_0000  data / bss
//!   0x2000_0000  Pow-MO heap   (non-memory-intensive objects)
//!   0x4000_0000  BW-MO heap    (bandwidth-sensitive objects)
//!   0x6000_0000  Lat-MO heap   (latency-sensitive objects)
//!   0x7000_0000  stack (grows down from 0x7FFF_F000)
//! ```
//!
//! Because each heap class owns a disjoint virtual range, the OS can derive
//! the desired module type from the faulting virtual page number — exactly
//! the mechanism of §III-C ("based on the memory object's virtual page
//! number, the OS identifies the type of the memory object").

use moca_common::addr::{VirtAddr, PAGE_SIZE};
use moca_common::{ObjectClass, Segment};
use serde::{Deserialize, Serialize};

/// Base of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the data/bss segment.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Base of the power (non-intensive) heap partition.
pub const POW_HEAP_BASE: u64 = 0x2000_0000;
/// Base of the bandwidth heap partition.
pub const BW_HEAP_BASE: u64 = 0x4000_0000;
/// Base of the latency heap partition.
pub const LAT_HEAP_BASE: u64 = 0x6000_0000;
/// Lowest address of the stack region.
pub const STACK_BASE: u64 = 0x7000_0000;
/// Stack top (stack grows down from here).
pub const STACK_TOP: u64 = 0x7FFF_F000;

/// Exclusive end of a heap partition's virtual range: the next partition's
/// base, or the stack for the topmost (latency) partition.
pub fn partition_end(class: ObjectClass) -> u64 {
    match class {
        ObjectClass::NonIntensive => BW_HEAP_BASE,
        ObjectClass::BandwidthSensitive => LAT_HEAP_BASE,
        ObjectClass::LatencySensitive => STACK_BASE,
    }
}

/// Statically validate the address-space layout: every region page-aligned,
/// regions strictly ordered and non-overlapping, heap partitions tiling the
/// heap segment contiguously so `heap_class_of_va` has no unclassifiable
/// holes. Errors name the violated constraint. The layout is compile-time
/// constant, so this is primarily exercised offline by `moca-lint
/// check-model` and at system construction as a guard against future edits.
pub fn validate_layout() -> Result<(), String> {
    let regions: [(&str, u64, u64); 6] = [
        ("code", CODE_BASE, DATA_BASE),
        ("data", DATA_BASE, POW_HEAP_BASE),
        ("pow-heap", POW_HEAP_BASE, BW_HEAP_BASE),
        ("bw-heap", BW_HEAP_BASE, LAT_HEAP_BASE),
        ("lat-heap", LAT_HEAP_BASE, STACK_BASE),
        ("stack", STACK_BASE, STACK_TOP),
    ];
    for (name, base, end) in regions {
        if base % PAGE_SIZE != 0 {
            return Err(format!("{name} base {base:#x} is not page-aligned"));
        }
        if end <= base {
            return Err(format!("{name} region is empty ({base:#x}..{end:#x})"));
        }
    }
    for w in regions.windows(2) {
        let (a_name, _, a_end) = w[0];
        let (b_name, b_base, _) = w[1];
        if a_end > b_base {
            return Err(format!(
                "{a_name} (ends {a_end:#x}) overlaps {b_name} (starts {b_base:#x})"
            ));
        }
    }
    // Every partition's bump-allocator limit must stay inside its range.
    for class in ObjectClass::ALL {
        if partition_end(class) <= partition_base(class) {
            return Err(format!("heap partition for {class} is empty"));
        }
    }
    if !STACK_TOP.is_multiple_of(PAGE_SIZE) {
        return Err(format!("stack top {STACK_TOP:#x} is not page-aligned"));
    }
    Ok(())
}

/// Base virtual address of a heap partition.
pub fn partition_base(class: ObjectClass) -> u64 {
    match class {
        ObjectClass::LatencySensitive => LAT_HEAP_BASE,
        ObjectClass::BandwidthSensitive => BW_HEAP_BASE,
        ObjectClass::NonIntensive => POW_HEAP_BASE,
    }
}

/// Which segment a virtual address falls in.
pub fn segment_of_va(va: VirtAddr) -> Segment {
    match va.0 {
        a if a >= STACK_BASE => Segment::Stack,
        a if a >= POW_HEAP_BASE => Segment::Heap,
        a if a >= DATA_BASE => Segment::Data,
        _ => Segment::Code,
    }
}

/// Heap class of a virtual address, if it is a heap address.
pub fn heap_class_of_va(va: VirtAddr) -> Option<ObjectClass> {
    match va.0 {
        a if (LAT_HEAP_BASE..STACK_BASE).contains(&a) => Some(ObjectClass::LatencySensitive),
        a if (BW_HEAP_BASE..LAT_HEAP_BASE).contains(&a) => Some(ObjectClass::BandwidthSensitive),
        a if (POW_HEAP_BASE..BW_HEAP_BASE).contains(&a) => Some(ObjectClass::NonIntensive),
        _ => None,
    }
}

/// What a faulting page is used for — the information the placement policy
/// receives from the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageIntent {
    /// A heap page from the partition of the given class.
    Heap(ObjectClass),
    /// A stack page.
    Stack,
    /// A code page.
    Code,
    /// A global-data page.
    Data,
}

impl PageIntent {
    /// Derive the intent of a virtual address from the layout.
    pub fn of_va(va: VirtAddr) -> PageIntent {
        match segment_of_va(va) {
            Segment::Stack => PageIntent::Stack,
            Segment::Code => PageIntent::Code,
            Segment::Data => PageIntent::Data,
            Segment::Heap => PageIntent::Heap(
                heap_class_of_va(va).expect("heap segment implies a heap partition"),
            ),
        }
    }
}

/// Bump allocator over the typed virtual heap partitions plus the stack and
/// data segments — MOCA's modified `malloc` (§IV-D) at the virtual level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeapLayout {
    cursors: [u64; 3],
    data_cursor: u64,
    stack_cursor: u64,
}

impl Default for HeapLayout {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapLayout {
    /// Fresh layout with empty partitions.
    pub fn new() -> HeapLayout {
        HeapLayout {
            cursors: [LAT_HEAP_BASE, BW_HEAP_BASE, POW_HEAP_BASE],
            data_cursor: DATA_BASE,
            stack_cursor: STACK_TOP,
        }
    }

    fn cursor_mut(&mut self, class: ObjectClass) -> &mut u64 {
        match class {
            ObjectClass::LatencySensitive => &mut self.cursors[0],
            ObjectClass::BandwidthSensitive => &mut self.cursors[1],
            ObjectClass::NonIntensive => &mut self.cursors[2],
        }
    }

    /// Allocate `size` bytes in the partition for `class` (64 B aligned, so
    /// objects never share cache lines — matching how the profiler
    /// attributes misses to objects). Panics if a partition overflows its
    /// virtual range, which no configured workload approaches.
    pub fn alloc_heap(&mut self, class: ObjectClass, size: u64) -> VirtAddr {
        let cur = self.cursor_mut(class);
        let va = VirtAddr(*cur);
        *cur += size.div_ceil(64) * 64;
        // The limit is the next region's base, so the latency partition can
        // never silently grow into the stack.
        let limit = partition_end(class);
        assert!(*cur <= limit, "heap partition overflow for {class}");
        va
    }

    /// Allocate `size` bytes of global data.
    pub fn alloc_data(&mut self, size: u64) -> VirtAddr {
        let va = VirtAddr(self.data_cursor);
        self.data_cursor += size.div_ceil(64) * 64;
        assert!(self.data_cursor <= POW_HEAP_BASE, "data segment overflow");
        va
    }

    /// Reserve `size` bytes of stack (growing down). Returns the lowest
    /// address of the reservation.
    pub fn grow_stack(&mut self, size: u64) -> VirtAddr {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.stack_cursor -= size;
        assert!(self.stack_cursor >= STACK_BASE, "stack overflow");
        VirtAddr(self.stack_cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_constants_validate() {
        validate_layout().expect("the committed layout must be valid");
    }

    #[test]
    fn segments_classified_by_range() {
        assert_eq!(segment_of_va(VirtAddr(CODE_BASE)), Segment::Code);
        assert_eq!(segment_of_va(VirtAddr(DATA_BASE)), Segment::Data);
        assert_eq!(segment_of_va(VirtAddr(POW_HEAP_BASE)), Segment::Heap);
        assert_eq!(segment_of_va(VirtAddr(LAT_HEAP_BASE + 4096)), Segment::Heap);
        assert_eq!(segment_of_va(VirtAddr(STACK_TOP - 8)), Segment::Stack);
    }

    #[test]
    fn heap_class_recoverable_from_va() {
        let mut h = HeapLayout::new();
        for class in ObjectClass::ALL {
            let va = h.alloc_heap(class, 1000);
            assert_eq!(heap_class_of_va(va), Some(class));
            assert_eq!(PageIntent::of_va(va), PageIntent::Heap(class));
        }
    }

    #[test]
    fn heap_allocations_do_not_overlap() {
        let mut h = HeapLayout::new();
        let a = h.alloc_heap(ObjectClass::NonIntensive, 100);
        let b = h.alloc_heap(ObjectClass::NonIntensive, 100);
        assert!(b.0 >= a.0 + 100);
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 % 64, 0);
    }

    #[test]
    fn stack_grows_down_page_aligned() {
        let mut h = HeapLayout::new();
        let a = h.grow_stack(100);
        let b = h.grow_stack(100);
        assert_eq!(a.0 % PAGE_SIZE, 0);
        assert!(b.0 < a.0);
        assert_eq!(segment_of_va(a), Segment::Stack);
    }

    #[test]
    fn data_alloc_stays_in_data_segment() {
        let mut h = HeapLayout::new();
        let d = h.alloc_data(4096);
        assert_eq!(segment_of_va(d), Segment::Data);
        assert_eq!(PageIntent::of_va(d), PageIntent::Data);
    }

    #[test]
    fn non_heap_has_no_class() {
        assert_eq!(heap_class_of_va(VirtAddr(CODE_BASE)), None);
        assert_eq!(heap_class_of_va(VirtAddr(STACK_TOP - 64)), None);
    }
}
