//! Virtual-memory substrate: address-space layout, page tables, TLBs,
//! physical frame allocation over heterogeneous modules, and the OS
//! page-placement policy hook.
//!
//! This reproduces the memory-management layer the paper modifies inside the
//! Linux guest (§III-C, §IV-D, Fig. 6):
//!
//! * the **heap virtual address space is partitioned into three typed
//!   regions** (latency / bandwidth / power), so an object's class is
//!   recoverable from its virtual page number alone;
//! * the **physical address space is divided per module**; the OS maintains
//!   per-module frame allocators and maps a faulting virtual page to a frame
//!   of the module its class prefers, falling back to the next-best module
//!   when the preferred one is exhausted;
//! * address translation goes through a per-core **TLB**; misses pay a page
//!   walk.

pub mod frames;
pub mod layout;
pub mod page_table;
pub mod policy;
pub mod tlb;

pub use frames::{FrameError, FrameSpace, FreeErrorCause, ModuleRegion, FREE_CACHE, STRIPE_CHUNK};
pub use layout::{partition_base, segment_of_va, HeapLayout, PageIntent};
pub use page_table::PageTable;
pub use policy::{preference_order, PagePlacementPolicy};
pub use tlb::Tlb;
