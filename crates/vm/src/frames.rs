//! Physical frame allocation over heterogeneous memory modules.
//!
//! The OS "maintains the starting, ending, and the next available page number
//! of each memory module" (§IV-D). A [`FrameSpace`] is the set of
//! [`ModuleRegion`]s of one machine configuration; allocation walks a
//! preference list of module kinds and takes the next free frame of the
//! first kind with space.

use moca_common::addr::PAGE_SIZE;
use moca_common::ModuleKind;
use serde::{Deserialize, Serialize};

/// One memory module's slice of the physical address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleRegion {
    /// Technology of the module.
    pub kind: ModuleKind,
    /// Index of the channel/controller serving this module.
    pub channel: usize,
    /// First physical frame number of the region.
    pub base_pfn: u64,
    /// Number of frames in the region.
    pub frames: u64,
}

impl ModuleRegion {
    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.frames * PAGE_SIZE
    }

    /// Whether `pfn` belongs to this region.
    pub fn contains_pfn(&self, pfn: u64) -> bool {
        pfn >= self.base_pfn && pfn < self.base_pfn + self.frames
    }
}

/// All physical memory of a machine, partitioned into module regions, with
/// per-region free-frame tracking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameSpace {
    regions: Vec<ModuleRegion>,
    next_free: Vec<u64>,
    freed: Vec<Vec<u64>>,
    /// Striping state per module kind (indexed like [`ModuleKind::ALL`]):
    /// current region and frames left in the chunk.
    stripe_region: [usize; 4],
    stripe_left: [u64; 4],
}

/// Frames allocated from one region before striping rotates to the next
/// region of the same kind. Must be a multiple of the L2 page-color period
/// (8 pages for a 512-set, 64 B-line cache): per-page alternation between
/// two regions whose bases share colors would alias virtually-adjacent
/// pages onto the same cache colors and halve the effective cache.
pub const STRIPE_CHUNK: u64 = 16;

fn kind_index(kind: ModuleKind) -> usize {
    ModuleKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

impl FrameSpace {
    /// Build a frame space from contiguous module regions. Regions must be
    /// laid out back-to-back starting at frame 0 (the sim derives channel
    /// address ranges from the same layout).
    pub fn new(regions: Vec<ModuleRegion>) -> FrameSpace {
        assert!(!regions.is_empty());
        let mut expected = 0;
        for r in &regions {
            assert_eq!(r.base_pfn, expected, "regions must be contiguous");
            assert!(r.frames > 0, "empty region");
            expected += r.frames;
        }
        let n = regions.len();
        FrameSpace {
            regions,
            next_free: vec![0; n],
            freed: vec![Vec::new(); n],
            stripe_region: [usize::MAX; 4],
            stripe_left: [0; 4],
        }
    }

    /// The module regions.
    pub fn regions(&self) -> &[ModuleRegion] {
        &self.regions
    }

    /// Total frames across all regions.
    pub fn total_frames(&self) -> u64 {
        self.regions.iter().map(|r| r.frames).sum()
    }

    /// Free frames remaining in region `idx`.
    pub fn free_in_region(&self, idx: usize) -> u64 {
        self.regions[idx].frames - self.next_free[idx] + self.freed[idx].len() as u64
    }

    /// Free frames remaining across all regions of `kind`.
    pub fn free_of_kind(&self, kind: ModuleKind) -> u64 {
        (0..self.regions.len())
            .filter(|&i| self.regions[i].kind == kind)
            .map(|i| self.free_in_region(i))
            .sum()
    }

    /// Free-frame headroom per module kind actually present in the machine,
    /// in [`ModuleKind::ALL`] order. Feeds telemetry's frame-pool gauges.
    pub fn headroom(&self) -> Vec<(ModuleKind, u64)> {
        ModuleKind::ALL
            .iter()
            .filter(|&&k| self.regions.iter().any(|r| r.kind == k))
            .map(|&k| (k, self.free_of_kind(k)))
            .collect()
    }

    /// Allocate one frame from region `idx`, if it has space.
    pub fn alloc_in_region(&mut self, idx: usize) -> Option<u64> {
        if let Some(pfn) = self.freed[idx].pop() {
            return Some(pfn);
        }
        if self.next_free[idx] < self.regions[idx].frames {
            let pfn = self.regions[idx].base_pfn + self.next_free[idx];
            self.next_free[idx] += 1;
            Some(pfn)
        } else {
            None
        }
    }

    /// Allocate one frame following a module-kind preference list: the first
    /// kind with a free frame wins. Kinds not present in the machine are
    /// skipped. Returns the frame and the kind it came from.
    ///
    /// When a kind has several regions (the paper's two LPDDR2 channels),
    /// allocations stripe across them in [`STRIPE_CHUNK`]-frame chunks —
    /// spreading one class's pages over both controllers for bandwidth
    /// while keeping each span of virtually-adjacent pages covering all
    /// physical page colors (see [`STRIPE_CHUNK`]).
    pub fn alloc_by_preference(&mut self, prefs: &[ModuleKind]) -> Option<(u64, ModuleKind)> {
        for &kind in prefs {
            let ki = kind_index(kind);
            // Continue the current chunk if it has room.
            let cur = self.stripe_region[ki];
            if self.stripe_left[ki] > 0
                && cur < self.regions.len()
                && self.regions[cur].kind == kind
                && self.free_in_region(cur) > 0
            {
                self.stripe_left[ki] -= 1;
                let pfn = self.alloc_in_region(cur).expect("region had free frames");
                return Some((pfn, kind));
            }
            // Start a new chunk on the region of this kind with most space.
            let best = (0..self.regions.len())
                .filter(|&i| self.regions[i].kind == kind && self.free_in_region(i) > 0)
                .max_by_key(|&i| self.free_in_region(i));
            if let Some(i) = best {
                self.stripe_region[ki] = i;
                self.stripe_left[ki] = STRIPE_CHUNK - 1;
                let pfn = self.alloc_in_region(i).expect("region had free frames");
                return Some((pfn, kind));
            }
        }
        None
    }

    /// Return a frame to its region's free list.
    pub fn free(&mut self, pfn: u64) {
        let idx = self.region_index_of(pfn).expect("pfn belongs to a region");
        debug_assert!(
            pfn < self.regions[idx].base_pfn + self.next_free[idx],
            "freeing a never-allocated frame"
        );
        self.freed[idx].push(pfn);
    }

    /// Region index owning `pfn`.
    pub fn region_index_of(&self, pfn: u64) -> Option<usize> {
        self.regions.iter().position(|r| r.contains_pfn(pfn))
    }

    /// Region owning `pfn`.
    pub fn region_of(&self, pfn: u64) -> Option<&ModuleRegion> {
        self.region_index_of(pfn).map(|i| &self.regions[i])
    }

    /// Module kind owning `pfn`.
    pub fn kind_of(&self, pfn: u64) -> Option<ModuleKind> {
        self.region_of(pfn).map(|r| r.kind)
    }
}

/// Build contiguous regions from `(kind, channel, bytes)` triples.
pub fn regions_from_capacities(caps: &[(ModuleKind, usize, u64)]) -> Vec<ModuleRegion> {
    let mut base = 0;
    caps.iter()
        .map(|&(kind, channel, bytes)| {
            assert_eq!(bytes % PAGE_SIZE, 0, "capacity must be page-aligned");
            let r = ModuleRegion {
                kind,
                channel,
                base_pfn: base,
                frames: bytes / PAGE_SIZE,
            };
            base += r.frames;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::MB;

    fn space() -> FrameSpace {
        FrameSpace::new(regions_from_capacities(&[
            (ModuleKind::Rldram3, 0, MB),
            (ModuleKind::Hbm, 1, 2 * MB),
            (ModuleKind::Lpddr2, 2, MB),
            (ModuleKind::Lpddr2, 3, MB),
        ]))
    }

    #[test]
    fn regions_are_contiguous_and_sized() {
        let s = space();
        assert_eq!(s.total_frames(), 5 * MB / PAGE_SIZE);
        assert_eq!(s.regions()[1].base_pfn, MB / PAGE_SIZE);
    }

    #[test]
    fn preference_order_respected() {
        let mut s = space();
        let (pfn, kind) = s
            .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
            .unwrap();
        assert_eq!(kind, ModuleKind::Rldram3);
        assert!(s.regions()[0].contains_pfn(pfn));
    }

    #[test]
    fn fallback_when_preferred_full() {
        let mut s = space();
        let rl_frames = MB / PAGE_SIZE;
        for _ in 0..rl_frames {
            let (_, k) = s
                .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
                .unwrap();
            assert_eq!(k, ModuleKind::Rldram3);
        }
        assert_eq!(s.free_of_kind(ModuleKind::Rldram3), 0);
        let (_, k) = s
            .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
            .unwrap();
        assert_eq!(k, ModuleKind::Hbm);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, PAGE_SIZE)]));
        assert!(s.alloc_by_preference(&[ModuleKind::Ddr3]).is_some());
        assert!(s.alloc_by_preference(&[ModuleKind::Ddr3]).is_none());
        assert!(s.alloc_by_preference(&[ModuleKind::Hbm]).is_none());
    }

    #[test]
    fn lpddr_channels_stripe_in_chunks() {
        let mut s = space();
        let mut counts = [0u32; 2];
        let mut first_chunk_region = None;
        for n in 0..(2 * STRIPE_CHUNK) {
            let (pfn, k) = s.alloc_by_preference(&[ModuleKind::Lpddr2]).unwrap();
            assert_eq!(k, ModuleKind::Lpddr2);
            let idx = s.region_index_of(pfn).unwrap();
            counts[idx - 2] += 1;
            if n < STRIPE_CHUNK {
                // The whole first chunk stays on one region (color safety).
                let f = *first_chunk_region.get_or_insert(idx);
                assert_eq!(idx, f, "chunk split across regions at frame {n}");
            }
        }
        assert_eq!(
            counts,
            [STRIPE_CHUNK as u32, STRIPE_CHUNK as u32],
            "chunks should alternate across the two LP channels"
        );
    }

    #[test]
    fn free_and_reuse() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, PAGE_SIZE)]));
        let (pfn, _) = s.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap();
        s.free(pfn);
        assert_eq!(s.free_of_kind(ModuleKind::Ddr3), 1);
        let (pfn2, _) = s.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap();
        assert_eq!(pfn, pfn2);
    }

    #[test]
    fn headroom_reports_present_kinds_only() {
        let mut s = space();
        let h = s.headroom();
        // Ddr3 is absent from this machine; the other three kinds appear.
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|&(k, _)| k != ModuleKind::Ddr3));
        let rl_before = h
            .iter()
            .find(|&&(k, _)| k == ModuleKind::Rldram3)
            .unwrap()
            .1;
        s.alloc_by_preference(&[ModuleKind::Rldram3]).unwrap();
        let rl_after = s
            .headroom()
            .iter()
            .find(|&&(k, _)| k == ModuleKind::Rldram3)
            .unwrap()
            .1;
        assert_eq!(rl_after, rl_before - 1);
    }

    #[test]
    fn kind_of_resolves_regions() {
        let s = space();
        assert_eq!(s.kind_of(0), Some(ModuleKind::Rldram3));
        let hbm_pfn = s.regions()[1].base_pfn;
        assert_eq!(s.kind_of(hbm_pfn), Some(ModuleKind::Hbm));
        assert_eq!(s.kind_of(u64::MAX), None);
    }
}
