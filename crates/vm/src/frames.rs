//! Physical frame allocation over heterogeneous memory modules.
//!
//! The OS "maintains the starting, ending, and the next available page number
//! of each memory module" (§IV-D). A [`FrameSpace`] is the set of
//! [`ModuleRegion`]s of one machine configuration; allocation walks a
//! preference list of module kinds and takes the next free frame of the
//! first kind with space.
//!
//! # Occupancy representation
//!
//! Each region's occupancy is a [`TwoLevelBitmap`] — the ground truth for
//! which frames are live — so allocator memory is bounded at
//! `total_frames/8 + total_frames/512` bytes no matter how much alloc/free
//! churn a run produces. (The previous design kept every freed pfn in an
//! unbounded `Vec<u64>` per region, whose worst case at capacity_scale=1 is
//! a multi-million-entry vector per region.)
//!
//! # Ordering-compatibility contract
//!
//! The externally observable allocation *sequence* is part of the simulator's
//! deterministic surface: the seven golden-config digests depend on it. The
//! contract, preserved from the original bump-pointer design:
//!
//! 1. frames are handed out in ascending pfn order within a region
//!    (bump-pointer semantics — the bitmap's lowest-free search degenerates
//!    to exactly this while nothing has been freed);
//! 2. freed frames are reused LIFO, most-recently-freed first, before the
//!    bump frontier advances.
//!
//! LIFO ordering is served by a bounded cache ([`FREE_CACHE`] entries per
//! region) of recently freed pfns; the bitmap stays the ground truth, and a
//! debug assertion verifies cache/bitmap agreement on every reuse. When more
//! than [`FREE_CACHE`] frames of one region are simultaneously free, the
//! overflow is tracked only by the bitmap and comes back lowest-pfn-first
//! once the cache drains — the one (documented) divergence from the old
//! unbounded-LIFO behaviour, unreachable on all committed configurations
//! (golden runs never free; migration runs free slow-module frames that are
//! never reallocated).
//!
//! # Checked preconditions
//!
//! [`FrameSpace::free`] rejects out-of-range, never-allocated, and
//! double-freed pfns: a `debug_assert` fires in debug builds, and release
//! builds log the structured [`FrameError`] and leave the allocator state
//! untouched instead of silently corrupting the free-frame accounting.

use moca_common::addr::PAGE_SIZE;
use moca_common::bitset::TwoLevelBitmap;
use moca_common::ModuleKind;
use serde::{Deserialize, Serialize};

/// One memory module's slice of the physical address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleRegion {
    /// Technology of the module.
    pub kind: ModuleKind,
    /// Index of the channel/controller serving this module.
    pub channel: usize,
    /// First physical frame number of the region.
    pub base_pfn: u64,
    /// Number of frames in the region.
    pub frames: u64,
}

impl ModuleRegion {
    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.frames * PAGE_SIZE
    }

    /// Whether `pfn` belongs to this region.
    pub fn contains_pfn(&self, pfn: u64) -> bool {
        pfn >= self.base_pfn && pfn < self.base_pfn + self.frames
    }
}

/// Why a [`FrameSpace::try_free`] call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreeErrorCause {
    /// The pfn belongs to no region of this machine.
    OutOfRange,
    /// The pfn is inside a region but above its allocation frontier, so it
    /// was never handed out by this allocator.
    NeverAllocated,
    /// The frame is already free: the same pfn was freed twice without an
    /// intervening allocation.
    DoubleFree,
}

impl FreeErrorCause {
    fn describe(self) -> &'static str {
        match self {
            FreeErrorCause::OutOfRange => "pfn outside every module region",
            FreeErrorCause::NeverAllocated => "frame was never allocated",
            FreeErrorCause::DoubleFree => "frame is already free (double free)",
        }
    }
}

/// Structured report for a rejected free, naming the offending pfn and the
/// region/kind it resolved to (when it resolved at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameError {
    /// What precondition failed.
    pub cause: FreeErrorCause,
    /// The offending physical frame number.
    pub pfn: u64,
    /// Region index owning the pfn, when in range.
    pub region: Option<usize>,
    /// Module kind of that region, when in range.
    pub kind: Option<ModuleKind>,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rejected free of pfn {}: {}",
            self.pfn,
            self.cause.describe()
        )?;
        if let (Some(region), Some(kind)) = (self.region, self.kind) {
            write!(f, " (region {region}, {kind})")?;
        }
        Ok(())
    }
}

impl std::error::Error for FrameError {}

/// All physical memory of a machine, partitioned into module regions, with
/// per-region occupancy bitmaps and a bounded LIFO reuse cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameSpace {
    regions: Vec<ModuleRegion>,
    /// Per-region occupancy (bit set = frame allocated). Ground truth.
    occ: Vec<TwoLevelBitmap>,
    /// Per-region high-water mark: offsets below this have been handed out
    /// at least once. Only used to classify free errors and check
    /// invariants — allocation itself runs off the bitmap.
    frontier: Vec<u64>,
    /// Per-region LIFO cache of recently freed pfns, capped at
    /// [`FREE_CACHE`]; overflow is tracked by the bitmap alone.
    free_cache: Vec<Vec<u64>>,
    /// Striping state per module kind (indexed like [`ModuleKind::ALL`]):
    /// current region and frames left in the chunk.
    stripe_region: [usize; 4],
    stripe_left: [u64; 4],
}

/// Frames allocated from one region before striping rotates to the next
/// region of the same kind. Must be a multiple of the L2 page-color period
/// (8 pages for a 512-set, 64 B-line cache): per-page alternation between
/// two regions whose bases share colors would alias virtually-adjacent
/// pages onto the same cache colors and halve the effective cache.
pub const STRIPE_CHUNK: u64 = 16;

/// Per-region capacity of the LIFO reuse cache. Large enough that every
/// committed scenario (migration frees at most [`FREE_CACHE`] frames per
/// epoch before reallocation) sees exact unbounded-LIFO behaviour; small
/// enough that allocator memory stays bitmap-bounded.
pub const FREE_CACHE: usize = 64;

fn kind_index(kind: ModuleKind) -> usize {
    ModuleKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

impl FrameSpace {
    /// Build a frame space from contiguous module regions. Regions must be
    /// laid out back-to-back starting at frame 0 (the sim derives channel
    /// address ranges from the same layout).
    pub fn new(regions: Vec<ModuleRegion>) -> FrameSpace {
        assert!(!regions.is_empty());
        let mut expected = 0;
        for r in &regions {
            assert_eq!(r.base_pfn, expected, "regions must be contiguous");
            assert!(r.frames > 0, "empty region");
            expected += r.frames;
        }
        let occ = regions
            .iter()
            .map(|r| TwoLevelBitmap::new(r.frames))
            .collect();
        let n = regions.len();
        FrameSpace {
            regions,
            occ,
            frontier: vec![0; n],
            free_cache: vec![Vec::new(); n],
            stripe_region: [usize::MAX; 4],
            stripe_left: [0; 4],
        }
    }

    /// The module regions.
    pub fn regions(&self) -> &[ModuleRegion] {
        &self.regions
    }

    /// Total frames across all regions.
    pub fn total_frames(&self) -> u64 {
        self.regions.iter().map(|r| r.frames).sum()
    }

    /// Free frames remaining in region `idx`.
    pub fn free_in_region(&self, idx: usize) -> u64 {
        self.occ[idx].free_count()
    }

    /// Free frames remaining across all regions of `kind`.
    pub fn free_of_kind(&self, kind: ModuleKind) -> u64 {
        (0..self.regions.len())
            .filter(|&i| self.regions[i].kind == kind)
            .map(|i| self.free_in_region(i))
            .sum()
    }

    /// Free-frame headroom per module kind actually present in the machine,
    /// in [`ModuleKind::ALL`] order. Feeds telemetry's frame-pool gauges.
    pub fn headroom(&self) -> Vec<(ModuleKind, u64)> {
        ModuleKind::ALL
            .iter()
            .filter(|&&k| self.regions.iter().any(|r| r.kind == k))
            .map(|&k| (k, self.free_of_kind(k)))
            .collect()
    }

    /// Allocate one frame from region `idx`, if it has space. Reuses the
    /// most recently freed frame first (LIFO), then the lowest free frame
    /// in the bitmap — which is the bump frontier while nothing has been
    /// freed, and the lowest spilled frame otherwise.
    pub fn alloc_in_region(&mut self, idx: usize) -> Option<u64> {
        let base = self.regions[idx].base_pfn;
        while let Some(pfn) = self.free_cache[idx].pop() {
            let acquired = self.occ[idx].acquire(pfn - base);
            debug_assert!(
                acquired,
                "free-cache entry pfn {pfn} of region {idx} ({}) already occupied in the bitmap",
                self.regions[idx].kind
            );
            if acquired {
                return Some(pfn);
            }
            // Release builds: the bitmap is ground truth — drop the stale
            // cache entry and keep looking.
        }
        self.occ[idx].acquire_lowest().map(|off| {
            if off >= self.frontier[idx] {
                self.frontier[idx] = off + 1;
            }
            base + off
        })
    }

    /// Allocate one frame following a module-kind preference list: the first
    /// kind with a free frame wins. Kinds not present in the machine are
    /// skipped. Returns the frame and the kind it came from.
    ///
    /// When a kind has several regions (the paper's two LPDDR2 channels),
    /// allocations stripe across them in [`STRIPE_CHUNK`]-frame chunks —
    /// spreading one class's pages over both controllers for bandwidth
    /// while keeping each span of virtually-adjacent pages covering all
    /// physical page colors (see [`STRIPE_CHUNK`]).
    pub fn alloc_by_preference(&mut self, prefs: &[ModuleKind]) -> Option<(u64, ModuleKind)> {
        for &kind in prefs {
            let ki = kind_index(kind);
            // Continue the current chunk if it has room.
            let cur = self.stripe_region[ki];
            if self.stripe_left[ki] > 0
                && cur < self.regions.len()
                && self.regions[cur].kind == kind
                && self.free_in_region(cur) > 0
            {
                self.stripe_left[ki] -= 1;
                let pfn = self.alloc_in_region(cur).expect("region had free frames");
                return Some((pfn, kind));
            }
            // Start a new chunk on the region of this kind with most space.
            let best = (0..self.regions.len())
                .filter(|&i| self.regions[i].kind == kind && self.free_in_region(i) > 0)
                .max_by_key(|&i| self.free_in_region(i));
            if let Some(i) = best {
                self.stripe_region[ki] = i;
                self.stripe_left[ki] = STRIPE_CHUNK - 1;
                let pfn = self.alloc_in_region(i).expect("region had free frames");
                return Some((pfn, kind));
            }
        }
        None
    }

    /// Return a frame to its region, rejecting invalid frees.
    ///
    /// On an out-of-range, never-allocated, or double-freed pfn this
    /// returns the structured [`FrameError`] and changes nothing.
    pub fn try_free(&mut self, pfn: u64) -> Result<(), FrameError> {
        let Some(idx) = self.region_index_of(pfn) else {
            return Err(FrameError {
                cause: FreeErrorCause::OutOfRange,
                pfn,
                region: None,
                kind: None,
            });
        };
        let reject = |cause| FrameError {
            cause,
            pfn,
            region: Some(idx),
            kind: Some(self.regions[idx].kind),
        };
        let off = pfn - self.regions[idx].base_pfn;
        if off >= self.frontier[idx] {
            return Err(reject(FreeErrorCause::NeverAllocated));
        }
        if !self.occ[idx].release(off) {
            return Err(reject(FreeErrorCause::DoubleFree));
        }
        if self.free_cache[idx].len() < FREE_CACHE {
            self.free_cache[idx].push(pfn);
        }
        // else: spilled — the bitmap alone remembers it, and it will come
        // back lowest-first once the cache drains.
        Ok(())
    }

    /// Return a frame to its region's free pool.
    ///
    /// Precondition: `pfn` was previously returned by an alloc call and is
    /// not currently free. Violations are a caller bug: debug builds panic
    /// via `debug_assert`, release builds log the [`FrameError`] and leave
    /// the allocator untouched (use [`FrameSpace::try_free`] to handle the
    /// error instead).
    pub fn free(&mut self, pfn: u64) {
        if let Err(e) = self.try_free(pfn) {
            debug_assert!(false, "{e}");
            eprintln!("moca-vm: {e}");
        }
    }

    /// Region index owning `pfn`.
    pub fn region_index_of(&self, pfn: u64) -> Option<usize> {
        self.regions.iter().position(|r| r.contains_pfn(pfn))
    }

    /// Region owning `pfn`.
    pub fn region_of(&self, pfn: u64) -> Option<&ModuleRegion> {
        self.region_index_of(pfn).map(|i| &self.regions[i])
    }

    /// Module kind owning `pfn`.
    pub fn kind_of(&self, pfn: u64) -> Option<ModuleKind> {
        self.region_of(pfn).map(|r| r.kind)
    }

    /// Heap bytes held by the allocator's bookkeeping (bitmaps, reuse
    /// caches, region table). Bounded by `total_frames/8` for the bit level
    /// plus `total_frames/512` for the summaries plus `FREE_CACHE`
    /// pfns per region — the number the scale=1 smoke test budgets against.
    pub fn alloc_bytes(&self) -> usize {
        let regions = self.regions.capacity() * std::mem::size_of::<ModuleRegion>();
        let occ: usize = self.occ.iter().map(|b| b.heap_bytes()).sum();
        let cache: usize = self
            .free_cache
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<u64>())
            .sum();
        let frontier = self.frontier.capacity() * std::mem::size_of::<u64>();
        regions + occ + cache + frontier
    }

    /// Full O(total frames / 64) validation of the allocator's structural
    /// invariants. Debug/test hook; returns the violated invariant by name.
    pub fn check_invariants(&self) -> Result<(), String> {
        for idx in 0..self.regions.len() {
            let r = &self.regions[idx];
            let occ = &self.occ[idx];
            occ.check_consistency()
                .map_err(|e| format!("region {idx} ({}): bitmap: {e}", r.kind))?;
            if occ.len() != r.frames {
                return Err(format!(
                    "region {idx} ({}): bitmap covers {} frames, region has {}",
                    r.kind,
                    occ.len(),
                    r.frames
                ));
            }
            if self.frontier[idx] > r.frames {
                return Err(format!(
                    "region {idx} ({}): frontier {} beyond region size {}",
                    r.kind, self.frontier[idx], r.frames
                ));
            }
            // No frame above the frontier may be occupied.
            if occ.used_count() > self.frontier[idx] {
                return Err(format!(
                    "region {idx} ({}): {} frames occupied but frontier is {}",
                    r.kind,
                    occ.used_count(),
                    self.frontier[idx]
                ));
            }
            for off in self.frontier[idx]..r.frames {
                if occ.get(off) {
                    return Err(format!(
                        "region {idx} ({}): frame offset {off} occupied above frontier {}",
                        r.kind, self.frontier[idx]
                    ));
                }
            }
            let cache = &self.free_cache[idx];
            if cache.len() > FREE_CACHE {
                return Err(format!(
                    "region {idx} ({}): free cache holds {} entries, cap is {FREE_CACHE}",
                    r.kind,
                    cache.len()
                ));
            }
            let mut seen = std::collections::BTreeSet::new();
            for &pfn in cache {
                if !r.contains_pfn(pfn) {
                    return Err(format!(
                        "region {idx} ({}): cached pfn {pfn} outside region",
                        r.kind
                    ));
                }
                let off = pfn - r.base_pfn;
                if off >= self.frontier[idx] {
                    return Err(format!(
                        "region {idx} ({}): cached pfn {pfn} above frontier {}",
                        r.kind, self.frontier[idx]
                    ));
                }
                if occ.get(off) {
                    return Err(format!(
                        "region {idx} ({}): cached pfn {pfn} marked occupied in the bitmap",
                        r.kind
                    ));
                }
                if !seen.insert(pfn) {
                    return Err(format!(
                        "region {idx} ({}): cached pfn {pfn} duplicated",
                        r.kind
                    ));
                }
            }
        }
        for ki in 0..4 {
            let cur = self.stripe_region[ki];
            if cur != usize::MAX {
                if cur >= self.regions.len() {
                    return Err(format!(
                        "stripe state {ki}: region index {cur} out of range"
                    ));
                }
                if self.regions[cur].kind != ModuleKind::ALL[ki] {
                    return Err(format!(
                        "stripe state {ki}: region {cur} is {}, expected {}",
                        self.regions[cur].kind,
                        ModuleKind::ALL[ki]
                    ));
                }
            }
            if self.stripe_left[ki] >= STRIPE_CHUNK {
                return Err(format!(
                    "stripe state {ki}: {} frames left exceeds chunk {STRIPE_CHUNK}",
                    self.stripe_left[ki]
                ));
            }
        }
        Ok(())
    }
}

/// Build contiguous regions from `(kind, channel, bytes)` triples.
pub fn regions_from_capacities(caps: &[(ModuleKind, usize, u64)]) -> Vec<ModuleRegion> {
    let mut base = 0;
    caps.iter()
        .map(|&(kind, channel, bytes)| {
            assert_eq!(bytes % PAGE_SIZE, 0, "capacity must be page-aligned");
            let r = ModuleRegion {
                kind,
                channel,
                base_pfn: base,
                frames: bytes / PAGE_SIZE,
            };
            base += r.frames;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::MB;

    fn space() -> FrameSpace {
        FrameSpace::new(regions_from_capacities(&[
            (ModuleKind::Rldram3, 0, MB),
            (ModuleKind::Hbm, 1, 2 * MB),
            (ModuleKind::Lpddr2, 2, MB),
            (ModuleKind::Lpddr2, 3, MB),
        ]))
    }

    #[test]
    fn regions_are_contiguous_and_sized() {
        let s = space();
        assert_eq!(s.total_frames(), 5 * MB / PAGE_SIZE);
        assert_eq!(s.regions()[1].base_pfn, MB / PAGE_SIZE);
        s.check_invariants().unwrap();
    }

    #[test]
    fn preference_order_respected() {
        let mut s = space();
        let (pfn, kind) = s
            .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
            .unwrap();
        assert_eq!(kind, ModuleKind::Rldram3);
        assert!(s.regions()[0].contains_pfn(pfn));
    }

    #[test]
    fn fallback_when_preferred_full() {
        let mut s = space();
        let rl_frames = MB / PAGE_SIZE;
        for _ in 0..rl_frames {
            let (_, k) = s
                .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
                .unwrap();
            assert_eq!(k, ModuleKind::Rldram3);
        }
        assert_eq!(s.free_of_kind(ModuleKind::Rldram3), 0);
        let (_, k) = s
            .alloc_by_preference(&[ModuleKind::Rldram3, ModuleKind::Hbm])
            .unwrap();
        assert_eq!(k, ModuleKind::Hbm);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, PAGE_SIZE)]));
        assert!(s.alloc_by_preference(&[ModuleKind::Ddr3]).is_some());
        assert!(s.alloc_by_preference(&[ModuleKind::Ddr3]).is_none());
        assert!(s.alloc_by_preference(&[ModuleKind::Hbm]).is_none());
    }

    #[test]
    fn lpddr_channels_stripe_in_chunks() {
        let mut s = space();
        let mut counts = [0u32; 2];
        let mut first_chunk_region = None;
        for n in 0..(2 * STRIPE_CHUNK) {
            let (pfn, k) = s.alloc_by_preference(&[ModuleKind::Lpddr2]).unwrap();
            assert_eq!(k, ModuleKind::Lpddr2);
            let idx = s.region_index_of(pfn).unwrap();
            counts[idx - 2] += 1;
            if n < STRIPE_CHUNK {
                // The whole first chunk stays on one region (color safety).
                let f = *first_chunk_region.get_or_insert(idx);
                assert_eq!(idx, f, "chunk split across regions at frame {n}");
            }
        }
        assert_eq!(
            counts,
            [STRIPE_CHUNK as u32, STRIPE_CHUNK as u32],
            "chunks should alternate across the two LP channels"
        );
    }

    #[test]
    fn free_and_reuse() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, PAGE_SIZE)]));
        let (pfn, _) = s.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap();
        s.free(pfn);
        assert_eq!(s.free_of_kind(ModuleKind::Ddr3), 1);
        let (pfn2, _) = s.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap();
        assert_eq!(pfn, pfn2);
    }

    #[test]
    fn freed_frames_reuse_lifo() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, MB)]));
        let pfns: Vec<u64> = (0..8)
            .map(|_| s.alloc_by_preference(&[ModuleKind::Ddr3]).unwrap().0)
            .collect();
        for &p in &pfns[2..6] {
            s.free(p);
        }
        // Most recently freed comes back first.
        for &p in pfns[2..6].iter().rev() {
            assert_eq!(s.alloc_in_region(0), Some(p));
        }
        // Cache drained: next allocation resumes the bump frontier.
        assert_eq!(s.alloc_in_region(0), Some(pfns[7] + 1));
        s.check_invariants().unwrap();
    }

    #[test]
    fn cache_overflow_spills_to_bitmap_lowest_first() {
        let mut s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, MB)]));
        let n = FREE_CACHE as u64 + 3;
        let pfns: Vec<u64> = (0..n).map(|_| s.alloc_in_region(0).unwrap()).collect();
        for &p in &pfns {
            s.free(p);
        }
        s.check_invariants().unwrap();
        assert_eq!(s.free_in_region(0), MB / PAGE_SIZE);
        // The first FREE_CACHE frees are served LIFO from the cache...
        for &p in pfns[..FREE_CACHE].iter().rev() {
            assert_eq!(s.alloc_in_region(0), Some(p));
        }
        // ...then the three spilled frames come back lowest-pfn-first.
        assert_eq!(s.alloc_in_region(0), Some(pfns[FREE_CACHE]));
        assert_eq!(s.alloc_in_region(0), Some(pfns[FREE_CACHE + 1]));
        assert_eq!(s.alloc_in_region(0), Some(pfns[FREE_CACHE + 2]));
        s.check_invariants().unwrap();
    }

    #[test]
    fn try_free_classifies_invalid_frees() {
        let mut s = space();
        let (pfn, _) = s.alloc_by_preference(&[ModuleKind::Hbm]).unwrap();

        // Out of range: beyond every region.
        let e = s.try_free(s.total_frames() + 10).unwrap_err();
        assert_eq!(e.cause, FreeErrorCause::OutOfRange);
        assert_eq!(e.region, None);

        // Never allocated: in range, above the frontier.
        let never = s.regions()[1].base_pfn + 100;
        let e = s.try_free(never).unwrap_err();
        assert_eq!(e.cause, FreeErrorCause::NeverAllocated);
        assert_eq!(e.region, Some(1));
        assert_eq!(e.kind, Some(ModuleKind::Hbm));

        // Double free.
        s.try_free(pfn).unwrap();
        let e = s.try_free(pfn).unwrap_err();
        assert_eq!(e.cause, FreeErrorCause::DoubleFree);
        assert_eq!(e.kind, Some(ModuleKind::Hbm));

        // Nothing above corrupted the accounting.
        s.check_invariants().unwrap();
        assert_eq!(s.free_of_kind(ModuleKind::Hbm), 2 * MB / PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    #[cfg(debug_assertions)]
    fn free_never_allocated_panics_in_debug() {
        let mut s = space();
        s.free(5); // in the RLDRAM region, but nothing allocated yet
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut s = space();
        let (pfn, _) = s.alloc_by_preference(&[ModuleKind::Rldram3]).unwrap();
        s.free(pfn);
        s.free(pfn);
    }

    #[test]
    fn alloc_bytes_is_bitmap_bounded() {
        let s = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, 512 * MB)]));
        let frames = s.total_frames();
        // bits + summary + fixed-size bookkeeping, with slack for Vec
        // capacity rounding: well under one byte per 4 frames.
        assert!((s.alloc_bytes() as u64) < frames / 4 + 4096);
    }

    #[test]
    fn headroom_reports_present_kinds_only() {
        let mut s = space();
        let h = s.headroom();
        // Ddr3 is absent from this machine; the other three kinds appear.
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|&(k, _)| k != ModuleKind::Ddr3));
        let rl_before = h
            .iter()
            .find(|&&(k, _)| k == ModuleKind::Rldram3)
            .unwrap()
            .1;
        s.alloc_by_preference(&[ModuleKind::Rldram3]).unwrap();
        let rl_after = s
            .headroom()
            .iter()
            .find(|&&(k, _)| k == ModuleKind::Rldram3)
            .unwrap()
            .1;
        assert_eq!(rl_after, rl_before - 1);
    }

    #[test]
    fn kind_of_resolves_regions() {
        let s = space();
        assert_eq!(s.kind_of(0), Some(ModuleKind::Rldram3));
        let hbm_pfn = s.regions()[1].base_pfn;
        assert_eq!(s.kind_of(hbm_pfn), Some(ModuleKind::Hbm));
        assert_eq!(s.kind_of(u64::MAX), None);
    }
}
