//! Translation lookaside buffer.

use serde::{Deserialize, Serialize};

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (page walk required).
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        moca_common::stats::safe_div(self.misses as f64, (self.hits + self.misses) as f64)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: u64,
    pfn: u64,
    used: u64,
}

/// Fully-associative LRU TLB. Capacities are small (64 entries), so lookups
/// are a linear scan over a dense array — faster in practice than a hash map
/// at this size and trivially correct.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    /// Index of the most recently hit/inserted entry, checked before the
    /// scan. Every translation (load, store, ifetch) goes through `lookup`,
    /// and consecutive accesses overwhelmingly touch the same page, so this
    /// collapses the common case to one comparison. Purely an access-order
    /// shortcut: hits, misses, and evictions are identical to the plain scan
    /// (vpns in the table are unique).
    mru: usize,
    stats: TlbStats,
}

impl Tlb {
    /// TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0);
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            mru: 0,
            stats: TlbStats::default(),
        }
    }

    /// Look up a virtual page number, updating LRU and statistics.
    pub fn lookup(&mut self, vpn: u64) -> Option<u64> {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(self.mru) {
            if e.vpn == vpn {
                e.used = self.clock;
                self.stats.hits += 1;
                return Some(e.pfn);
            }
        }
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.vpn == vpn {
                e.used = self.clock;
                self.mru = i;
                self.stats.hits += 1;
                return Some(e.pfn);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert a translation (after a page walk), evicting the LRU entry if
    /// full. Replaces any stale entry for the same vpn.
    pub fn insert(&mut self, vpn: u64, pfn: u64) {
        self.clock += 1;
        if let Some((i, e)) = self
            .entries
            .iter_mut()
            .enumerate()
            .find(|(_, e)| e.vpn == vpn)
        {
            e.pfn = pfn;
            e.used = self.clock;
            self.mru = i;
            return;
        }
        let entry = Entry {
            vpn,
            pfn,
            used: self.clock,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            self.mru = self.entries.len() - 1;
        } else {
            let (i, lru) = self
                .entries
                .iter_mut()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .expect("non-empty");
            *lru = entry;
            self.mru = i;
        }
    }

    /// Drop all entries (context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.mru = 0;
    }

    /// Statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(1), None);
        t.insert(1, 100);
        assert_eq!(t.lookup(1), Some(100));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.lookup(1); // 2 becomes LRU
        t.insert(3, 30);
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.lookup(1), Some(10));
        assert_eq!(t.lookup(3), Some(30));
    }

    #[test]
    fn reinsert_updates_mapping() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.insert(1, 11);
        assert_eq!(t.lookup(1), Some(11));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.flush();
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn miss_rate_computed() {
        let mut t = Tlb::new(2);
        t.lookup(5);
        t.insert(5, 1);
        t.lookup(5);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
