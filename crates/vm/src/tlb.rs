//! Translation lookaside buffer.

use serde::{Deserialize, Serialize};

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (page walk required).
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        moca_common::stats::safe_div(self.misses as f64, (self.hits + self.misses) as f64)
    }
}

/// Fully-associative LRU TLB. Capacities are small (64 entries), so lookups
/// are a linear scan — but laid out struct-of-arrays so the tag scan runs
/// over a dense `u64` array the compiler can vectorize, instead of striding
/// over (vpn, pfn, used) triples. Faster in practice than a hash map at this
/// size and trivially correct.
#[derive(Debug, Clone)]
pub struct Tlb {
    vpns: Vec<u64>,
    pfns: Vec<u64>,
    used: Vec<u64>,
    capacity: usize,
    clock: u64,
    /// Index of the most recently hit/inserted entry, checked before the
    /// scan. Every translation (load, store, ifetch) goes through `lookup`,
    /// and consecutive accesses overwhelmingly touch the same page, so this
    /// collapses the common case to one comparison. Purely an access-order
    /// shortcut: hits, misses, and evictions are identical to the plain scan
    /// (vpns in the table are unique).
    mru: usize,
    stats: TlbStats,
}

impl Tlb {
    /// TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0);
        Tlb {
            vpns: Vec::with_capacity(capacity),
            pfns: Vec::with_capacity(capacity),
            used: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            mru: 0,
            stats: TlbStats::default(),
        }
    }

    /// Look up a virtual page number, updating LRU and statistics.
    pub fn lookup(&mut self, vpn: u64) -> Option<u64> {
        self.clock += 1;
        if self.vpns.get(self.mru) == Some(&vpn) {
            self.used[self.mru] = self.clock;
            self.stats.hits += 1;
            return Some(self.pfns[self.mru]);
        }
        if let Some(i) = self.vpns.iter().position(|&v| v == vpn) {
            self.used[i] = self.clock;
            self.mru = i;
            self.stats.hits += 1;
            return Some(self.pfns[i]);
        }
        self.stats.misses += 1;
        None
    }

    /// Insert a translation (after a page walk), evicting the LRU entry if
    /// full. Replaces any stale entry for the same vpn.
    pub fn insert(&mut self, vpn: u64, pfn: u64) {
        self.clock += 1;
        if let Some(i) = self.vpns.iter().position(|&v| v == vpn) {
            self.pfns[i] = pfn;
            self.used[i] = self.clock;
            self.mru = i;
            return;
        }
        if self.vpns.len() < self.capacity {
            self.vpns.push(vpn);
            self.pfns.push(pfn);
            self.used.push(self.clock);
            self.mru = self.vpns.len() - 1;
        } else {
            let mut i = 0;
            for (j, &u) in self.used.iter().enumerate() {
                if u < self.used[i] {
                    i = j;
                }
            }
            self.vpns[i] = vpn;
            self.pfns[i] = pfn;
            self.used[i] = self.clock;
            self.mru = i;
        }
    }

    /// Drop all entries (context switch).
    pub fn flush(&mut self) {
        self.vpns.clear();
        self.pfns.clear();
        self.used.clear();
        self.mru = 0;
    }

    /// Statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(1), None);
        t.insert(1, 100);
        assert_eq!(t.lookup(1), Some(100));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.lookup(1); // 2 becomes LRU
        t.insert(3, 30);
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.lookup(1), Some(10));
        assert_eq!(t.lookup(3), Some(30));
    }

    #[test]
    fn reinsert_updates_mapping() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.insert(1, 11);
        assert_eq!(t.lookup(1), Some(11));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(2);
        t.insert(1, 10);
        t.flush();
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn miss_rate_computed() {
        let mut t = Tlb::new(2);
        t.lookup(5);
        t.insert(5, 1);
        t.lookup(5);
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
