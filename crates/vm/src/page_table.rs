//! Per-process page table.

use moca_common::addr::{PhysAddr, VirtAddr};
use moca_common::DetMap;

/// A flat virtual→physical page map (the simulator's stand-in for the
/// multi-level x86 table; the page-walk *cost* is modelled by the TLB-miss
/// penalty in the core).
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    map: DetMap<u64, u64>,
}

impl PageTable {
    /// Empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Translate a virtual page number. `None` ⇒ page fault.
    #[inline]
    pub fn translate_vpn(&self, vpn: u64) -> Option<u64> {
        self.map.get(&vpn).copied()
    }

    /// Translate a full virtual address, preserving the page offset.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.translate_vpn(va.vpn())
            .map(|pfn| PhysAddr::from_parts(pfn, va.page_offset()))
    }

    /// Install a mapping. Panics on double-mapping a vpn (a bug in the
    /// fault handler).
    pub fn map(&mut self, vpn: u64, pfn: u64) {
        let prev = self.map.insert(vpn, pfn);
        assert!(prev.is_none(), "vpn {vpn:#x} double-mapped");
    }

    /// Remove a mapping, returning the frame it pointed to.
    pub fn unmap(&mut self, vpn: u64) -> Option<u64> {
        self.map.remove(&vpn)
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(vpn, pfn)` pairs (used by placement statistics).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::addr::PAGE_SIZE;

    #[test]
    fn translate_preserves_offset() {
        let mut pt = PageTable::new();
        pt.map(0x60000, 0x42);
        let va = VirtAddr(0x60000 * PAGE_SIZE + 0x123);
        assert_eq!(pt.translate(va), Some(PhysAddr(0x42 * PAGE_SIZE + 0x123)));
    }

    #[test]
    fn unmapped_is_fault() {
        let pt = PageTable::new();
        assert_eq!(pt.translate(VirtAddr(0x1000)), None);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(1, 2);
        pt.map(1, 3);
    }

    #[test]
    fn unmap_then_remap() {
        let mut pt = PageTable::new();
        pt.map(1, 2);
        assert_eq!(pt.unmap(1), Some(2));
        pt.map(1, 3);
        assert_eq!(pt.translate_vpn(1), Some(3));
        assert_eq!(pt.mapped_pages(), 1);
    }
}
