//! Per-process page table.

use moca_common::addr::{PhysAddr, VirtAddr};
use moca_common::units::narrow_usize;

/// Pages per radix chunk (a 4 KiB chunk of 8-byte entries).
const CHUNK: usize = 512;

/// Split a vpn into (chunk index, offset within chunk).
#[inline]
fn split(vpn: u64) -> (usize, usize) {
    let vpn = narrow_usize(vpn);
    (vpn / CHUNK, vpn % CHUNK)
}

/// Sentinel for "not mapped" (frame numbers are derived from physical
/// capacities many orders of magnitude below this).
const UNMAPPED: u64 = u64::MAX;

/// A flat virtual→physical page map (the simulator's stand-in for the
/// multi-level x86 table; the page-walk *cost* is modelled by the TLB-miss
/// penalty in the core).
///
/// Translation is the hottest VM operation — every TLB miss lands here —
/// so the table is a two-level dense radix over the VPN rather than an
/// ordered map: chunk `vpn / 512` is a lazily allocated array indexed by
/// `vpn % 512`. Lookups are two dereferences with no comparisons, and
/// [`PageTable::iter`] walks chunks in index order so observable iteration
/// remains ascending-by-vpn exactly as with the previous `DetMap`.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    chunks: Vec<Option<Box<[u64; CHUNK]>>>,
    mapped: usize,
}

impl PageTable {
    /// Empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Translate a virtual page number. `None` ⇒ page fault.
    #[inline]
    pub fn translate_vpn(&self, vpn: u64) -> Option<u64> {
        let (ci, off) = split(vpn);
        let chunk = self.chunks.get(ci)?.as_ref()?;
        match chunk[off] {
            UNMAPPED => None,
            pfn => Some(pfn),
        }
    }

    /// Translate a full virtual address, preserving the page offset.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.translate_vpn(va.vpn())
            .map(|pfn| PhysAddr::from_parts(pfn, va.page_offset()))
    }

    /// Install a mapping. Panics on double-mapping a vpn (a bug in the
    /// fault handler).
    pub fn map(&mut self, vpn: u64, pfn: u64) {
        assert!(
            pfn != UNMAPPED,
            "pfn {pfn:#x} collides with the unmapped sentinel"
        );
        let (ci, off) = split(vpn);
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        let chunk = self.chunks[ci].get_or_insert_with(|| Box::new([UNMAPPED; CHUNK]));
        let entry = &mut chunk[off];
        assert!(*entry == UNMAPPED, "vpn {vpn:#x} double-mapped");
        *entry = pfn;
        self.mapped += 1;
    }

    /// Remove a mapping, returning the frame it pointed to.
    pub fn unmap(&mut self, vpn: u64) -> Option<u64> {
        let (ci, off) = split(vpn);
        let chunk = self.chunks.get_mut(ci)?.as_mut()?;
        let entry = &mut chunk[off];
        match *entry {
            UNMAPPED => None,
            pfn => {
                *entry = UNMAPPED;
                self.mapped -= 1;
                Some(pfn)
            }
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Iterate over `(vpn, pfn)` pairs in ascending vpn order (used by
    /// placement statistics).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| c.as_ref().map(|c| (ci, c)))
            .flat_map(|(ci, chunk)| {
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &pfn)| pfn != UNMAPPED)
                    .map(move |(off, &pfn)| ((ci * CHUNK + off) as u64, pfn))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::addr::PAGE_SIZE;

    #[test]
    fn translate_preserves_offset() {
        let mut pt = PageTable::new();
        pt.map(0x60000, 0x42);
        let va = VirtAddr(0x60000 * PAGE_SIZE + 0x123);
        assert_eq!(pt.translate(va), Some(PhysAddr(0x42 * PAGE_SIZE + 0x123)));
    }

    #[test]
    fn unmapped_is_fault() {
        let pt = PageTable::new();
        assert_eq!(pt.translate(VirtAddr(0x1000)), None);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(1, 2);
        pt.map(1, 3);
    }

    #[test]
    fn unmap_then_remap() {
        let mut pt = PageTable::new();
        pt.map(1, 2);
        assert_eq!(pt.unmap(1), Some(2));
        pt.map(1, 3);
        assert_eq!(pt.translate_vpn(1), Some(3));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn pfn_zero_is_a_valid_mapping() {
        let mut pt = PageTable::new();
        pt.map(0x7000, 0);
        assert_eq!(pt.translate_vpn(0x7000), Some(0));
        assert_eq!(pt.unmap(0x7000), Some(0));
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn iter_ascends_across_chunks() {
        let mut pt = PageTable::new();
        // Deliberately map out of order, across distinct chunks.
        pt.map(0x60000, 7);
        pt.map(0x400, 1);
        pt.map(0x401, 2);
        pt.map(0x10000, 3);
        let got: Vec<(u64, u64)> = pt.iter().collect();
        assert_eq!(
            got,
            vec![(0x400, 1), (0x401, 2), (0x10000, 3), (0x60000, 7)]
        );
        assert_eq!(pt.mapped_pages(), 4);
    }
}
