//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace previously used rayon for its two fan-out sites (profiling
//! the app suite, evaluating figure configurations). Those are coarse-grained
//! jobs — a handful of multi-second simulations — so a work-stealing pool is
//! overkill: a shared atomic work index over scoped threads gives the same
//! wall-clock win with no dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `available_parallelism` worker threads,
/// preserving input order in the result.
///
/// `f` runs on borrowed items; panics in workers propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // moca-lint: allow(wall-clock): host-side fan-out helper; simulated state never crosses threads
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // moca-lint: allow(wall-clock): host-side fan-out helper; simulated state never crosses threads
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("parallel_map: worker left a slot empty")
        })
        .collect()
}

/// Map `f` over owned `items` in parallel, preserving input order.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let wrapped: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    parallel_map(&wrapped, |slot| {
        let item = slot
            .lock()
            .unwrap()
            .take()
            .expect("parallel_map_owned: item taken twice");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u64], |x| *x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn owned_variant_moves_items() {
        let items = vec!["a".to_string(), "b".to_string()];
        let out = parallel_map_owned(items, |s| s + "!");
        assert_eq!(out, vec!["a!".to_string(), "b!".to_string()]);
    }
}
