//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace previously used rayon for its two fan-out sites (profiling
//! the app suite, evaluating figure configurations). Those are coarse-grained
//! jobs — a handful of multi-second simulations — so a work-stealing pool is
//! overkill: a shared atomic work index over scoped threads gives the same
//! wall-clock win with no dependencies.
//!
//! Worker count resolution (first match wins):
//! 1. an explicit count via [`parallel_map_with`]
//! 2. the `MOCA_JOBS` environment variable (a positive integer)
//! 3. `std::thread::available_parallelism()`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve the worker-thread count: `explicit` if given, else the
/// `MOCA_JOBS` environment variable, else `available_parallelism`.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("MOCA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid MOCA_JOBS={v:?} (want a positive integer)");
    }
    // moca-lint: allow(wall-clock): host-side fan-out helper; simulated state never crosses threads
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`resolve_jobs`]`(None)` worker threads,
/// preserving input order in the result.
///
/// `f` runs on borrowed items; panics in workers propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(None, items, f)
}

/// [`parallel_map`] with an explicit worker count (`None` ⇒ resolve from
/// `MOCA_JOBS` / `available_parallelism`).
///
/// Each worker appends `(index, result)` pairs to its own private buffer —
/// no cross-thread locking on the result path — and the buffers are
/// stitched back into input order after the scope joins.
pub fn parallel_map_with<T, R, F>(jobs: Option<usize>, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_jobs(jobs).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<(usize, R)>> = Vec::new();
    // moca-lint: allow(wall-clock): host-side fan-out helper; simulated state never crosses threads
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            buffers.push(h.join().expect("parallel_map: worker panicked"));
        }
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "parallel_map: index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("parallel_map: worker left a slot empty"))
        .collect()
}

/// Map `f` over owned `items` in parallel, preserving input order.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let wrapped: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    parallel_map(&wrapped, |slot| {
        let item = slot
            .lock()
            .unwrap()
            .take()
            .expect("parallel_map_owned: item taken twice");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(&[] as &[u64], |x| *x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn owned_variant_moves_items() {
        let items = vec!["a".to_string(), "b".to_string()];
        let out = parallel_map_owned(items, |s| s + "!");
        assert_eq!(out, vec!["a!".to_string(), "b!".to_string()]);
    }

    #[test]
    fn explicit_jobs_counts_respected() {
        let items: Vec<u64> = (0..37).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = parallel_map_with(Some(jobs), &items, |x| x + 1);
            assert_eq!(out, (1..38).collect::<Vec<_>>());
        }
    }

    #[test]
    fn resolve_jobs_prefers_explicit() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1); // clamped
        assert!(resolve_jobs(None) >= 1);
    }
}
