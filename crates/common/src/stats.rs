//! Small statistics accumulators used across the simulator.

use serde::{Deserialize, Serialize};

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Running mean / min / max over a stream of samples (no allocation).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Ratio helper: `num / den`, or 0 when the denominator is zero.
#[inline]
pub fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stat_basic() {
        let mut s = RunningStat::default();
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn running_stat_empty_is_zero() {
        let s = RunningStat::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = RunningStat::default();
        let mut b = RunningStat::default();
        a.record(1.0);
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn safe_div_handles_zero() {
        assert_eq!(safe_div(1.0, 0.0), 0.0);
        assert_eq!(safe_div(6.0, 3.0), 2.0);
    }
}
