//! Identifiers and the paper's three-way object classification.

use serde::{Deserialize, Serialize};

/// A profiled/classified heap memory object, unique within one application.
///
/// Object identity is established by the naming convention of §III-A
/// (allocation-site return address + calling context); the mapping from names
/// to `ObjectId`s lives in `moca::naming`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u32);

/// An application (one per simulated process/core in multi-program runs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AppId(pub u32);

/// A hardware core in the simulated system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CoreId(pub u32);

/// Memory segment a virtual address belongs to.
///
/// The paper allocates heap objects by class and sends stack, code and
/// global-data pages to the low-power module (§VI-D, Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Program text. High locality; near-zero LLC MPKI (Fig. 16).
    Code,
    /// Globals / bss.
    Data,
    /// Stack. Small footprint, caches well (Fig. 16).
    Stack,
    /// Dynamically allocated heap memory — the subject of MOCA.
    Heap,
}

/// The classification MOCA assigns to each memory object (and that the
/// Heter-App baseline assigns to whole applications) — Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    /// High LLC MPKI, low memory-level parallelism (high ROB-head stalls per
    /// load miss): benefits from the reduced-latency module (RLDRAM).
    LatencySensitive,
    /// High LLC MPKI, high MLP (stalls hidden): benefits from the
    /// high-bandwidth module (HBM).
    BandwidthSensitive,
    /// Low LLC MPKI: insensitive to memory speed; placed in the low-power
    /// module (LPDDR2) to save energy.
    NonIntensive,
}

impl ObjectClass {
    /// One-letter code used in the paper's workload-set names (e.g. `2L1B1N`).
    pub fn letter(self) -> char {
        match self {
            ObjectClass::LatencySensitive => 'L',
            ObjectClass::BandwidthSensitive => 'B',
            ObjectClass::NonIntensive => 'N',
        }
    }

    /// All classes in a stable order.
    pub const ALL: [ObjectClass; 3] = [
        ObjectClass::LatencySensitive,
        ObjectClass::BandwidthSensitive,
        ObjectClass::NonIntensive,
    ];
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::LatencySensitive => "latency-sensitive",
            ObjectClass::BandwidthSensitive => "bandwidth-sensitive",
            ObjectClass::NonIntensive => "non-memory-intensive",
        };
        f.write_str(s)
    }
}

/// Tag carried on every memory access through the simulator so that misses
/// and ROB-head stalls can be attributed to an object (or to the stack/code
/// segments for Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemTag {
    /// Which segment the access targets.
    pub segment: Segment,
    /// The heap object, when `segment == Segment::Heap`.
    pub object: Option<ObjectId>,
}

impl MemTag {
    /// Tag for an access to heap object `id`.
    pub fn heap(id: ObjectId) -> MemTag {
        MemTag {
            segment: Segment::Heap,
            object: Some(id),
        }
    }

    /// Tag for a non-heap segment access.
    pub fn segment(segment: Segment) -> MemTag {
        debug_assert!(!matches!(segment, Segment::Heap));
        MemTag {
            segment,
            object: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_letters_are_distinct() {
        let letters: std::collections::HashSet<_> =
            ObjectClass::ALL.iter().map(|c| c.letter()).collect();
        assert_eq!(letters.len(), 3);
    }

    #[test]
    fn heap_tag_carries_object() {
        let t = MemTag::heap(ObjectId(7));
        assert_eq!(t.segment, Segment::Heap);
        assert_eq!(t.object, Some(ObjectId(7)));
    }

    #[test]
    fn segment_tag_has_no_object() {
        let t = MemTag::segment(Segment::Stack);
        assert_eq!(t.object, None);
    }
}
