//! Address newtypes.
//!
//! Virtual and physical addresses are distinct types so that translation
//! mistakes (feeding a virtual address to a cache indexed on physical
//! addresses, or vice versa) become compile errors rather than silent
//! simulation bugs.

use serde::{Deserialize, Serialize};

/// Size of an OS page in bytes (4 KiB, as in the paper's Linux 2.6.32 guest).
pub const PAGE_SIZE: u64 = 4096;

/// Size of a cache line in bytes (Table I: 64 B for L1 and L2).
pub const CACHE_LINE_SIZE: u64 = 64;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// log2 of [`CACHE_LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// A virtual address in an application's address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(pub u64);

/// A physical address in the (possibly heterogeneous) memory system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

/// A physical cache-line address (physical address with the line offset
/// stripped), the unit caches and the DRAM controller operate on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl VirtAddr {
    /// Virtual page number.
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(bytes))
    }
}

impl PhysAddr {
    /// Physical frame number.
    #[inline]
    pub fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Build a physical address from a frame number and an in-page offset.
    #[inline]
    pub fn from_parts(pfn: u64, page_offset: u64) -> PhysAddr {
        debug_assert!(page_offset < PAGE_SIZE);
        PhysAddr((pfn << PAGE_SHIFT) | page_offset)
    }

    /// Cache-line address containing this byte.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }

    /// Physical frame number containing this line.
    #[inline]
    pub fn pfn(self) -> u64 {
        self.0 >> (PAGE_SHIFT - LINE_SHIFT)
    }
}

impl std::fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_line_constants_consistent() {
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
        assert_eq!(1u64 << LINE_SHIFT, CACHE_LINE_SIZE);
    }

    #[test]
    fn vpn_and_offset_roundtrip() {
        let va = VirtAddr(0x6010_2345);
        assert_eq!(va.vpn() * PAGE_SIZE + va.page_offset(), va.0);
    }

    #[test]
    fn phys_from_parts_roundtrip() {
        let pa = PhysAddr::from_parts(0x1234, 0xabc);
        assert_eq!(pa.pfn(), 0x1234);
        assert_eq!(pa.0 & (PAGE_SIZE - 1), 0xabc);
    }

    #[test]
    fn line_of_phys_strips_offset() {
        let pa = PhysAddr(0x1000 + 63);
        assert_eq!(pa.line(), PhysAddr(0x1000).line());
        assert_ne!(pa.line(), PhysAddr(0x1040).line());
        assert_eq!(pa.line().base().0, 0x1000);
    }

    #[test]
    fn line_pfn_matches_phys_pfn() {
        let pa = PhysAddr(0x3_4567_89c0);
        assert_eq!(pa.line().pfn(), pa.pfn());
    }
}
