//! Hierarchical two-level occupancy bitmap.
//!
//! A [`TwoLevelBitmap`] tracks which of `len` slots are occupied using a
//! dense bit array (`words`, one bit per slot, set = occupied) plus a
//! summary level with one bit per word (set = the word still has at least
//! one *free* slot). Finding the lowest free slot therefore touches at most
//! one summary word per 4096 slots, and a monotonically maintained word
//! `hint` makes the common mostly-sequential allocation pattern O(1)
//! amortized. Memory is `len/8` bytes for the bit level plus `len/512`
//! bytes for the summary — bounded and allocation-free after construction,
//! which is what lets the frame allocator hold millions of frames without
//! the unbounded free-list growth the old `Vec<u64>` design had.
//!
//! The map is policy-free: it answers "is slot `i` occupied", "occupy the
//! lowest free slot", "occupy/release slot `i`" and nothing else. Callers
//! (the frame allocator) layer their ordering contract on top.

use serde::{Deserialize, Serialize};

/// Dense occupancy bit array with a one-bit-per-word "any free" summary.
///
/// Invariants (checked by [`TwoLevelBitmap::check_consistency`], and cheap
/// enough to fuzz):
/// * bits at positions `>= len` in the last word are permanently set, so
///   they can never be handed out as free slots;
/// * summary bit `w` is set exactly when `words[w]` has a clear bit;
/// * `free` equals the number of clear bits below `len`;
/// * every word below `hint` is full (all bits set).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoLevelBitmap {
    len: u64,
    words: Vec<u64>,
    summary: Vec<u64>,
    free: u64,
    hint: usize,
}

impl TwoLevelBitmap {
    /// An all-free map over `len` slots.
    pub fn new(len: u64) -> TwoLevelBitmap {
        let n_words = (len.div_ceil(64)) as usize;
        let mut words = vec![0u64; n_words];
        // Mark the tail bits beyond `len` occupied so searches skip them.
        if !len.is_multiple_of(64) {
            let last = n_words - 1;
            words[last] = !0u64 << (len % 64);
        }
        let n_summary = n_words.div_ceil(64);
        let mut summary = vec![0u64; n_summary];
        // Every existing word holds at least one real (free) slot.
        for w in 0..n_words {
            summary[w / 64] |= 1 << (w % 64);
        }
        TwoLevelBitmap {
            len,
            words,
            summary,
            free: len,
            hint: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the map tracks zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free (unoccupied) slots.
    pub fn free_count(&self) -> u64 {
        self.free
    }

    /// Occupied slots.
    pub fn used_count(&self) -> u64 {
        self.len - self.free
    }

    /// Whether slot `idx` is occupied. `idx` must be below `len`.
    pub fn get(&self, idx: u64) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of range {}",
            self.len
        );
        self.words[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0
    }

    /// Occupy slot `idx`. Returns `false` (and changes nothing) when the
    /// slot was already occupied. `idx` must be below `len`.
    pub fn acquire(&mut self, idx: u64) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of range {}",
            self.len
        );
        let w = (idx / 64) as usize;
        let mask = 1u64 << (idx % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.free -= 1;
        if self.words[w] == !0u64 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        true
    }

    /// Release slot `idx`. Returns `false` (and changes nothing) when the
    /// slot was already free. `idx` must be below `len`.
    pub fn release(&mut self, idx: u64) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of range {}",
            self.len
        );
        let w = (idx / 64) as usize;
        let mask = 1u64 << (idx % 64);
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.free += 1;
        self.summary[w / 64] |= 1u64 << (w % 64);
        if w < self.hint {
            self.hint = w;
        }
        true
    }

    /// Occupy and return the lowest free slot, or `None` when full.
    pub fn acquire_lowest(&mut self) -> Option<u64> {
        if self.free == 0 {
            return None;
        }
        // Words below `hint` are full, so the first not-full word is at or
        // after it; the summary narrows the scan to one probe per 64 words.
        let mut w = self.hint;
        if w >= self.words.len() || self.words[w] == !0u64 {
            let mut found = None;
            for sk in (self.hint / 64)..self.summary.len() {
                let s = self.summary[sk];
                if s != 0 {
                    found = Some(sk * 64 + s.trailing_zeros() as usize);
                    break;
                }
            }
            w = found.expect("free > 0 implies a summary bit is set");
        }
        let bit = (!self.words[w]).trailing_zeros() as u64;
        let idx = (w as u64) * 64 + bit;
        debug_assert!(idx < self.len, "tail bits must stay occupied");
        self.words[w] |= 1u64 << bit;
        self.free -= 1;
        if self.words[w] == !0u64 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.hint = w;
        Some(idx)
    }

    /// Heap bytes held by the two bit levels (capacity, not length — this
    /// is the number callers budget against when they promise bounded
    /// allocator memory).
    pub fn heap_bytes(&self) -> usize {
        (self.words.capacity() + self.summary.capacity()) * std::mem::size_of::<u64>()
    }

    /// Full O(words) validation of every structural invariant. Debug/test
    /// hook; returns the violated invariant by name.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.words.len() != (self.len.div_ceil(64)) as usize {
            return Err(format!(
                "word count {} does not cover len {}",
                self.words.len(),
                self.len
            ));
        }
        let mut clear = 0u64;
        for (w, &word) in self.words.iter().enumerate() {
            let real_bits = if (w as u64 + 1) * 64 <= self.len {
                64
            } else {
                (self.len - w as u64 * 64) as u32
            };
            let tail = if real_bits == 64 {
                0
            } else {
                !0u64 << real_bits
            };
            if word & tail != tail {
                return Err(format!("word {w}: tail bits beyond len are not all set"));
            }
            // Tail bits are verified set above, so `!word` only has real
            // clear bits.
            clear += (!word).count_ones() as u64;
            let any_free = word != !0u64;
            let summary_bit = self.summary[w / 64] & (1u64 << (w % 64)) != 0;
            if any_free != summary_bit {
                return Err(format!(
                    "word {w}: summary bit {summary_bit} disagrees with occupancy (any_free={any_free})"
                ));
            }
            if w < self.hint && any_free {
                return Err(format!("word {w} below hint {} has free bits", self.hint));
            }
        }
        for (sk, &s) in self.summary.iter().enumerate() {
            let covered = self.words.len().saturating_sub(sk * 64).min(64);
            if covered < 64 && s >> covered != 0 {
                return Err(format!("summary word {sk}: bits set beyond word count"));
            }
        }
        if clear != self.free {
            return Err(format!(
                "free counter {} disagrees with {} clear bits",
                self.free, clear
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn fresh_map_is_all_free() {
        let b = TwoLevelBitmap::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.free_count(), 100);
        assert_eq!(b.used_count(), 0);
        assert!(!b.get(0) && !b.get(99));
        b.check_consistency().unwrap();
    }

    #[test]
    fn acquire_lowest_is_sequential_when_untouched() {
        let mut b = TwoLevelBitmap::new(130);
        for i in 0..130 {
            assert_eq!(b.acquire_lowest(), Some(i));
        }
        assert_eq!(b.acquire_lowest(), None);
        assert_eq!(b.free_count(), 0);
        b.check_consistency().unwrap();
    }

    #[test]
    fn release_reopens_lowest_slot() {
        let mut b = TwoLevelBitmap::new(200);
        for _ in 0..200 {
            b.acquire_lowest();
        }
        assert!(b.release(137));
        assert!(b.release(5));
        assert!(!b.release(5), "double release rejected");
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.acquire_lowest(), Some(5));
        assert_eq!(b.acquire_lowest(), Some(137));
        assert_eq!(b.acquire_lowest(), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn acquire_specific_slot_rejects_double() {
        let mut b = TwoLevelBitmap::new(64);
        assert!(b.acquire(63));
        assert!(!b.acquire(63));
        assert!(b.get(63));
        assert_eq!(b.acquire_lowest(), Some(0));
        b.check_consistency().unwrap();
    }

    #[test]
    fn tail_bits_never_leak() {
        // A len straddling a word boundary by one bit: the 63 tail bits of
        // the last word must never be returned.
        let mut b = TwoLevelBitmap::new(65);
        for i in 0..65 {
            assert_eq!(b.acquire_lowest(), Some(i));
        }
        assert_eq!(b.acquire_lowest(), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn zero_length_map_is_inert() {
        let mut b = TwoLevelBitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.acquire_lowest(), None);
        b.check_consistency().unwrap();
    }

    #[test]
    fn heap_bytes_are_bitmap_bounded() {
        let frames = 1u64 << 22; // 4M slots
        let b = TwoLevelBitmap::new(frames);
        // bits: frames/8 bytes; summary: frames/512 bytes; allow 2x slack
        // for Vec capacity rounding.
        assert!(b.heap_bytes() as u64 <= frames / 4);
    }

    #[test]
    fn randomized_ops_stay_consistent_with_naive_model() {
        let mut b = TwoLevelBitmap::new(700);
        let mut model = vec![false; 700]; // true = occupied
        let mut rng = DetRng::new(0xb175e7, 0);
        for _ in 0..20_000 {
            match rng.below(3) {
                0 => {
                    let got = b.acquire_lowest();
                    let want = model.iter().position(|&o| !o).map(|i| i as u64);
                    assert_eq!(got, want);
                    if let Some(i) = want {
                        model[i as usize] = true;
                    }
                }
                1 => {
                    let i = rng.below(700);
                    assert_eq!(b.acquire(i), !model[i as usize]);
                    model[i as usize] = true;
                }
                _ => {
                    let i = rng.below(700);
                    assert_eq!(b.release(i), model[i as usize]);
                    model[i as usize] = false;
                }
            }
            let free = model.iter().filter(|&&o| !o).count() as u64;
            assert_eq!(b.free_count(), free);
        }
        b.check_consistency().unwrap();
    }
}
