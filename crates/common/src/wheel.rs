//! Global hierarchical event wheel.
//!
//! Every component of the simulated machine (core pipelines, DRAM channels)
//! posts the cycle of its next self-scheduled event into one shared wheel
//! keyed by `(cycle, stable component id)`. The event-skip path in
//! `System::step` then answers "when is the next event after `now`?" with a
//! single wheel query instead of an O(cores + channels) scan.
//!
//! ## Structure
//!
//! The wheel is a ring of [`WHEEL_BUCKETS`] single-cycle buckets covering
//! the window `[base, base + WHEEL_BUCKETS)`, plus an overflow list for
//! events beyond the window. A two-level occupancy bitmap (one bit per
//! bucket, summarized in `u64` words) makes "first possibly-non-empty
//! bucket after `now`" a handful of word scans with `trailing_zeros` —
//! the *hierarchical* part.
//!
//! ## Lazy invalidation
//!
//! `post` never removes a component's previous entry; instead the dense
//! `next[comp]` array is authoritative and a bucket entry `(cycle, comp)`
//! is live only while `next[comp] == cycle`. Stale entries are dropped when
//! their bucket is scanned or when `base` advances past them. Re-posting an
//! unchanged event is a single compare (no duplicate entries), so callers
//! may post unconditionally after touching a component.
//!
//! ## Determinism
//!
//! The wheel answers queries purely from `next[]` minima; which bucket slot
//! an id occupies or how stale entries interleave never changes any answer,
//! so the wheel is safe on the simulated path (same contract as the MSHR
//! file's linear scan).

use crate::Cycle;

/// Ring size in cycles. DRAM service latencies on every modeled device are
/// well under this, so in steady state events land in the ring and the
/// overflow list only sees distant timers (e.g. refresh windows opening
/// thousands of cycles out).
pub const WHEEL_BUCKETS: usize = 512;

const WORDS: usize = WHEEL_BUCKETS / 64;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Authoritative next-event cycle per component (`Cycle::MAX` = none).
    next: Vec<Cycle>,
    /// First cycle covered by the ring. Bucket for cycle `c` is
    /// `c % WHEEL_BUCKETS`; the entry is addressable while
    /// `base <= c < base + WHEEL_BUCKETS`.
    base: Cycle,
    /// Ring buckets: component ids whose `next` pointed at this cycle when
    /// posted (may contain stale ids — see module docs).
    buckets: Vec<Vec<u32>>,
    /// One bit per possibly-non-empty bucket.
    occupied: [u64; WORDS],
    /// Components posted beyond the ring window (may contain stale ids;
    /// compacted on migration/scan).
    overflow: Vec<u32>,
    /// Conservative lower bound on the earliest live overflow event; when
    /// the ring window grows past it, overflow is migrated into buckets so
    /// the ring scan alone always sees the true minimum. Far timers sit
    /// `WHEEL_BUCKETS`+ cycles out, so migration passes are amortized O(1).
    overflow_min: Cycle,
}

impl EventWheel {
    /// A wheel for `components` ids, starting with no events posted.
    pub fn new(components: usize) -> EventWheel {
        EventWheel {
            next: vec![Cycle::MAX; components],
            base: 0,
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: Vec::new(),
            overflow_min: Cycle::MAX,
        }
    }

    /// Number of component ids the wheel tracks.
    pub fn components(&self) -> usize {
        self.next.len()
    }

    /// The authoritative next-event cycle for `comp` (`Cycle::MAX` = none).
    pub fn posted(&self, comp: usize) -> Cycle {
        self.next[comp]
    }

    /// Post component `comp`'s next event at `cycle` (`Cycle::MAX` cancels).
    /// Replaces any previous posting; re-posting the same cycle is a no-op
    /// compare, so callers can post unconditionally.
    pub fn post(&mut self, comp: usize, cycle: Cycle) {
        if self.next[comp] == cycle {
            return;
        }
        self.next[comp] = cycle;
        if cycle == Cycle::MAX {
            return; // previous entry goes stale; dropped lazily
        }
        if cycle < self.base {
            // A component may post an event at or before the query cursor
            // (e.g. "runnable now"); keep it addressable by clamping into
            // the ring rather than losing it behind the base.
            let b = (self.base % WHEEL_BUCKETS as Cycle) as usize;
            self.buckets[b].push(comp as u32);
            self.occupied[b / 64] |= 1 << (b % 64);
        } else if cycle < self.base + WHEEL_BUCKETS as Cycle {
            let b = (cycle % WHEEL_BUCKETS as Cycle) as usize;
            self.buckets[b].push(comp as u32);
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            // One overflow slot per component keeps the list bounded by the
            // component count no matter how often far timers are re-posted.
            if !self.overflow.contains(&(comp as u32)) {
                self.overflow.push(comp as u32);
            }
            self.overflow_min = self.overflow_min.min(cycle);
        }
    }

    /// Cancel any pending event for `comp`.
    pub fn cancel(&mut self, comp: usize) {
        self.post(comp, Cycle::MAX);
    }

    /// Pop the earliest posted event strictly after `now`, returning
    /// `(cycle, component)` of the winner without unposting it (the
    /// component re-posts when it reschedules). Ties prefer the smallest
    /// component id, making the answer independent of posting order.
    /// Advances the ring base to `now + 1`, releasing passed buckets.
    pub fn next_event_after(&mut self, now: Cycle) -> Option<(Cycle, usize)> {
        self.advance_to(now.saturating_add(1));
        // Ring scan: hop occupancy words, then the first live bucket wins
        // (buckets are single-cycle, so the first non-stale entry bucket is
        // the minimum cycle; within it the smallest id wins).
        let end = self.base + WHEEL_BUCKETS as Cycle;
        let mut c = self.base;
        while c < end {
            let b = (c % WHEEL_BUCKETS as Cycle) as usize;
            let word = b / 64;
            let bits = self.occupied[word] >> (b % 64);
            if bits == 0 {
                // Skip to the next occupancy word boundary (ring-safe: the
                // loop re-derives the bucket index from the cycle).
                let to_word_end = 64 - (b % 64) as Cycle;
                c += to_word_end;
                continue;
            }
            c += bits.trailing_zeros() as Cycle;
            if c >= end {
                break;
            }
            let b = (c % WHEEL_BUCKETS as Cycle) as usize;
            if let Some(comp) = self.scan_bucket(b, c) {
                return Some((c, comp));
            }
            c += 1;
        }
        // Nothing live in the ring: the answer, if any, is in overflow.
        self.scan_overflow(now)
    }

    /// Scan bucket `b` expecting cycle `c`: drop stale ids, return the
    /// smallest live id. Clears the occupancy bit when the bucket empties.
    fn scan_bucket(&mut self, b: usize, c: Cycle) -> Option<usize> {
        let mut best: Option<u32> = None;
        let bucket = &mut self.buckets[b];
        let mut w = 0;
        for r in 0..bucket.len() {
            let comp = bucket[r];
            if self.next[comp as usize] == c {
                best = Some(match best {
                    Some(prev) => prev.min(comp),
                    None => comp,
                });
                bucket[w] = comp;
                w += 1;
            }
        }
        bucket.truncate(w);
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        best.map(|comp| comp as usize)
    }

    /// Minimum live event in the overflow list after `now` (all ≥ the ring
    /// end once [`EventWheel::migrate_overflow`] has run); compacts stale
    /// ids and refreshes the `overflow_min` bound.
    fn scan_overflow(&mut self, now: Cycle) -> Option<(Cycle, usize)> {
        let mut best: Option<(Cycle, usize)> = None;
        let mut min = Cycle::MAX;
        let mut w = 0;
        for r in 0..self.overflow.len() {
            let comp = self.overflow[r] as usize;
            let cyc = self.next[comp];
            if cyc == Cycle::MAX || cyc <= now {
                continue; // cancelled, re-posted into the ring, or passed
            }
            self.overflow[w] = comp as u32;
            w += 1;
            min = min.min(cyc);
            best = match best {
                Some(prev) if prev <= (cyc, comp) => best,
                _ => Some((cyc, comp)),
            };
        }
        self.overflow.truncate(w);
        self.overflow_min = min;
        best
    }

    /// Advance the ring base to `target`, compacting passed buckets. Large
    /// jumps (event skip) sweep the whole ring in one pass. Afterwards, any
    /// overflow event the grown window now covers is migrated into its
    /// bucket, so the ring scan alone always sees the true minimum.
    fn advance_to(&mut self, target: Cycle) {
        if target <= self.base {
            return;
        }
        let jump = target - self.base;
        if jump >= WHEEL_BUCKETS as Cycle {
            self.occupied = [0; WORDS];
            for b in 0..WHEEL_BUCKETS {
                if !self.buckets[b].is_empty() && self.requeue_live(b, target) {
                    self.occupied[b / 64] |= 1 << (b % 64);
                }
            }
            self.base = target;
        } else {
            while self.base < target {
                let b = (self.base % WHEEL_BUCKETS as Cycle) as usize;
                if !self.buckets[b].is_empty() {
                    if self.requeue_live(b, target) {
                        self.occupied[b / 64] |= 1 << (b % 64);
                    } else {
                        self.occupied[b / 64] &= !(1 << (b % 64));
                    }
                }
                self.base += 1;
            }
        }
        if self.overflow_min < self.base + WHEEL_BUCKETS as Cycle {
            self.migrate_overflow();
        }
    }

    /// Move overflow events the current window covers into their buckets;
    /// drop stale entries; recompute the `overflow_min` bound. Amortized
    /// O(1): far timers sit `WHEEL_BUCKETS`+ cycles out, so each entry is
    /// visited at most once per ring revolution.
    fn migrate_overflow(&mut self) {
        let end = self.base + WHEEL_BUCKETS as Cycle;
        let mut min = Cycle::MAX;
        let mut w = 0;
        for r in 0..self.overflow.len() {
            let comp = self.overflow[r];
            let cyc = self.next[comp as usize];
            if cyc == Cycle::MAX || cyc < self.base {
                continue; // cancelled, re-posted, or passed
            }
            if cyc < end {
                let b = (cyc % WHEEL_BUCKETS as Cycle) as usize;
                if !self.buckets[b].contains(&comp) {
                    self.buckets[b].push(comp);
                    self.occupied[b / 64] |= 1 << (b % 64);
                }
                continue;
            }
            self.overflow[w] = comp;
            w += 1;
            min = min.min(cyc);
        }
        self.overflow.truncate(w);
        self.overflow_min = min;
    }

    /// Compact a bucket the base is passing. Entries whose event moved to a
    /// later revolution of the same slot (a component re-posted exactly
    /// `WHEEL_BUCKETS` cycles later) are already in the right place for the
    /// new window and stay; anything else live goes to overflow; stale and
    /// passed entries are dropped. Returns whether the bucket kept entries.
    fn requeue_live(&mut self, b: usize, target: Cycle) -> bool {
        let end = target + WHEEL_BUCKETS as Cycle;
        let mut w = 0;
        for r in 0..self.buckets[b].len() {
            let comp = self.buckets[b][r];
            let cyc = self.next[comp as usize];
            if cyc == Cycle::MAX || cyc < target {
                continue; // cancelled, moved, or in the past
            }
            if cyc < end && (cyc % WHEEL_BUCKETS as Cycle) as usize == b {
                self.buckets[b][w] = comp;
                w += 1;
            } else {
                if !self.overflow.contains(&comp) {
                    self.overflow.push(comp);
                }
                self.overflow_min = self.overflow_min.min(cyc);
            }
        }
        self.buckets[b].truncate(w);
        w > 0
    }

    /// The old linear scan, kept as the differential oracle: minimum of
    /// `next[comp] > now` with smallest-id tie-break. Debug builds assert
    /// [`EventWheel::next_event_after`] agrees with this on every query.
    pub fn scan_min_after(&self, now: Cycle) -> Option<(Cycle, usize)> {
        let mut best: Option<(Cycle, usize)> = None;
        for (comp, &cyc) in self.next.iter().enumerate() {
            if cyc != Cycle::MAX && cyc > now {
                best = match best {
                    Some(prev) if prev <= (cyc, comp) => best,
                    _ => Some((cyc, comp)),
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checked_next(w: &mut EventWheel, now: Cycle) -> Option<(Cycle, usize)> {
        let got = w.next_event_after(now);
        assert_eq!(got, w.scan_min_after(now), "wheel vs oracle at now={now}");
        got
    }

    #[test]
    fn empty_wheel_has_no_events() {
        let mut w = EventWheel::new(8);
        assert_eq!(checked_next(&mut w, 0), None);
        assert_eq!(checked_next(&mut w, 1_000_000), None);
    }

    #[test]
    fn post_and_query_in_ring() {
        let mut w = EventWheel::new(4);
        w.post(2, 10);
        w.post(1, 7);
        w.post(3, 10);
        assert_eq!(checked_next(&mut w, 0), Some((7, 1)));
        assert_eq!(checked_next(&mut w, 7), Some((10, 2)));
        assert_eq!(checked_next(&mut w, 10), None);
    }

    #[test]
    fn repost_moves_event_without_duplicates() {
        let mut w = EventWheel::new(2);
        w.post(0, 5);
        w.post(0, 9); // entry at 5 goes stale
        assert_eq!(checked_next(&mut w, 0), Some((9, 0)));
        w.post(0, 3); // earlier than before
        assert_eq!(checked_next(&mut w, 0), Some((3, 0)));
    }

    #[test]
    fn cancel_removes_event() {
        let mut w = EventWheel::new(2);
        w.post(0, 5);
        w.post(1, 6);
        w.cancel(0);
        assert_eq!(checked_next(&mut w, 0), Some((6, 1)));
        w.cancel(1);
        assert_eq!(checked_next(&mut w, 0), None);
    }

    #[test]
    fn overflow_events_are_found_and_migrate_into_ring() {
        let mut w = EventWheel::new(3);
        let far = 10 * WHEEL_BUCKETS as Cycle + 17;
        w.post(0, far);
        w.post(1, 3);
        assert_eq!(checked_next(&mut w, 0), Some((3, 1)));
        // Past the near event: only the overflow event remains.
        assert_eq!(checked_next(&mut w, 3), Some((far, 0)));
        // Jump close to it (big skip): it must now be served from the ring.
        assert_eq!(checked_next(&mut w, far - 2), Some((far, 0)));
        assert_eq!(checked_next(&mut w, far), None);
    }

    #[test]
    fn event_at_or_before_now_is_not_returned() {
        let mut w = EventWheel::new(2);
        w.post(0, 5);
        assert_eq!(checked_next(&mut w, 5), None);
        assert_eq!(checked_next(&mut w, 6), None);
        // Posting "behind" the advanced cursor still keeps the id live for
        // earlier queries from a fresh component.
        w.post(1, 100);
        assert_eq!(checked_next(&mut w, 6), Some((100, 1)));
    }

    #[test]
    fn ties_prefer_smallest_component_id() {
        let mut w = EventWheel::new(5);
        w.post(4, 20);
        w.post(2, 20);
        w.post(3, 20);
        assert_eq!(checked_next(&mut w, 0), Some((20, 2)));
    }

    #[test]
    fn ring_wraparound_keeps_answers_exact() {
        let mut w = EventWheel::new(2);
        let mut now = 0;
        for round in 0..10 {
            let e = now + (WHEEL_BUCKETS as Cycle / 2) + round;
            w.post(0, e);
            assert_eq!(checked_next(&mut w, now), Some((e, 0)));
            now = e;
        }
    }

    #[test]
    fn differential_random_sequences_match_oracle() {
        // Seeded LCG; no host randomness.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let comps = 12;
        let mut w = EventWheel::new(comps);
        let mut now: Cycle = 0;
        for _ in 0..20_000 {
            match rng() % 4 {
                0 | 1 => {
                    let comp = (rng() as usize) % comps;
                    // Mix near, far, and past cycles.
                    let delta = match rng() % 3 {
                        0 => rng() % 32,
                        1 => rng() % (WHEEL_BUCKETS as u64 * 3),
                        _ => rng() % 4, // may land at/behind now
                    };
                    let at = now.saturating_sub(rng() % 2) + delta;
                    w.post(comp, at);
                }
                2 => {
                    let comp = (rng() as usize) % comps;
                    w.cancel(comp);
                }
                _ => {
                    let got = w.next_event_after(now);
                    assert_eq!(got, w.scan_min_after(now), "divergence at now={now}");
                    // Advance: sometimes skip to the event (the engine's
                    // event-skip), sometimes crawl.
                    now = match got {
                        Some((c, _)) if rng() % 2 == 0 => c,
                        _ => now + 1 + rng() % 7,
                    };
                }
            }
        }
    }
}
