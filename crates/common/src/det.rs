//! Deterministic (ordered) collections for simulated state.
//!
//! The simulator's core contract is that a run is a pure function of its
//! configuration. `std::collections::HashMap`/`HashSet` break that contract
//! the moment their iteration order is observed: SipHash keys differ per
//! process, so any loop over a hash map can reorder placement decisions,
//! victim selection, or writeback drains between runs. [`DetMap`] and
//! [`DetSet`] are thin wrappers over `BTreeMap`/`BTreeSet` that iterate in
//! key order, always. The `det-map` lint rule (see `crates/analysis`)
//! forbids the std hash collections in simulated-path crates and points
//! offenders here.
//!
//! The API intentionally mirrors the subset of the `HashMap`/`HashSet`
//! surface the simulator uses, so migration is a type-name change. There is
//! deliberately no `with_capacity`: B-trees do not preallocate, and the
//! method's absence keeps callers honest about what the wrapper is.

use std::borrow::Borrow;
use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};
use std::ops::Index;

/// An ordered map with deterministic iteration (key order).
///
/// Backed by `BTreeMap`; requires `K: Ord` instead of `K: Hash`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetMap<K: Ord, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Insert a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Look up a value by key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get(key)
    }

    /// Look up a value mutably by key.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get_mut(key)
    }

    /// Remove a key, returning its value if present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(key)
    }

    /// True if the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Iterate entries in ascending key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterate entries mutably in ascending key order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Iterate values mutably in ascending key order.
    pub fn values_mut(&mut self) -> btree_map::ValuesMut<'_, K, V> {
        self.inner.values_mut()
    }

    /// Entry API, delegating to the underlying B-tree entry.
    pub fn entry(&mut self, key: K) -> btree_map::Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Keep only the entries for which the predicate returns true.
    pub fn retain<F: FnMut(&K, &mut V) -> bool>(&mut self, f: F) {
        self.inner.retain(f)
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V, Q> Index<&Q> for DetMap<K, V>
where
    K: Borrow<Q>,
    Q: Ord + ?Sized,
{
    type Output = V;
    fn index(&self, key: &Q) -> &V {
        self.inner.get(key).expect("no entry found for key")
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap {
            inner: BTreeMap::from_iter(iter),
        }
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a mut DetMap<K, V> {
    type Item = (&'a K, &'a mut V);
    type IntoIter = btree_map::IterMut<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// An ordered set with deterministic iteration (element order).
///
/// Backed by `BTreeSet`; requires `T: Ord` instead of `T: Hash`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetSet<T: Ord> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Create an empty set.
    pub fn new() -> Self {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Insert a value; returns true if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Remove a value; returns true if it was present.
    pub fn remove<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(value)
    }

    /// True if the value is present.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet {
            inner: BTreeSet::from_iter(iter),
        }
    }
}

impl<T: Ord> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iterates_in_key_order_regardless_of_insertion() {
        let mut a = DetMap::new();
        for k in [9u64, 3, 7, 1, 5] {
            a.insert(k, k * 10);
        }
        let mut b = DetMap::new();
        for k in [5u64, 1, 7, 3, 9] {
            b.insert(k, k * 10);
        }
        let ka: Vec<_> = a.keys().copied().collect();
        let kb: Vec<_> = b.keys().copied().collect();
        assert_eq!(ka, vec![1, 3, 5, 7, 9]);
        assert_eq!(ka, kb);
        assert_eq!(a, b);
    }

    #[test]
    fn map_basic_operations() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(2u32, "b"), None);
        assert_eq!(m.insert(2, "b2"), Some("b"));
        m.insert(1, "a");
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&1));
        assert_eq!(m.get(&2), Some(&"b2"));
        assert_eq!(m[&1], "a");
        *m.entry(3).or_insert("c") = "c!";
        assert_eq!(m.remove(&3), Some("c!"));
        m.retain(|k, _| *k == 1);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn set_iterates_in_order_and_dedups() {
        let mut s = DetSet::new();
        assert!(s.insert(4u64));
        assert!(s.insert(2));
        assert!(!s.insert(4));
        assert!(s.contains(&2));
        let v: Vec<_> = s.iter().copied().collect();
        assert_eq!(v, vec![2, 4]);
        assert!(s.remove(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn collect_from_iterators() {
        let m: DetMap<u8, u8> = [(3, 30), (1, 10)].into_iter().collect();
        assert_eq!(m.iter().next(), Some((&1, &10)));
        let s: DetSet<u8> = [3, 1, 3].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
