//! Shared base types for the MOCA reproduction.
//!
//! Every other crate in the workspace builds on the vocabulary defined here:
//! physical/virtual addresses, simulated time, memory-object identities, the
//! three-way object classification of the paper (latency-sensitive,
//! bandwidth-sensitive, non-memory-intensive), the four DRAM technologies of
//! Table II, deterministic random-number helpers, and small statistics
//! accumulators.
//!
//! The crate is intentionally dependency-light so that the substrates
//! (`moca-dram`, `moca-cache`, `moca-cpu`, `moca-vm`) can share types without
//! coupling to each other.

pub mod addr;
pub mod bitset;
pub mod det;
pub mod ids;
pub mod par;
pub mod rng;
pub mod stats;
pub mod units;
pub mod wheel;

pub use addr::{LineAddr, PhysAddr, VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE};
pub use bitset::TwoLevelBitmap;
pub use det::{DetMap, DetSet};
pub use ids::{AppId, CoreId, ObjectClass, ObjectId, Segment};
pub use rng::DetRng;
pub use stats::{Counter, RunningStat};
pub use units::{Cycle, GB, KB, MB};

use serde::{Deserialize, Serialize};

/// Kind of a memory access as seen by caches and DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (demand read). Reads are latency-critical: their queueing and
    /// service time is what the paper reports as "memory access time".
    Read,
    /// A store or a dirty writeback. Writes are buffered and drained
    /// opportunistically; they contribute to bandwidth and energy but not to
    /// load latency.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// The four DRAM technologies evaluated by the paper (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Baseline commodity DDR3-1866.
    Ddr3,
    /// Low-power mobile DRAM: lowest power, worst latency/bandwidth.
    Lpddr2,
    /// Reduced-latency DRAM: SRAM-like access, 4-5x the power of DDR3.
    Rldram3,
    /// 2.5D-stacked high-bandwidth memory.
    Hbm,
}

impl ModuleKind {
    /// All module kinds, in a stable order.
    pub const ALL: [ModuleKind; 4] = [
        ModuleKind::Ddr3,
        ModuleKind::Lpddr2,
        ModuleKind::Rldram3,
        ModuleKind::Hbm,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModuleKind::Ddr3 => "DDR3",
            ModuleKind::Lpddr2 => "LPDDR2",
            ModuleKind::Rldram3 => "RLDRAM",
            ModuleKind::Hbm => "HBM",
        }
    }
}

impl std::fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_read_predicate() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn module_kind_names_are_unique() {
        let names: std::collections::HashSet<_> =
            ModuleKind::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), ModuleKind::ALL.len());
    }

    #[test]
    fn module_kind_display_matches_name() {
        for m in ModuleKind::ALL {
            assert_eq!(m.to_string(), m.name());
        }
    }
}
