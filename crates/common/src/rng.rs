//! Deterministic random-number helpers.
//!
//! Every stochastic decision in the workload generators derives from a
//! [`DetRng`] seeded from an explicit `(seed, stream)` pair, so a simulation
//! is a pure function of its configuration. This is what lets the paper-style
//! "training input vs. reference input" methodology work: the two inputs are
//! simply different seeds and footprint scales.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG with convenience methods used by workload generation.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create an RNG from a base seed and a stream index. Distinct streams
    /// (e.g. one per object, one per core) are statistically independent.
    pub fn new(seed: u64, stream: u64) -> DetRng {
        // SplitMix64-style mixing of (seed, stream) into a 64-bit state so
        // that nearby (seed, stream) pairs produce unrelated sequences.
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng {
            inner: SmallRng::seed_from_u64(z),
        }
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Pick an index according to non-negative `weights`. Weights must not
    /// all be zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights sum to zero");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Raw 64-bit value.
    #[inline]
    pub fn raw(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..32).filter(|_| a.raw() == b.raw()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = DetRng::new(3, 3);
        let w = [0.01, 0.98, 0.01];
        let mut counts = [0u32; 3];
        for _ in 0..1000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert!(counts[1] > 900, "counts = {counts:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5, 5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
