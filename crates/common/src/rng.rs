//! Deterministic random-number helpers.
//!
//! Every stochastic decision in the workload generators derives from a
//! [`DetRng`] seeded from an explicit `(seed, stream)` pair, so a simulation
//! is a pure function of its configuration. This is what lets the paper-style
//! "training input vs. reference input" methodology work: the two inputs are
//! simply different seeds and footprint scales.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), whose
//! 256-bit state is expanded from the mixed seed by SplitMix64 — the
//! reference seeding procedure for the xoshiro family. No external crates:
//! the container image has no registry access, and a hand-rolled generator
//! also pins the exact sequence across toolchain updates.

/// A deterministic RNG with convenience methods used by workload generation.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// One SplitMix64 step; used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create an RNG from a base seed and a stream index. Distinct streams
    /// (e.g. one per object, one per core) are statistically independent.
    pub fn new(seed: u64, stream: u64) -> DetRng {
        // SplitMix64-style mixing of (seed, stream) into a 64-bit state so
        // that nearby (seed, stream) pairs produce unrelated sequences.
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut sm = z;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Next raw value from the xoshiro256++ core.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style rejection: unbiased, and the retry loop is almost
        // never taken for the small bounds workload generation uses.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) double conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick an index according to non-negative `weights`. Weights must not
    /// all be zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        self.weighted_index_with_total(weights, total)
    }

    /// [`weighted_index`](Self::weighted_index) with the sum of `weights`
    /// precomputed by the caller. `total` must equal `weights.iter().sum()`
    /// bit-exactly — hot callers with fixed weight tables compute it once
    /// instead of re-summing per draw.
    pub fn weighted_index_with_total(&mut self, weights: &[f64], total: f64) -> usize {
        debug_assert!(total > 0.0, "weights sum to zero");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Raw 64-bit value.
    #[inline]
    pub fn raw(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..32).filter(|_| a.raw() == b.raw()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = DetRng::new(3, 3);
        let w = [0.01, 0.98, 0.01];
        let mut counts = [0u32; 3];
        for _ in 0..1000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert!(counts[1] > 900, "counts = {counts:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5, 5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = DetRng::new(9, 9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
