//! Time and capacity units.
//!
//! The simulator runs a synchronous clock at the core frequency of 1 GHz
//! (Table I), so **one cycle equals one nanosecond**. DRAM device timings,
//! which Table II specifies in nanoseconds, are converted to cycles with
//! ceiling rounding at controller construction time.

/// Simulated time in core cycles (1 cycle = 1 ns at the paper's 1 GHz core).
pub type Cycle = u64;

/// One kibibyte.
pub const KB: u64 = 1024;
/// One mebibyte.
pub const MB: u64 = 1024 * KB;
/// One gibibyte.
pub const GB: u64 = 1024 * MB;

/// Core clock frequency in Hz (Table I).
pub const CORE_FREQ_HZ: u64 = 1_000_000_000;

/// Convert a duration in nanoseconds to core cycles, rounding up so that
/// device timing constraints are never optimistically shortened.
#[inline]
pub fn ns_to_cycles(ns: f64) -> Cycle {
    debug_assert!(ns >= 0.0, "negative duration");
    ns.ceil() as Cycle
}

/// Convert a cycle count to seconds of simulated time.
#[inline]
pub fn cycles_to_seconds(cycles: Cycle) -> f64 {
    cycles as f64 / CORE_FREQ_HZ as f64
}

/// Narrow a `u64` (cycle count, address component, byte count) to `u32`,
/// panicking with the offending value if it does not fit. The `narrowing-cast`
/// lint rule requires these helpers instead of bare `as` casts so that a
/// silently-truncated cycle or address can never corrupt simulated state.
#[inline]
#[track_caller]
pub fn narrow_u32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| panic!("value {v} does not fit in u32"))
}

/// Narrow a `u64` to `usize`, panicking with the offending value if it does
/// not fit (relevant on 32-bit hosts). See [`narrow_u32`].
#[inline]
#[track_caller]
pub fn narrow_usize(v: u64) -> usize {
    usize::try_from(v).unwrap_or_else(|_| panic!("value {v} does not fit in usize"))
}

/// Pretty-print a byte count using binary units ("256 MiB").
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GB && bytes.is_multiple_of(GB) {
        format!("{} GiB", bytes / GB)
    } else if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{} MiB", bytes / MB)
    } else if bytes >= KB && bytes.is_multiple_of(KB) {
        format!("{} KiB", bytes / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_up() {
        assert_eq!(ns_to_cycles(0.0), 0);
        assert_eq!(ns_to_cycles(1.0), 1);
        assert_eq!(ns_to_cycles(1.07), 2);
        assert_eq!(ns_to_cycles(13.75), 14);
    }

    #[test]
    fn cycles_to_seconds_at_1ghz() {
        assert!((cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrowing_accepts_in_range_values() {
        assert_eq!(narrow_u32(0), 0);
        assert_eq!(narrow_u32(u32::MAX as u64), u32::MAX);
        assert_eq!(narrow_usize(4096), 4096usize);
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    fn narrowing_panics_on_overflow() {
        narrow_u32(u32::MAX as u64 + 1);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512 * MB), "512 MiB");
        assert_eq!(format_bytes(2 * GB), "2 GiB");
        assert_eq!(format_bytes(64 * KB), "64 KiB");
        assert_eq!(format_bytes(100), "100 B");
    }
}
