//! Full-system simulator.
//!
//! Composes the substrate crates into the machine of Table I: one or four
//! 1 GHz out-of-order cores, each with private split L1 caches and a private
//! unified L2, above four memory channels populated according to a
//! [`MemSystemConfig`] — either four identical modules (the homogeneous
//! baselines) or the paper's heterogeneous mix of RLDRAM3 + HBM + 2×LPDDR2.
//!
//! Page placement is delegated to a [`moca_vm::PagePlacementPolicy`]; the
//! policies themselves (MOCA, Heter-App, homogeneous) live in the `moca`
//! crate. The simulator reports the paper's metrics: total memory access
//! time (queue + service summed over DRAM reads), integrated memory energy
//! and EDP, and system-level performance/EDP with a calibrated core-power
//! model (§V-A: 21 W average for the four-core system).

pub mod config;
pub mod hierarchy;
pub mod metrics;
pub mod migration;
pub mod os;
pub mod par_step;
pub mod system;

pub use config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};
pub use hierarchy::CoreHierarchy;
pub use metrics::{CoreResult, MemMetrics, PlacementReport, RunResult};
pub use migration::{MigrationConfig, MigrationStats, Migrator};
pub use os::Os;
pub use system::System;
