//! The simulated OS: per-application page tables, per-core TLBs, and the
//! page-fault handler that consults the pluggable placement policy (§IV-D).

use crate::metrics::PlacementReport;
use moca_common::addr::{PhysAddr, VirtAddr};
use moca_common::units::narrow_u32;
use moca_common::{AppId, Cycle, ObjectClass};
use moca_telemetry::{Event, EventIntent, Telemetry};
use moca_vm::layout::PageIntent;
use moca_vm::{FrameSpace, PagePlacementPolicy, PageTable, Tlb};

/// Telemetry's mirror of [`PageIntent`] (the telemetry crate sits below the
/// VM layer and cannot name it directly).
fn event_intent(intent: PageIntent) -> EventIntent {
    match intent {
        PageIntent::Heap(ObjectClass::LatencySensitive) => EventIntent::LatHeap,
        PageIntent::Heap(ObjectClass::BandwidthSensitive) => EventIntent::BwHeap,
        PageIntent::Heap(ObjectClass::NonIntensive) => EventIntent::PowHeap,
        PageIntent::Stack => EventIntent::Stack,
        PageIntent::Code => EventIntent::Code,
        PageIntent::Data => EventIntent::Data,
    }
}

/// Result of translating one access.
#[derive(Debug, Clone, Copy)]
pub struct Translation {
    /// The physical address.
    pub pa: PhysAddr,
    /// Extra front-side latency (page walk, fault handling).
    pub extra: Cycle,
}

/// The OS state: frame space, policy, page tables (one per app), TLBs (one
/// per core).
pub struct Os {
    frames: FrameSpace,
    policy: Box<dyn PagePlacementPolicy>,
    page_tables: Vec<PageTable>,
    tlbs: Vec<Tlb>,
    placement: PlacementReport,
    /// Reverse map frame → (app, vpn), maintained for page migration.
    owners: moca_common::DetMap<u64, (usize, u64)>,
    tlb_miss_penalty: Cycle,
    page_fault_penalty: Cycle,
}

impl Os {
    /// Build the OS for `apps` applications on `cores` cores (one app per
    /// core in this simulator).
    pub fn new(
        frames: FrameSpace,
        policy: Box<dyn PagePlacementPolicy>,
        apps: usize,
        tlb_entries: usize,
        tlb_miss_penalty: Cycle,
        page_fault_penalty: Cycle,
    ) -> Os {
        Os {
            frames,
            placement: PlacementReport::new(apps),
            policy,
            page_tables: (0..apps).map(|_| PageTable::new()).collect(),
            tlbs: (0..apps).map(|_| Tlb::new(tlb_entries)).collect(),
            owners: moca_common::DetMap::new(),
            tlb_miss_penalty,
            page_fault_penalty,
        }
    }

    /// Translate a virtual address for the app on `core_idx`, faulting in
    /// the page on first touch.
    pub fn translate(&mut self, core_idx: usize, va: VirtAddr) -> Translation {
        self.translate_impl(core_idx, va, 0, None)
    }

    /// [`Os::translate`] with telemetry: faults and placements along this
    /// translation are emitted as events stamped `now`.
    pub fn translate_traced(
        &mut self,
        core_idx: usize,
        va: VirtAddr,
        now: Cycle,
        tel: &mut Telemetry,
    ) -> Translation {
        self.translate_impl(core_idx, va, now, Some(tel))
    }

    fn translate_impl(
        &mut self,
        core_idx: usize,
        va: VirtAddr,
        now: Cycle,
        tel: Option<&mut Telemetry>,
    ) -> Translation {
        let vpn = va.vpn();
        if let Some(pfn) = self.tlbs[core_idx].lookup(vpn) {
            return Translation {
                pa: PhysAddr::from_parts(pfn, va.page_offset()),
                extra: 0,
            };
        }
        let mut extra = self.tlb_miss_penalty;
        let pfn = match self.page_tables[core_idx].translate_vpn(vpn) {
            Some(pfn) => pfn,
            None => {
                extra += self.page_fault_penalty;
                self.fault_impl(core_idx, va, now, tel)
            }
        };
        self.tlbs[core_idx].insert(vpn, pfn);
        Translation {
            pa: PhysAddr::from_parts(pfn, va.page_offset()),
            extra,
        }
    }

    /// Allocate a page at object instantiation (§IV-E: the OS performs
    /// allocations for objects at their instantiation, so pages exist
    /// before first use). No-op if the page is already mapped.
    pub fn prefault(&mut self, core_idx: usize, va: VirtAddr) {
        if self.page_tables[core_idx].translate_vpn(va.vpn()).is_none() {
            self.fault_impl(core_idx, va, 0, None);
        }
    }

    /// [`Os::prefault`] with telemetry; instantiation-time placements are
    /// stamped cycle 0.
    pub fn prefault_traced(&mut self, core_idx: usize, va: VirtAddr, tel: &mut Telemetry) {
        if self.page_tables[core_idx].translate_vpn(va.vpn()).is_none() {
            self.fault_impl(core_idx, va, 0, Some(tel));
        }
    }

    /// Page fault: ask the policy for a frame and map it (used both at
    /// instantiation time and for any page touched lazily, e.g. stack
    /// growth).
    fn fault_impl(
        &mut self,
        core_idx: usize,
        va: VirtAddr,
        now: Cycle,
        mut tel: Option<&mut Telemetry>,
    ) -> u64 {
        let app = AppId(narrow_u32(core_idx as u64));
        let intent = PageIntent::of_va(va);
        if let Some(t) = tel.as_deref_mut() {
            t.record(
                now,
                Event::PageFault {
                    app: app.0,
                    vpn: va.vpn(),
                    intent: event_intent(intent),
                },
            );
        }
        let pfn = self
            .policy
            .place(app, intent, &mut self.frames)
            .unwrap_or_else(|| {
                // moca-lint: allow(panic-in-hot): out of physical memory is a configuration error; aborting with the placement context is the only useful outcome
                panic!(
                    "out of physical memory: app {} faulting {va:#x} ({intent:?}) under policy {} \
                     ({} total frames)",
                    core_idx,
                    self.policy.name(),
                    self.frames.total_frames()
                )
            });
        let kind = self
            .frames
            .kind_of(pfn)
            // moca-lint: allow(panic-in-hot): the policy just allocated `pfn` from a region; a miss here is allocator corruption
            .expect("allocated frame belongs to a region");
        self.placement.record(app, intent, kind);
        if let Some(t) = tel {
            t.record(
                now,
                Event::Placement {
                    app: app.0,
                    vpn: va.vpn(),
                    pfn,
                    kind,
                    intent: event_intent(intent),
                },
            );
            if let Some(preferred) = self.policy.preferred(app, intent) {
                if preferred != kind {
                    t.record(
                        now,
                        Event::FallbackAllocation {
                            app: app.0,
                            vpn: va.vpn(),
                            got: kind,
                            preferred,
                        },
                    );
                }
            }
        }
        self.page_tables[core_idx].map(va.vpn(), pfn);
        self.owners.insert(pfn, (core_idx, va.vpn()));
        pfn
    }

    /// Owner of a physical frame, if mapped.
    pub fn owner_of(&self, pfn: u64) -> Option<(usize, u64)> {
        self.owners.get(&pfn).copied()
    }

    /// Swap the physical frames behind two mapped pages (the OS page
    /// migration primitive: promote a hot page into a fast module by
    /// trading frames with a cold page there). Both pages' TLB entries are
    /// shot down on every core.
    pub fn swap_frames(&mut self, a_pfn: u64, b_pfn: u64) {
        assert_ne!(a_pfn, b_pfn, "cannot swap a frame with itself");
        let (app_a, vpn_a) = self.owners[&a_pfn];
        let (app_b, vpn_b) = self.owners[&b_pfn];
        self.page_tables[app_a].unmap(vpn_a);
        self.page_tables[app_b].unmap(vpn_b);
        self.page_tables[app_a].map(vpn_a, b_pfn);
        self.page_tables[app_b].map(vpn_b, a_pfn);
        self.owners.insert(b_pfn, (app_a, vpn_a));
        self.owners.insert(a_pfn, (app_b, vpn_b));
        // TLB shootdown (conservatively on all cores — vpns may collide
        // across address spaces).
        for tlb in &mut self.tlbs {
            tlb.flush();
        }
    }

    /// Move a mapped page onto a currently free frame of `kind`; returns
    /// the new frame, or `None` when that module has no free frame.
    pub fn move_page_to(&mut self, pfn: u64, kind: moca_common::ModuleKind) -> Option<u64> {
        let (app, vpn) = *self.owners.get(&pfn)?;
        // Find the region of the requested kind with space.
        let region = (0..self.frames.regions().len()).find(|&i| {
            self.frames.regions()[i].kind == kind && self.frames.free_in_region(i) > 0
        })?;
        let new_pfn = self.frames.alloc_in_region(region)?;
        self.page_tables[app].unmap(vpn);
        self.page_tables[app].map(vpn, new_pfn);
        self.owners.remove(&pfn);
        self.owners.insert(new_pfn, (app, vpn));
        self.frames.free(pfn);
        for tlb in &mut self.tlbs {
            tlb.flush();
        }
        Some(new_pfn)
    }

    /// Placement statistics.
    pub fn placement(&self) -> &PlacementReport {
        &self.placement
    }

    /// Take the placement report at end of run.
    pub fn take_placement(&mut self) -> PlacementReport {
        std::mem::replace(&mut self.placement, PlacementReport::new(0))
    }

    /// Policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Frame space (tests / reports).
    pub fn frames(&self) -> &FrameSpace {
        &self.frames
    }

    /// Per-core TLB statistics.
    pub fn tlb_stats(&self, core_idx: usize) -> moca_vm::tlb::TlbStats {
        *self.tlbs[core_idx].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::{ModuleKind, ObjectClass};
    use moca_vm::frames::regions_from_capacities;
    use moca_vm::layout::{partition_base, HeapLayout};
    use moca_vm::policy::FirstTouchPolicy;

    fn os() -> Os {
        let frames = FrameSpace::new(regions_from_capacities(&[(
            ModuleKind::Ddr3,
            0,
            1024 * 4096,
        )]));
        Os::new(frames, Box::new(FirstTouchPolicy), 2, 4, 36, 120)
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut os = os();
        let va = VirtAddr(partition_base(ObjectClass::NonIntensive) + 0x123);
        let t1 = os.translate(0, va);
        assert_eq!(t1.extra, 156, "walk + fault");
        assert_eq!(t1.pa.0 & 0xfff, 0x123);
        let t2 = os.translate(0, va);
        assert_eq!(t2.extra, 0, "TLB hit");
        assert_eq!(t2.pa, t1.pa);
    }

    #[test]
    fn apps_have_separate_address_spaces() {
        let mut os = os();
        let va = VirtAddr(partition_base(ObjectClass::NonIntensive));
        let a = os.translate(0, va);
        let b = os.translate(1, va);
        assert_ne!(a.pa, b.pa, "same VA in different apps → different frames");
    }

    #[test]
    fn tlb_miss_without_fault_costs_walk_only() {
        let mut os = os();
        // Touch 5 pages with a 4-entry TLB, then revisit the first.
        let mut h = HeapLayout::new();
        let base = h.alloc_heap(ObjectClass::NonIntensive, 5 * 4096);
        for i in 0..5u64 {
            os.translate(0, base.offset(i * 4096));
        }
        let t = os.translate(0, base);
        assert_eq!(t.extra, 36, "page mapped but TLB-evicted");
    }

    #[test]
    fn placement_recorded_per_intent() {
        let mut os = os();
        os.translate(0, VirtAddr(partition_base(ObjectClass::LatencySensitive)));
        os.translate(0, VirtAddr(partition_base(ObjectClass::BandwidthSensitive)));
        let p = os.placement();
        assert_eq!(p.total_pages(), 2);
        assert_eq!(
            p.pages_of_class(
                AppId(0),
                Some(ObjectClass::LatencySensitive),
                ModuleKind::Ddr3
            ),
            1
        );
    }

    #[test]
    #[should_panic(expected = "out of physical memory")]
    fn oom_panics_with_context() {
        let frames = FrameSpace::new(regions_from_capacities(&[(ModuleKind::Ddr3, 0, 4096)]));
        let mut os = Os::new(frames, Box::new(FirstTouchPolicy), 1, 4, 36, 120);
        os.translate(0, VirtAddr(partition_base(ObjectClass::NonIntensive)));
        os.translate(
            0,
            VirtAddr(partition_base(ObjectClass::NonIntensive) + 4096),
        );
    }
}
