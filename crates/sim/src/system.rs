//! The whole machine: cores + hierarchies + OS + channels, and the run loop.

use crate::config::SystemConfig;
use crate::hierarchy::CoreHierarchy;
use crate::metrics::{ChannelReport, CoreResult, MemMetrics, RunResult};
use crate::migration::{MigrationConfig, Migrator};
use crate::os::Os;
use moca_common::ids::MemTag;
use moca_common::{CoreId, Cycle, ObjectClass, VirtAddr};
use moca_cpu::{Core, MemPort, MemReply, StoreReply};
use moca_dram::{AddressMapper, Channel, Completion};
use moca_telemetry::attribution::{tier_index, AttrSnapshot, Mechanism, OccupancySample};
use moca_telemetry::{Event, Telemetry, WindowSnapshot};
use moca_vm::layout::HeapLayout;
use moca_vm::{FrameSpace, PagePlacementPolicy};
use moca_workloads::gen::scaled_sizes;
use moca_workloads::{AppRun, AppSpec, InputSet};

/// One application to launch on one core.
pub struct AppLaunch {
    /// The benchmark.
    pub spec: AppSpec,
    /// Input set (training or reference).
    pub input: InputSet,
    /// Virtual-heap partition per object, in `spec.objects` order. MOCA
    /// passes its per-object classification; baselines (which have no typed
    /// heap) pass `NonIntensive` for everything — the *policy* then decides
    /// placement from other information.
    pub object_classes: Vec<ObjectClass>,
}

impl AppLaunch {
    /// Launch with every object in the default (untyped) partition.
    pub fn untyped(spec: AppSpec, input: InputSet) -> AppLaunch {
        let n = spec.objects.len();
        AppLaunch {
            spec,
            input,
            object_classes: vec![ObjectClass::NonIntensive; n],
        }
    }
}

/// The simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    hiers: Vec<CoreHierarchy>,
    streams: Vec<AppRun>,
    app_names: Vec<String>,
    os: Os,
    channels: Vec<Channel>,
    mapper: AddressMapper,
    tickets: u64,
    now: Cycle,
    /// Per-core flag: still inside its measurement window. Cores that reach
    /// the instruction target keep running (to preserve contention) but
    /// their memory latencies stop counting toward the metrics.
    measuring: Vec<bool>,
    /// Per-core flag: statistics snapshot already frozen (the core passed
    /// its instruction target). Frozen cores keep executing for contention
    /// but are skipped by per-core window sampling.
    frozen: Vec<bool>,
    /// Reusable buffer for the tickets woken by one DRAM completion (the
    /// completion path runs once per off-chip read; keeping the buffer on
    /// the system makes the step loop allocation-free).
    woken_buf: Vec<u64>,
    /// Cycle attribution enabled (CPI stacks + per-object stall ledgers on
    /// every core). Off by default; purely observational either way.
    attr_enabled: bool,
    /// Reusable buffer of `(core, ticket, tier, mechanism)` resolutions
    /// collected while delivering DRAM completions. Applied to the cores
    /// only *after* their pipeline ticks, because a woken core may still
    /// charge this cycle's skipped-window stall to the completed ticket.
    attr_resolutions: Vec<(usize, u64, usize, Mechanism)>,
    /// Occupancy timeline (attribution runs only): free-frame headroom per
    /// module kind plus cumulative migration counts over the measured run.
    occupancy: Vec<OccupancySample>,
    /// Optional dynamic page-migration engine (the runtime-monitoring
    /// baseline of §IV-E / related work).
    migrator: Option<Migrator>,
    /// Observability context. Strictly observational: nothing in the
    /// simulated machine ever reads it, so runs with telemetry enabled are
    /// bit-identical to runs without.
    tel: Telemetry,
    /// Next cycle at which a metrics window closes.
    win_next: Cycle,
    /// First cycle of the currently open metrics window.
    win_start: Cycle,
    /// Per-core committed-instruction baseline at window start.
    win_committed: Vec<u64>,
    /// Per-core L2 miss baseline at window start.
    win_l2_miss: Vec<u64>,
    /// Per-channel busy-cycle baseline at window start.
    win_busy: Vec<Cycle>,
    /// Per-channel, per-bank activate-count baseline at window start.
    win_bank_act: Vec<Vec<u64>>,
}

struct Port<'a> {
    hier: &'a mut CoreHierarchy,
    channels: &'a mut [Channel],
    mapper: &'a AddressMapper,
    os: &'a mut Os,
    core_idx: usize,
    tickets: &'a mut u64,
    tel: &'a mut Telemetry,
}

impl Port<'_> {
    /// Emit an MSHR-exhaustion stall if that is what the hierarchy's last
    /// `Retry` meant (channel-full retries stay silent: they are visible as
    /// queue-depth window samples instead).
    fn note_retry(&mut self, now: Cycle, core: CoreId, reply: &MemReply) {
        if matches!(reply, MemReply::Retry { mshr_full: true }) {
            self.tel.record(now, Event::MshrFullStall { core: core.0 });
        }
    }
}

impl MemPort for Port<'_> {
    fn load(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> MemReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        let reply = self.hier.load(
            now,
            core,
            tr.pa,
            tag,
            tr.extra,
            self.channels,
            self.mapper,
            self.tickets,
        );
        self.note_retry(now, core, &reply);
        reply
    }

    fn store(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> StoreReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        self.hier.store(
            now,
            core,
            tr.pa,
            tag,
            self.channels,
            self.mapper,
            self.tickets,
        )
    }

    fn ifetch(&mut self, now: Cycle, core: CoreId, va: VirtAddr) -> MemReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        let reply = self
            .hier
            .ifetch(now, core, tr.pa, self.channels, self.mapper, self.tickets);
        self.note_retry(now, core, &reply);
        reply
    }
}

impl System {
    /// Build a machine running `launches` (one per core) under `policy`.
    pub fn new(
        cfg: SystemConfig,
        launches: Vec<AppLaunch>,
        policy: Box<dyn PagePlacementPolicy>,
    ) -> System {
        System::new_with_telemetry(cfg, launches, policy, Telemetry::disabled())
    }

    /// [`System::new`] with an observability context attached. Telemetry is
    /// write-only for the simulation, so results are identical to an
    /// untraced run; instantiation-time placements are captured at cycle 0.
    pub fn new_with_telemetry(
        cfg: SystemConfig,
        launches: Vec<AppLaunch>,
        policy: Box<dyn PagePlacementPolicy>,
        mut tel: Telemetry,
    ) -> System {
        assert_eq!(
            launches.len(),
            cfg.cores,
            "one application per core required"
        );
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"));
        let channels: Vec<Channel> = cfg
            .mem
            .channel_configs(cfg.capacity_scale)
            .into_iter()
            .map(Channel::new)
            .collect();
        let mapper = cfg.mem.mapper(cfg.capacity_scale);
        let frames = FrameSpace::new(cfg.mem.frame_regions(cfg.capacity_scale));
        let mut os = Os::new(
            frames,
            policy,
            cfg.cores,
            cfg.tlb_entries,
            cfg.tlb_miss_penalty,
            cfg.page_fault_penalty,
        );

        let mut cores = Vec::with_capacity(cfg.cores);
        let mut hiers = Vec::with_capacity(cfg.cores);
        let mut streams = Vec::with_capacity(cfg.cores);
        let mut app_names = Vec::with_capacity(cfg.cores);
        let mut page_lists: Vec<Vec<VirtAddr>> = Vec::with_capacity(cfg.cores);
        for (i, launch) in launches.into_iter().enumerate() {
            assert_eq!(
                launch.object_classes.len(),
                launch.spec.objects.len(),
                "{}: one class per object",
                launch.spec.name
            );
            // Build the app's virtual address space: typed heap partitions
            // (Fig. 6) + stack.
            let mut layout = HeapLayout::new();
            let sizes = scaled_sizes(&launch.spec, launch.input, cfg.capacity_scale);
            let bases: Vec<VirtAddr> = launch
                .spec
                .objects
                .iter()
                .zip(sizes.iter())
                .enumerate()
                .map(|(oi, (_, &sz))| layout.alloc_heap(launch.object_classes[oi], sz))
                .collect();
            let stack_base = layout.grow_stack(launch.spec.stack_working_set.max(16 * 1024));
            // Program-load + instantiation order: code and stack first, then
            // the heap objects in allocation (spec) order — the order the
            // paper's modified malloc presents them to the OS (§IV-E).
            let mut pages = Vec::new();
            let push_range = |base: VirtAddr, bytes: u64, pages: &mut Vec<VirtAddr>| {
                let first = base.vpn();
                let last = VirtAddr(base.0 + bytes.max(1) - 1).vpn();
                for vpn in first..=last {
                    pages.push(VirtAddr(vpn * moca_common::addr::PAGE_SIZE));
                }
            };
            push_range(
                VirtAddr(moca_vm::layout::CODE_BASE),
                launch.spec.code_bytes,
                &mut pages,
            );
            push_range(
                stack_base,
                launch.spec.stack_working_set.max(16 * 1024),
                &mut pages,
            );
            for (base, size) in bases.iter().zip(sizes.iter()) {
                push_range(*base, *size, &mut pages);
            }
            page_lists.push(pages);
            streams.push(AppRun::new(
                &launch.spec,
                launch.input,
                cfg.capacity_scale,
                &bases,
                stack_base,
                i as u64,
            ));
            app_names.push(launch.spec.name.to_string());
            cores.push(Core::new(CoreId(i as u32), cfg.core.clone()));
            hiers.push(CoreHierarchy::new());
        }

        // Concurrent startup: apps instantiate their objects in parallel, so
        // physical allocation interleaves across apps (a deterministic
        // round-robin of the instantiation race). Interleaving happens in
        // 32-page chunks so every app's frames still cover all physical
        // page colors — fine-grained striping would alias app count against
        // the L2's page-color period and shrink its effective capacity.
        const CHUNK: usize = 32;
        let mut idx = vec![0usize; page_lists.len()];
        loop {
            let mut progressed = false;
            for (app, list) in page_lists.iter().enumerate() {
                for _ in 0..CHUNK {
                    if idx[app] < list.len() {
                        os.prefault_traced(app, list[idx[app]], &mut tel);
                        idx[app] += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        let n = cores.len();
        let channel_count = channels.len();
        let mut sys = System {
            cfg,
            cores,
            hiers,
            streams,
            app_names,
            os,
            channels,
            mapper,
            tickets: 0,
            now: 0,
            measuring: vec![true; n],
            frozen: vec![false; n],
            woken_buf: Vec::new(),
            attr_enabled: false,
            attr_resolutions: Vec::new(),
            occupancy: Vec::new(),
            migrator: None,
            tel,
            win_next: 0,
            win_start: 0,
            win_committed: vec![0; n],
            win_l2_miss: vec![0; n],
            win_busy: vec![0; channel_count],
            win_bank_act: vec![Vec::new(); channel_count],
        };
        sys.rebaseline_windows();
        sys
    }

    /// Reset window-sampling baselines to the machine's current counters
    /// (at construction and after the warmup statistics reset, which zeroes
    /// core and channel counters out from under the deltas).
    fn rebaseline_windows(&mut self) {
        self.win_start = self.now;
        self.win_next = match self.tel.window_cycles {
            Some(w) => self.now.saturating_add(w),
            None => Cycle::MAX,
        };
        for (i, core) in self.cores.iter().enumerate() {
            self.win_committed[i] = core.committed();
        }
        for (i, h) in self.hiers.iter().enumerate() {
            self.win_l2_miss[i] = h.l2_stats().misses;
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            self.win_busy[ci] = ch.stats().busy_cycles;
            self.win_bank_act[ci] = ch.bank_activates().to_vec();
        }
    }

    /// Close the current metrics window: push a snapshot of per-core IPC and
    /// L2 MPKI, per-channel queue depth and bus occupancy, and frame-pool
    /// headroom, then open the next window.
    fn sample_window(&mut self) {
        let start = self.win_start;
        let end = self.now;
        let dt = (end - start) as f64;
        // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
        let mut samples = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            // A frozen core's statistics are already snapshotted; it only
            // runs on for contention. Skip its per-core tracks (channel and
            // frame-pool tracks below still cover the whole machine).
            if self.frozen[i] {
                continue;
            }
            let committed = core.committed();
            let dc = committed.saturating_sub(self.win_committed[i]);
            self.win_committed[i] = committed;
            samples.push((
                // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                format!("ipc.core{i}"),
                if dt > 0.0 { dc as f64 / dt } else { 0.0 },
            ));
            let misses = self.hiers[i].l2_stats().misses;
            let dm = misses.saturating_sub(self.win_l2_miss[i]);
            self.win_l2_miss[i] = misses;
            let mpki = if dc > 0 {
                dm as f64 * 1000.0 / dc as f64
            } else {
                0.0
            };
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("l2_mpki.core{i}"), mpki));
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("readq.ch{ci}"), ch.read_queue_len() as f64));
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("writeq.ch{ci}"), ch.write_queue_len() as f64));
            let busy = ch.stats().busy_cycles;
            let db = busy.saturating_sub(self.win_busy[ci]);
            self.win_busy[ci] = busy;
            samples.push((
                // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                format!("bus_util.ch{ci}"),
                if dt > 0.0 { db as f64 / dt } else { 0.0 },
            ));
            // Per-bank occupancy: row activations in this window, one
            // counter track per bank (`bank_act.ch0.b3` in the trace).
            for (b, &acts) in ch.bank_activates().iter().enumerate() {
                let prev = self.win_bank_act[ci].get(b).copied().unwrap_or(0);
                self.win_bank_act[ci][b] = acts;
                samples.push((
                    // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                    format!("bank_act.ch{ci}.b{b}"),
                    acts.saturating_sub(prev) as f64,
                ));
            }
        }
        for (kind, free) in self.os.frames().headroom() {
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("free_frames.{}", kind.name()), free as f64));
        }
        self.tel.push_window(WindowSnapshot {
            start,
            end,
            samples,
        });
        self.sample_occupancy();
        self.win_start = end;
        self.win_next = match self.tel.window_cycles {
            Some(w) => end.saturating_add(w),
            None => Cycle::MAX,
        };
    }

    /// Enable per-core cycle attribution (CPI stacks, per-object stall
    /// ledgers, occupancy timeline). Call before `run`. Attribution is
    /// strictly observational: the simulated machine never reads any of it,
    /// so an attributed run is bit-identical to an unattributed one.
    pub fn enable_attribution(&mut self) {
        self.attr_enabled = true;
        for c in &mut self.cores {
            c.enable_attribution();
        }
    }

    /// Push one occupancy-timeline sample (attribution runs only).
    fn sample_occupancy(&mut self) {
        if !self.attr_enabled {
            return;
        }
        let (promotions, demotions) = self
            .migration_stats()
            .map_or((0, 0), |s| (s.promotions, s.demotions));
        let free_frames = self
            .os
            .frames()
            .headroom()
            .into_iter()
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            .map(|(kind, free)| (kind.name().to_string(), free))
            .collect();
        self.occupancy.push(OccupancySample {
            at: self.now,
            free_frames,
            promotions,
            demotions,
        });
    }

    /// Enable dynamic page migration with `cfg`. Call before `run`.
    pub fn attach_migration(&mut self, cfg: MigrationConfig) {
        self.migrator = Some(Migrator::new(cfg));
    }

    /// Migration statistics, if migration is enabled.
    pub fn migration_stats(&self) -> Option<crate::migration::MigrationStats> {
        self.migrator.as_ref().map(|m| m.stats())
    }

    /// OS state (placement inspection in tests).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The attached telemetry context.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Take the telemetry context out of the system (end of run), leaving a
    /// disabled one behind.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::replace(&mut self.tel, Telemetry::disabled())
    }

    /// One simulator cycle: DRAM completions, deferred writes, core
    /// pipelines, event skip. Read latencies are accumulated into `mem`.
    fn step(&mut self, mem: &mut MemMetrics, comps: &mut Vec<Completion>) {
        self.now += 1;
        let now = self.now;
        let n = self.cores.len();
        let profile = self.tel.host_profiling();

        // 1. DRAM completions → cache fills → core wakeups.
        comps.clear();
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        for (ci, ch) in self.channels.iter_mut().enumerate() {
            // Idle gating: a channel with no queued or in-flight work only
            // needs a tick on the cycle its refresh window opens.
            if ch.tick_is_noop(now) {
                continue;
            }
            ch.tick_tel(now, comps, &mut self.tel, ci as u32);
        }
        for comp in comps.iter() {
            let ci = comp.core.0 as usize;
            if self.measuring[ci] {
                mem.reads += 1;
                let lat = comp.queue_cycles + comp.service_cycles;
                mem.total_read_latency_cycles += lat;
                mem.per_core_read_latency[ci] += lat;
            }
            self.tel
                .observe_read_latency(comp.queue_cycles, comp.queue_cycles + comp.service_cycles);
            self.woken_buf.clear();
            self.hiers[ci].on_completion_into(
                now,
                comp,
                &mut self.channels,
                &self.mapper,
                &mut self.woken_buf,
            );
            for &t in &self.woken_buf {
                self.cores[ci].complete(t, now);
            }
            if self.attr_enabled && !self.woken_buf.is_empty() {
                // Which tier served this read and why it took as long as it
                // did; one resolution per woken ticket, applied after the
                // pipeline ticks below.
                let (ch, _) = self.mapper.map(comp.line);
                let tier = tier_index(self.channels[ch].config().timing.kind);
                let mech = Mechanism::classify(
                    comp.refresh_delayed,
                    comp.bank_conflict,
                    comp.queue_cycles,
                );
                for &t in &self.woken_buf {
                    self.attr_resolutions.push((ci, t, tier, mech));
                }
            }
            if let Some(m) = &mut self.migrator {
                m.record_read(comp.line);
            }
        }
        if let Some(t) = t0 {
            self.tel.components.dram += t.elapsed();
        }

        // Page-migration epoch boundary. The migrator moves out of `self`
        // for the epoch so it can borrow the rest of the system mutably;
        // it is put back below.
        if let Some(mut m) = self.migrator.take_if(|m| m.epoch_due(now)) {
            // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
            let t0 = profile.then(std::time::Instant::now);
            m.run_epoch(
                now,
                &mut self.os,
                &mut self.hiers,
                &mut self.channels,
                &self.mapper,
            );
            let s = m.stats();
            self.tel.record(
                now,
                Event::MigrationEpoch {
                    epoch: s.epochs,
                    promotions: s.promotions,
                    demotions: s.demotions,
                },
            );
            self.migrator = Some(m);
            if let Some(t) = t0 {
                self.tel.components.vm += t.elapsed();
            }
        }

        // 2. Retry deferred writebacks/store-fills.
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        for h in &mut self.hiers {
            if h.has_deferred() {
                h.flush_deferred(now, &mut self.channels, &self.mapper);
            }
        }
        if let Some(t) = t0 {
            self.tel.components.cache += t.elapsed();
        }

        // 3. Core pipelines.
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        for i in 0..n {
            // A fully drained core (stream exhausted, ROB empty) has nothing
            // left to commit, issue, or dispatch: its tick would only bump
            // dead cycle counters, so skip it.
            if self.cores[i].finished() {
                continue;
            }
            let mut port = Port {
                hier: &mut self.hiers[i],
                channels: &mut self.channels,
                mapper: &self.mapper,
                os: &mut self.os,
                core_idx: i,
                tickets: &mut self.tickets,
                tel: &mut self.tel,
            };
            self.cores[i].tick(now, &mut port, &mut self.streams[i]);
        }
        if let Some(t) = t0 {
            self.tel.components.cpu += t.elapsed();
        }

        // Apply the attribution resolutions collected in phase 1. This must
        // run after the pipeline ticks: a core woken by a completion may
        // still charge this cycle's skipped-window stall to that ticket.
        for k in 0..self.attr_resolutions.len() {
            let (ci, ticket, tier, mech) = self.attr_resolutions[k];
            self.cores[ci].attr_resolve(ticket, tier, mech);
        }
        self.attr_resolutions.clear();

        // 3½. Periodic metrics window.
        if self.tel.enabled() && self.now >= self.win_next {
            self.sample_window();
        }

        // 4. Event skip: if every core is stalled on memory, jump to the
        // next completion/command boundary. One combined blocked+next-event
        // pass per core (short-circuiting on the first awake core) and an
        // O(1) cached next-event query per channel — no bank or in-flight
        // scans on this path.
        let mut all_blocked = true;
        let mut next = Cycle::MAX;
        for c in &self.cores {
            match c.sleep_state(now) {
                None => {
                    all_blocked = false;
                    break;
                }
                Some(e) => next = next.min(e),
            }
        }
        if all_blocked {
            for ch in &self.channels {
                if let Some(c) = ch.next_event_after(now) {
                    next = next.min(c);
                }
            }
            // The drain phase terminates through these events: every blocked
            // core waits on a channel completion (tracked by the channel
            // next-events) or a core-local timer. Neither pending means the
            // machine can never advance — fail loudly rather than spinning
            // into the generic run watchdog.
            assert!(
                next != Cycle::MAX,
                "event-skip deadlock at cycle {now}: every core is blocked on memory \
                 but no channel completion or core-local event is pending"
            );
            if next > now + 1 {
                self.now = next - 1;
            }
        }
    }

    /// Run until every core commits `instr_target` instructions; returns the
    /// full metrics bundle. Cores that reach the target keep executing (and
    /// contending for memory) until the slowest core finishes, but their
    /// statistics are frozen at the target — the usual multi-program
    /// simulation methodology.
    pub fn run(&mut self, instr_target: u64) -> RunResult {
        self.run_warmed(0, instr_target)
    }

    /// Fast-forward for `warmup` committed instructions per core (warming
    /// caches, TLBs, and page tables — the paper's SimPoint fast-forward),
    /// zero all statistics, then measure `instr_target` instructions.
    pub fn run_warmed(&mut self, warmup: u64, instr_target: u64) -> RunResult {
        assert!(instr_target > 0);
        let n = self.cores.len();
        let mut comps: Vec<Completion> = Vec::new();
        let mut mem = MemMetrics {
            per_core_read_latency: vec![0; n],
            ..MemMetrics::default()
        };
        // Generous watchdog: no workload needs more than ~4000 cycles per
        // instruction even fully serialized on LPDDR2.
        let watchdog = (warmup + instr_target).saturating_mul(4000).max(10_000_000);

        if warmup > 0 {
            // Metrics are discarded after warmup; suppress accumulation.
            self.measuring.iter_mut().for_each(|m| *m = false);
            while self.cores.iter().any(|c| c.committed() < warmup) {
                self.step(&mut mem, &mut comps);
                assert!(self.now < watchdog, "warmup watchdog tripped");
            }
            self.measuring.iter_mut().for_each(|m| *m = true);
            for c in &mut self.cores {
                c.reset_stats();
            }
            for ch in &mut self.channels {
                ch.reset_stats();
            }
            mem = MemMetrics {
                per_core_read_latency: vec![0; n],
                ..MemMetrics::default()
            };
            // The resets zeroed the counters the window deltas are taken
            // against; restart the current window from here.
            self.rebaseline_windows();
            self.occupancy.clear();
        }
        let measure_start = self.now;
        self.sample_occupancy();

        type FrozenCore = (moca_cpu::CoreStats, Cycle, Option<AttrSnapshot>);
        let mut frozen: Vec<Option<FrozenCore>> = vec![None; n];
        while frozen.iter().any(Option::is_none) {
            self.step(&mut mem, &mut comps);
            assert!(self.now < watchdog, "simulation watchdog tripped");
            let mut newly_frozen = false;
            for (i, slot) in frozen.iter_mut().enumerate() {
                if slot.is_none() && self.cores[i].committed() >= instr_target {
                    *slot = Some((
                        self.cores[i].stats().clone(),
                        self.now - measure_start,
                        self.cores[i].attr_snapshot(),
                    ));
                    newly_frozen = true;
                    self.measuring[i] = false;
                    self.frozen[i] = true;
                    let committed = self.cores[i].committed();
                    self.tel.record(
                        self.now,
                        Event::CoreWindowFrozen {
                            core: i as u32,
                            committed,
                            window_cycles: self.now - measure_start,
                        },
                    );
                }
            }
            if newly_frozen {
                // Occupancy-timeline point at every core-freeze boundary, so
                // attributed runs get a timeline even without periodic
                // telemetry windows.
                self.sample_occupancy();
            }
        }

        let runtime = self.now - measure_start;
        mem.runtime_cycles = runtime;
        mem.channels = self
            .channels
            .iter()
            .map(|ch| ChannelReport {
                kind: ch.config().timing.kind,
                capacity_bytes: ch.config().capacity_bytes,
                stats: *ch.stats(),
                energy: ch.energy(runtime),
            })
            .collect();

        let per_core = frozen
            .into_iter()
            .zip(self.app_names.iter())
            .map(|(f, name)| {
                let (stats, finished_at, attr) = f.expect("all cores frozen");
                CoreResult {
                    app: name.clone(),
                    stats,
                    finished_at,
                    attr,
                }
            })
            .collect();

        RunResult {
            policy: self.os.policy_name().to_string(),
            mem_label: self.cfg.mem.label(),
            runtime_cycles: runtime,
            per_core,
            mem,
            placement: self.os.take_placement(),
            core_width: self.cfg.core.width,
            migration: self.migration_stats(),
            occupancy: if self.attr_enabled {
                Some(std::mem::take(&mut self.occupancy))
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemSystemConfig;
    use moca_common::ModuleKind;
    use moca_vm::policy::FirstTouchPolicy;
    use moca_workloads::app_by_name;

    fn run_app(name: &str, target: u64) -> RunResult {
        let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        let launch = AppLaunch::untyped(app_by_name(name), InputSet::reference());
        let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
        sys.run_warmed(target, target)
    }

    #[test]
    fn single_core_run_completes_and_reports() {
        let r = run_app("gcc", 40_000);
        assert_eq!(r.per_core.len(), 1);
        assert!(r.per_core[0].stats.committed >= 40_000);
        assert!(r.runtime_cycles > 0);
        assert!(r.placement.total_pages() > 0);
        assert!(r.mem.energy_j() > 0.0);
        assert_eq!(r.mem.channels.len(), 4);
    }

    #[test]
    fn deterministic_repeat() {
        let a = run_app("mcf", 30_000);
        let b = run_app("mcf", 30_000);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.mem.reads, b.mem.reads);
        assert_eq!(
            a.mem.total_read_latency_cycles,
            b.mem.total_read_latency_cycles
        );
        assert_eq!(a.per_core[0].stats.committed, b.per_core[0].stats.committed);
        assert_eq!(
            a.per_core[0].stats.head_stall_cycles,
            b.per_core[0].stats.head_stall_cycles
        );
    }

    #[test]
    fn memory_intensive_app_misses_more_than_quiet_app() {
        let mcf = run_app("mcf", 60_000);
        let gcc = run_app("gcc", 300_000);
        assert!(
            mcf.per_core[0].stats.app_mpki() > 4.0 * gcc.per_core[0].stats.app_mpki(),
            "mcf MPKI {} vs gcc {}",
            mcf.per_core[0].stats.app_mpki(),
            gcc.per_core[0].stats.app_mpki()
        );
    }

    #[test]
    fn chase_app_stalls_more_per_miss_than_stream_app() {
        let mcf = run_app("mcf", 40_000);
        let lbm = run_app("lbm", 40_000);
        let s_mcf = mcf.per_core[0].stats.app_stall_per_miss();
        let s_lbm = lbm.per_core[0].stats.app_stall_per_miss();
        assert!(
            s_mcf > 2.0 * s_lbm,
            "mcf stall/miss {s_mcf:.1} vs lbm {s_lbm:.1}"
        );
    }

    #[test]
    fn quad_core_run_completes() {
        let cfg = SystemConfig::quad_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        let launches = ["mcf", "lbm", "gcc", "sift"]
            .iter()
            .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
            .collect();
        let mut sys = System::new(cfg, launches, Box::new(FirstTouchPolicy));
        let r = sys.run(20_000);
        assert_eq!(r.per_core.len(), 4);
        for c in &r.per_core {
            assert!(c.stats.committed >= 20_000, "{} did not finish", c.app);
        }
        assert!(r.system_ipc() > 0.0);
        assert!(r.system_edp() > 0.0);
    }

    #[test]
    fn rldram_is_faster_than_lpddr_for_latency_app() {
        let mk = |kind| {
            let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(kind));
            let launch = AppLaunch::untyped(app_by_name("mcf"), InputSet::reference());
            let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
            sys.run(30_000)
        };
        let rl = mk(ModuleKind::Rldram3);
        let lp = mk(ModuleKind::Lpddr2);
        assert!(
            rl.runtime_cycles < lp.runtime_cycles,
            "RLDRAM {} vs LPDDR {}",
            rl.runtime_cycles,
            lp.runtime_cycles
        );
        assert!(rl.mem.avg_read_latency() < lp.mem.avg_read_latency());
    }
}
