//! The whole machine: cores + hierarchies + OS + channels, and the run loop.

use crate::config::SystemConfig;
use crate::hierarchy::CoreHierarchy;
use crate::metrics::{ChannelReport, CoreResult, MemMetrics, RunResult};
use crate::migration::{MigrationConfig, Migrator};
use crate::os::Os;
use crate::par_step::{resolve_step_threads, SleepSlot, StepPool, TickCtx};
use moca_common::ids::MemTag;
use moca_common::wheel::EventWheel;
use moca_common::{CoreId, Cycle, ObjectClass, VirtAddr};
use moca_cpu::{Core, MemPort, MemReply, StoreReply};
use moca_dram::{AddressMapper, Channel, Completion};
use moca_telemetry::attribution::{tier_index, AttrSnapshot, Mechanism, OccupancySample};
use moca_telemetry::{Event, Telemetry, WindowSnapshot};
use moca_vm::layout::HeapLayout;
use moca_vm::{FrameSpace, PagePlacementPolicy};
use moca_workloads::gen::scaled_sizes;
use moca_workloads::{AppRun, AppSpec, InputSet};

/// One application to launch on one core.
pub struct AppLaunch {
    /// The benchmark.
    pub spec: AppSpec,
    /// Input set (training or reference).
    pub input: InputSet,
    /// Virtual-heap partition per object, in `spec.objects` order. MOCA
    /// passes its per-object classification; baselines (which have no typed
    /// heap) pass `NonIntensive` for everything — the *policy* then decides
    /// placement from other information.
    pub object_classes: Vec<ObjectClass>,
}

impl AppLaunch {
    /// Launch with every object in the default (untyped) partition.
    pub fn untyped(spec: AppSpec, input: InputSet) -> AppLaunch {
        let n = spec.objects.len();
        AppLaunch {
            spec,
            input,
            object_classes: vec![ObjectClass::NonIntensive; n],
        }
    }
}

/// The simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    hiers: Vec<CoreHierarchy>,
    streams: Vec<AppRun>,
    app_names: Vec<String>,
    os: Os,
    channels: Vec<Channel>,
    mapper: AddressMapper,
    /// Per-core ticket counters. Tickets only need to be unique within one
    /// core (completions route by `comp.core` before the ticket is looked
    /// up), and per-core counters keep stepping free of cross-core state.
    tickets: Vec<u64>,
    now: Cycle,
    /// Per-core next cycle at which the core's pipeline can make progress:
    /// `now + 1` while runnable, the core-local/memory wake event while
    /// blocked, `Cycle::MAX` once drained. The step loop only ticks cores
    /// whose `wake_at` has arrived; everything that can unblock a core
    /// (DRAM completions, its own tick) updates this array.
    wake_at: Vec<Cycle>,
    /// Per-core committed-instruction mirror, refreshed after each tick
    /// (dense array so the run loops never walk the cores).
    committed: Vec<u64>,
    /// Per-core flag: committed ≥ `commit_target` (monotonic per phase).
    crossed: Vec<bool>,
    /// Number of cores with `crossed == false`; the warmup loop runs while
    /// this is non-zero.
    below_target: usize,
    /// Commit threshold the step loop checks ticked cores against
    /// (warmup instructions, then the measurement target).
    commit_target: u64,
    /// Set by `step` whenever some core first crossed `commit_target`;
    /// the measure loop only scans for cores to freeze when it is set.
    commit_crossed: bool,
    /// Number of cores that have fully drained (stream exhausted, ROB
    /// empty). Event skip is disabled once any core is finished, matching
    /// the drain-phase semantics of the linear scan this replaced.
    finished_count: usize,
    /// Global event wheel over `cores.len() + channels.len()` components:
    /// component `i < cores` is core `i`'s wake event, component
    /// `cores + c` is channel `c`'s next-event estimate. Replaces the
    /// per-step linear scans over all cores and channels on the
    /// all-blocked path.
    wheel: EventWheel,
    /// Per-channel `state_version` at the time of the channel's last wheel
    /// post; the skip path only re-queries `next_event_after` for channels
    /// whose version moved.
    chan_posted: Vec<u64>,
    /// Bitmask (one bit per core) of hierarchies that may hold deferred
    /// writebacks/store-fills; phase 2 walks set bits instead of asking
    /// every hierarchy every cycle.
    deferred_words: Vec<u64>,
    /// Number of `step` calls so far — the cycles the machine actually
    /// executed (event-skipped windows take no steps). With `steps_at_tick`
    /// this tells a waking core how many stepped cycles it slept through,
    /// which an ungated loop would have ticked it on (`Core::tick_gated`).
    steps: u64,
    /// Per-core value of `steps` at the core's last pipeline tick.
    steps_at_tick: Vec<u64>,
    /// Worker threads for phase 3 (1 = sequential). See [`crate::par_step`];
    /// results are bit-identical for any value.
    step_threads: usize,
    /// This cycle's awake-core list (indices with `wake_at <= now`), in
    /// ascending order — the tick and bookkeeping passes share it.
    awake: Vec<usize>,
    /// Per-core tick outcome, written by the tick pass (possibly on worker
    /// threads) and replayed in core order by the bookkeeping pass.
    sleeps: Vec<SleepSlot>,
    /// Per-core `has_deferred` flag captured right after the core's tick.
    hier_deferred: Vec<bool>,
    /// Per-core flag: still inside its measurement window. Cores that reach
    /// the instruction target keep running (to preserve contention) but
    /// their memory latencies stop counting toward the metrics.
    measuring: Vec<bool>,
    /// Per-core flag: statistics snapshot already frozen (the core passed
    /// its instruction target). Frozen cores keep executing for contention
    /// but are skipped by per-core window sampling.
    frozen: Vec<bool>,
    /// Reusable buffer for the tickets woken by one DRAM completion (the
    /// completion path runs once per off-chip read; keeping the buffer on
    /// the system makes the step loop allocation-free).
    woken_buf: Vec<u64>,
    /// Cycle attribution enabled (CPI stacks + per-object stall ledgers on
    /// every core). Off by default; purely observational either way.
    attr_enabled: bool,
    /// Reusable buffer of `(core, ticket, tier, mechanism)` resolutions
    /// collected while delivering DRAM completions. Applied to the cores
    /// only *after* their pipeline ticks, because a woken core may still
    /// charge this cycle's skipped-window stall to the completed ticket.
    attr_resolutions: Vec<(usize, u64, usize, Mechanism)>,
    /// Occupancy timeline (attribution runs only): free-frame headroom per
    /// module kind plus cumulative migration counts over the measured run.
    occupancy: Vec<OccupancySample>,
    /// Optional dynamic page-migration engine (the runtime-monitoring
    /// baseline of §IV-E / related work).
    migrator: Option<Migrator>,
    /// Observability context. Strictly observational: nothing in the
    /// simulated machine ever reads it, so runs with telemetry enabled are
    /// bit-identical to runs without.
    tel: Telemetry,
    /// Next cycle at which a metrics window closes.
    win_next: Cycle,
    /// First cycle of the currently open metrics window.
    win_start: Cycle,
    /// Per-core committed-instruction baseline at window start.
    win_committed: Vec<u64>,
    /// Per-core L2 miss baseline at window start.
    win_l2_miss: Vec<u64>,
    /// Per-channel busy-cycle baseline at window start.
    win_busy: Vec<Cycle>,
    /// Per-channel, per-bank activate-count baseline at window start.
    win_bank_act: Vec<Vec<u64>>,
}

pub(crate) struct Port<'a> {
    pub(crate) hier: &'a mut CoreHierarchy,
    pub(crate) channels: &'a mut [Channel],
    pub(crate) mapper: &'a AddressMapper,
    pub(crate) os: &'a mut Os,
    pub(crate) core_idx: usize,
    pub(crate) tickets: &'a mut u64,
    pub(crate) tel: &'a mut Telemetry,
}

impl Port<'_> {
    /// Emit an MSHR-exhaustion stall if that is what the hierarchy's last
    /// `Retry` meant (channel-full retries stay silent: they are visible as
    /// queue-depth window samples instead).
    fn note_retry(&mut self, now: Cycle, core: CoreId, reply: &MemReply) {
        if matches!(reply, MemReply::Retry { mshr_full: true }) {
            self.tel.record(now, Event::MshrFullStall { core: core.0 });
        }
    }
}

impl MemPort for Port<'_> {
    fn load(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> MemReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        let reply = self.hier.load(
            now,
            core,
            tr.pa,
            tag,
            tr.extra,
            self.channels,
            self.mapper,
            self.tickets,
        );
        self.note_retry(now, core, &reply);
        reply
    }

    fn store(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> StoreReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        self.hier.store(
            now,
            core,
            tr.pa,
            tag,
            self.channels,
            self.mapper,
            self.tickets,
        )
    }

    fn ifetch(&mut self, now: Cycle, core: CoreId, va: VirtAddr) -> MemReply {
        let tr = self.os.translate_traced(self.core_idx, va, now, self.tel);
        let reply = self
            .hier
            .ifetch(now, core, tr.pa, self.channels, self.mapper, self.tickets);
        self.note_retry(now, core, &reply);
        reply
    }
}

impl System {
    /// Build a machine running `launches` (one per core) under `policy`.
    pub fn new(
        cfg: SystemConfig,
        launches: Vec<AppLaunch>,
        policy: Box<dyn PagePlacementPolicy>,
    ) -> System {
        System::new_with_telemetry(cfg, launches, policy, Telemetry::disabled())
    }

    /// [`System::new`] with an observability context attached. Telemetry is
    /// write-only for the simulation, so results are identical to an
    /// untraced run; instantiation-time placements are captured at cycle 0.
    pub fn new_with_telemetry(
        cfg: SystemConfig,
        launches: Vec<AppLaunch>,
        policy: Box<dyn PagePlacementPolicy>,
        mut tel: Telemetry,
    ) -> System {
        assert_eq!(
            launches.len(),
            cfg.cores,
            "one application per core required"
        );
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"));
        let channels: Vec<Channel> = cfg
            .mem
            .channel_configs(cfg.capacity_scale)
            .into_iter()
            .map(Channel::new)
            .collect();
        let mapper = cfg.mem.mapper(cfg.capacity_scale);
        let frames = FrameSpace::new(cfg.mem.frame_regions(cfg.capacity_scale));
        let mut os = Os::new(
            frames,
            policy,
            cfg.cores,
            cfg.tlb_entries,
            cfg.tlb_miss_penalty,
            cfg.page_fault_penalty,
        );

        let mut cores = Vec::with_capacity(cfg.cores);
        let mut hiers = Vec::with_capacity(cfg.cores);
        let mut streams = Vec::with_capacity(cfg.cores);
        let mut app_names = Vec::with_capacity(cfg.cores);
        let mut page_lists: Vec<Vec<VirtAddr>> = Vec::with_capacity(cfg.cores);
        for (i, launch) in launches.into_iter().enumerate() {
            assert_eq!(
                launch.object_classes.len(),
                launch.spec.objects.len(),
                "{}: one class per object",
                launch.spec.name
            );
            // Build the app's virtual address space: typed heap partitions
            // (Fig. 6) + stack.
            let mut layout = HeapLayout::new();
            let sizes = scaled_sizes(&launch.spec, launch.input, cfg.capacity_scale);
            let bases: Vec<VirtAddr> = launch
                .spec
                .objects
                .iter()
                .zip(sizes.iter())
                .enumerate()
                .map(|(oi, (_, &sz))| layout.alloc_heap(launch.object_classes[oi], sz))
                .collect();
            let stack_base = layout.grow_stack(launch.spec.stack_working_set.max(16 * 1024));
            // Program-load + instantiation order: code and stack first, then
            // the heap objects in allocation (spec) order — the order the
            // paper's modified malloc presents them to the OS (§IV-E).
            let mut pages = Vec::new();
            let push_range = |base: VirtAddr, bytes: u64, pages: &mut Vec<VirtAddr>| {
                let first = base.vpn();
                let last = VirtAddr(base.0 + bytes.max(1) - 1).vpn();
                for vpn in first..=last {
                    pages.push(VirtAddr(vpn * moca_common::addr::PAGE_SIZE));
                }
            };
            push_range(
                VirtAddr(moca_vm::layout::CODE_BASE),
                launch.spec.code_bytes,
                &mut pages,
            );
            push_range(
                stack_base,
                launch.spec.stack_working_set.max(16 * 1024),
                &mut pages,
            );
            for (base, size) in bases.iter().zip(sizes.iter()) {
                push_range(*base, *size, &mut pages);
            }
            page_lists.push(pages);
            streams.push(AppRun::new(
                &launch.spec,
                launch.input,
                cfg.capacity_scale,
                &bases,
                stack_base,
                i as u64,
            ));
            app_names.push(launch.spec.name.to_string());
            cores.push(Core::new(CoreId(i as u32), cfg.core.clone()));
            hiers.push(CoreHierarchy::new());
        }

        // Concurrent startup: apps instantiate their objects in parallel, so
        // physical allocation interleaves across apps (a deterministic
        // round-robin of the instantiation race). Interleaving happens in
        // 32-page chunks so every app's frames still cover all physical
        // page colors — fine-grained striping would alias app count against
        // the L2's page-color period and shrink its effective capacity.
        const CHUNK: usize = 32;
        let mut idx = vec![0usize; page_lists.len()];
        loop {
            let mut progressed = false;
            for (app, list) in page_lists.iter().enumerate() {
                for _ in 0..CHUNK {
                    if idx[app] < list.len() {
                        os.prefault_traced(app, list[idx[app]], &mut tel);
                        idx[app] += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        #[cfg(debug_assertions)]
        os.frames()
            .check_invariants()
            .unwrap_or_else(|e| panic!("frame allocator invariants after startup prefault: {e}"));

        let n = cores.len();
        let channel_count = channels.len();
        let mut sys = System {
            cfg,
            cores,
            hiers,
            streams,
            app_names,
            os,
            channels,
            mapper,
            tickets: vec![0; n],
            now: 0,
            wake_at: vec![0; n],
            committed: vec![0; n],
            crossed: vec![false; n],
            below_target: n,
            commit_target: 0,
            commit_crossed: false,
            finished_count: 0,
            wheel: EventWheel::new(n + channel_count),
            chan_posted: vec![u64::MAX; channel_count],
            deferred_words: vec![0; n.div_ceil(64)],
            steps: 0,
            steps_at_tick: vec![0; n],
            step_threads: resolve_step_threads(None),
            awake: Vec::with_capacity(n),
            sleeps: vec![SleepSlot::Runnable; n],
            hier_deferred: vec![false; n],
            measuring: vec![true; n],
            frozen: vec![false; n],
            woken_buf: Vec::new(),
            attr_enabled: false,
            attr_resolutions: Vec::new(),
            occupancy: Vec::new(),
            migrator: None,
            tel,
            win_next: 0,
            win_start: 0,
            win_committed: vec![0; n],
            win_l2_miss: vec![0; n],
            win_busy: vec![0; channel_count],
            win_bank_act: vec![Vec::new(); channel_count],
        };
        sys.rebaseline_windows();
        sys
    }

    /// Reset window-sampling baselines to the machine's current counters
    /// (at construction and after the warmup statistics reset, which zeroes
    /// core and channel counters out from under the deltas).
    fn rebaseline_windows(&mut self) {
        self.win_start = self.now;
        self.win_next = match self.tel.window_cycles {
            Some(w) => self.now.saturating_add(w),
            None => Cycle::MAX,
        };
        for (i, core) in self.cores.iter().enumerate() {
            self.win_committed[i] = core.committed();
        }
        for (i, h) in self.hiers.iter().enumerate() {
            self.win_l2_miss[i] = h.l2_stats().misses;
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            self.win_busy[ci] = ch.stats().busy_cycles;
            self.win_bank_act[ci] = ch.bank_activates().to_vec();
        }
    }

    /// Close the current metrics window: push a snapshot of per-core IPC and
    /// L2 MPKI, per-channel queue depth and bus occupancy, and frame-pool
    /// headroom, then open the next window.
    fn sample_window(&mut self) {
        let start = self.win_start;
        let end = self.now;
        let dt = (end - start) as f64;
        // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
        let mut samples = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            // A frozen core's statistics are already snapshotted; it only
            // runs on for contention. Skip its per-core tracks (channel and
            // frame-pool tracks below still cover the whole machine).
            if self.frozen[i] {
                continue;
            }
            let committed = core.committed();
            let dc = committed.saturating_sub(self.win_committed[i]);
            self.win_committed[i] = committed;
            samples.push((
                // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                format!("ipc.core{i}"),
                if dt > 0.0 { dc as f64 / dt } else { 0.0 },
            ));
            let misses = self.hiers[i].l2_stats().misses;
            let dm = misses.saturating_sub(self.win_l2_miss[i]);
            self.win_l2_miss[i] = misses;
            let mpki = if dc > 0 {
                dm as f64 * 1000.0 / dc as f64
            } else {
                0.0
            };
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("l2_mpki.core{i}"), mpki));
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("readq.ch{ci}"), ch.read_queue_len() as f64));
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("writeq.ch{ci}"), ch.write_queue_len() as f64));
            let busy = ch.stats().busy_cycles;
            let db = busy.saturating_sub(self.win_busy[ci]);
            self.win_busy[ci] = busy;
            samples.push((
                // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                format!("bus_util.ch{ci}"),
                if dt > 0.0 { db as f64 / dt } else { 0.0 },
            ));
            // Per-bank occupancy: row activations in this window, one
            // counter track per bank (`bank_act.ch0.b3` in the trace).
            for (b, &acts) in ch.bank_activates().iter().enumerate() {
                let prev = self.win_bank_act[ci].get(b).copied().unwrap_or(0);
                self.win_bank_act[ci][b] = acts;
                samples.push((
                    // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
                    format!("bank_act.ch{ci}.b{b}"),
                    acts.saturating_sub(prev) as f64,
                ));
            }
        }
        for (kind, free) in self.os.frames().headroom() {
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            samples.push((format!("free_frames.{}", kind.name()), free as f64));
        }
        self.tel.push_window(WindowSnapshot {
            start,
            end,
            samples,
        });
        self.sample_occupancy();
        self.win_start = end;
        self.win_next = match self.tel.window_cycles {
            Some(w) => end.saturating_add(w),
            None => Cycle::MAX,
        };
    }

    /// Enable per-core cycle attribution (CPI stacks, per-object stall
    /// ledgers, occupancy timeline). Call before `run`. Attribution is
    /// strictly observational: the simulated machine never reads any of it,
    /// so an attributed run is bit-identical to an unattributed one.
    pub fn enable_attribution(&mut self) {
        self.attr_enabled = true;
        for c in &mut self.cores {
            c.enable_attribution();
        }
    }

    /// Push one occupancy-timeline sample (attribution runs only).
    fn sample_occupancy(&mut self) {
        if !self.attr_enabled {
            return;
        }
        let (promotions, demotions) = self
            .migration_stats()
            .map_or((0, 0), |s| (s.promotions, s.demotions));
        let free_frames = self
            .os
            .frames()
            .headroom()
            .into_iter()
            // moca-lint: allow(hot-alloc): window-rate sampling path — runs once per metrics window, not per cycle
            .map(|(kind, free)| (kind.name().to_string(), free))
            .collect();
        self.occupancy.push(OccupancySample {
            at: self.now,
            free_frames,
            promotions,
            demotions,
        });
    }

    /// Enable dynamic page migration with `cfg`. Call before `run`.
    pub fn attach_migration(&mut self, cfg: MigrationConfig) {
        self.migrator = Some(Migrator::new(cfg));
    }

    /// Migration statistics, if migration is enabled.
    pub fn migration_stats(&self) -> Option<crate::migration::MigrationStats> {
        self.migrator.as_ref().map(|m| m.stats())
    }

    /// OS state (placement inspection in tests).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The attached telemetry context.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Take the telemetry context out of the system (end of run), leaving a
    /// disabled one behind.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::replace(&mut self.tel, Telemetry::disabled())
    }

    /// One simulator cycle: DRAM completions, deferred writes, core
    /// pipelines, event skip. Read latencies are accumulated into `mem`.
    /// Capture the raw-parts view of phase 3's state for one cycle's
    /// parallel fan-out.
    fn tick_ctx(&mut self, now: Cycle) -> TickCtx {
        TickCtx {
            cores: self.cores.as_mut_ptr(),
            hiers: self.hiers.as_mut_ptr(),
            streams: self.streams.as_mut_ptr(),
            tickets: self.tickets.as_mut_ptr(),
            steps_at_tick: self.steps_at_tick.as_mut_ptr(),
            committed: self.committed.as_mut_ptr(),
            sleeps: self.sleeps.as_mut_ptr(),
            hier_deferred: self.hier_deferred.as_mut_ptr(),
            // moca-lint: allow(det-taint): raw-parts capture for the step pool; the pointers index disjoint per-core state and never become sim-visible values
            awake: self.awake.as_ptr(),
            awake_len: self.awake.len(),
            channels: self.channels.as_mut_ptr(),
            channels_len: self.channels.len(),
            mapper: &self.mapper,
            os: &mut self.os,
            tel: &mut self.tel,
            now,
            steps: self.steps,
        }
    }

    fn step(&mut self, mem: &mut MemMetrics, comps: &mut Vec<Completion>, pool: Option<&StepPool>) {
        self.now += 1;
        self.steps += 1;
        let now = self.now;
        let n = self.cores.len();
        let profile = self.tel.host_profiling();

        // 1. DRAM completions → cache fills → core wakeups.
        comps.clear();
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        for (ci, ch) in self.channels.iter_mut().enumerate() {
            // Idle gating: a channel with no queued or in-flight work only
            // needs a tick on the cycle its refresh window opens.
            if ch.tick_is_noop(now) {
                continue;
            }
            ch.tick_tel(now, comps, &mut self.tel, ci as u32);
        }
        for comp in comps.iter() {
            let ci = comp.core.0 as usize;
            if self.measuring[ci] {
                mem.reads += 1;
                let lat = comp.queue_cycles + comp.service_cycles;
                mem.total_read_latency_cycles += lat;
                mem.per_core_read_latency[ci] += lat;
            }
            self.tel
                .observe_read_latency(comp.queue_cycles, comp.queue_cycles + comp.service_cycles);
            self.woken_buf.clear();
            self.hiers[ci].on_completion_into(
                now,
                comp,
                &mut self.channels,
                &self.mapper,
                &mut self.woken_buf,
            );
            for &t in &self.woken_buf {
                self.cores[ci].complete(t, now);
            }
            // The fill may have evicted a dirty line the channel refused:
            // flag the hierarchy for the deferred-retry pass either way.
            if self.hiers[ci].has_deferred() {
                self.deferred_words[ci / 64] |= 1 << (ci % 64);
            }
            if !self.woken_buf.is_empty() && !self.cores[ci].finished() && self.wake_at[ci] > now {
                // A completed ticket can unblock the pipeline this very
                // cycle; pull the core out of its sleep.
                self.wake_at[ci] = now;
            }
            if self.attr_enabled && !self.woken_buf.is_empty() {
                // Which tier served this read and why it took as long as it
                // did; one resolution per woken ticket, applied after the
                // pipeline ticks below.
                let (ch, _) = self.mapper.map(comp.line);
                let tier = tier_index(self.channels[ch].config().timing.kind);
                let mech = Mechanism::classify(
                    comp.refresh_delayed,
                    comp.bank_conflict,
                    comp.queue_cycles,
                );
                for &t in &self.woken_buf {
                    self.attr_resolutions.push((ci, t, tier, mech));
                }
            }
            if let Some(m) = &mut self.migrator {
                m.record_read(comp.line);
            }
        }
        if let Some(t) = t0 {
            self.tel.components.dram += t.elapsed();
        }

        // Page-migration epoch boundary. The migrator moves out of `self`
        // for the epoch so it can borrow the rest of the system mutably;
        // it is put back below.
        if let Some(mut m) = self.migrator.take_if(|m| m.epoch_due(now)) {
            // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
            let t0 = profile.then(std::time::Instant::now);
            m.run_epoch(
                now,
                &mut self.os,
                &mut self.hiers,
                &mut self.channels,
                &self.mapper,
            );
            let s = m.stats();
            self.tel.record(
                now,
                Event::MigrationEpoch {
                    epoch: s.epochs,
                    promotions: s.promotions,
                    demotions: s.demotions,
                },
            );
            self.migrator = Some(m);
            // The epoch invalidates lines across every hierarchy, which can
            // queue writebacks anywhere: rebuild the deferred mask from
            // scratch (epoch-rate, not cycle-rate).
            for (i, h) in self.hiers.iter().enumerate() {
                if h.has_deferred() {
                    self.deferred_words[i / 64] |= 1 << (i % 64);
                }
            }
            if let Some(t) = t0 {
                self.tel.components.vm += t.elapsed();
            }
        }

        // 2. Retry deferred writebacks/store-fills — walk only the
        // hierarchies flagged in the deferred mask (bit set ⊇ has_deferred;
        // stale bits clear themselves here), in core-index order like the
        // full loop this replaced.
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        for w in 0..self.deferred_words.len() {
            let mut bits = self.deferred_words[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let i = w * 64 + b;
                if self.hiers[i].has_deferred() {
                    self.hiers[i].flush_deferred(now, &mut self.channels, &self.mapper);
                }
                if !self.hiers[i].has_deferred() {
                    self.deferred_words[w] &= !(1u64 << b);
                }
            }
        }
        if let Some(t) = t0 {
            self.tel.components.cache += t.elapsed();
        }

        // 3. Core pipelines — only cores whose wake event has arrived.
        // A sleeping core's tick is a pure no-op until its `wake_at`
        // (its elapsed-cycle stats catch up inside `Core::tick`), and a
        // fully drained core sits at `Cycle::MAX` forever. The tick pass
        // runs sequentially or fans out across the step pool (bit-identical
        // either way — see `par_step`); the bookkeeping pass below replays
        // each core's recorded outcome in core order.
        // moca-lint: allow(wall-clock): host self-profiling span, never read by the simulation
        let t0 = profile.then(std::time::Instant::now);
        self.awake.clear();
        for i in 0..n {
            if self.wake_at[i] <= now {
                self.awake.push(i);
            }
        }
        match pool {
            Some(pool) if self.awake.len() > 1 => {
                let ctx = self.tick_ctx(now);
                // SAFETY: `ctx` views exactly the state the sequential tick
                // pass touches; nothing else reads or writes it until
                // `run_cycle` returns, and this is the pool's main thread.
                unsafe { pool.run_cycle(ctx) };
            }
            _ => {
                for p in 0..self.awake.len() {
                    let i = self.awake[p];
                    let mut port = Port {
                        hier: &mut self.hiers[i],
                        channels: &mut self.channels,
                        mapper: &self.mapper,
                        os: &mut self.os,
                        core_idx: i,
                        tickets: &mut self.tickets[i],
                        tel: &mut self.tel,
                    };
                    let skipped_live = self.steps - self.steps_at_tick[i] - 1;
                    self.steps_at_tick[i] = self.steps;
                    self.cores[i].tick_gated(now, skipped_live, &mut port, &mut self.streams[i]);
                    self.committed[i] = self.cores[i].committed();
                    self.hier_deferred[i] = self.hiers[i].has_deferred();
                    self.sleeps[i] = match self.cores[i].sleep_state(now) {
                        None if self.cores[i].finished() => SleepSlot::Finished,
                        None => SleepSlot::Runnable,
                        Some(e) => SleepSlot::Sleep(e),
                    };
                }
            }
        }
        // Bookkeeping pass: refresh the dense per-core state the run loops
        // read, and reschedule each ticked core. Runnable cores are counted
        // locally for this step's skip decision (not queued — they would
        // churn the wheel every cycle); sleepers are posted at their wake
        // event. Ticks never read any of this, so running it after the
        // whole tick pass is order-equivalent to the fused loop.
        let mut runnable_next = 0usize;
        for p in 0..self.awake.len() {
            let i = self.awake[p];
            let c = self.committed[i];
            if !self.crossed[i] && c >= self.commit_target {
                self.crossed[i] = true;
                self.below_target -= 1;
                self.commit_crossed = true;
            }
            if self.hier_deferred[i] {
                self.deferred_words[i / 64] |= 1 << (i % 64);
            }
            match self.sleeps[i] {
                SleepSlot::Finished => {
                    self.wake_at[i] = Cycle::MAX;
                    self.finished_count += 1;
                    self.wheel.cancel(i);
                }
                SleepSlot::Runnable => {
                    self.wake_at[i] = now + 1;
                    runnable_next += 1;
                    self.wheel.cancel(i);
                }
                SleepSlot::Sleep(e) => {
                    self.wake_at[i] = e;
                    if e <= now + 1 {
                        runnable_next += 1;
                        self.wheel.cancel(i);
                    } else if e == Cycle::MAX {
                        self.wheel.cancel(i);
                    } else {
                        self.wheel.post(i, e);
                    }
                }
            }
        }
        if let Some(t) = t0 {
            self.tel.components.cpu += t.elapsed();
        }

        // Apply the attribution resolutions collected in phase 1. This must
        // run after the pipeline ticks: a core woken by a completion may
        // still charge this cycle's skipped-window stall to that ticket.
        for k in 0..self.attr_resolutions.len() {
            let (ci, ticket, tier, mech) = self.attr_resolutions[k];
            self.cores[ci].attr_resolve(ticket, tier, mech);
        }
        self.attr_resolutions.clear();

        // 3½. Periodic metrics window.
        if self.tel.enabled() && self.now >= self.win_next {
            self.sample_window();
        }

        // 4. Event skip: if every core is stalled on memory, jump to the
        // next completion/command boundary. The wheel already holds every
        // sleeping core's wake event; only channels whose state moved since
        // their last post get re-queried, then one wheel pop yields the
        // global minimum — no per-core or per-channel scan on this path.
        // Skipping stays disabled while any core is drained, preserving the
        // cycle-by-cycle drain semantics of the linear scan this replaced.
        if self.finished_count == 0 && runnable_next == 0 {
            for c in 0..self.channels.len() {
                let v = self.channels[c].state_version();
                if self.chan_posted[c] != v {
                    self.chan_posted[c] = v;
                    let e = self.channels[c].next_event_after(now).unwrap_or(Cycle::MAX);
                    self.wheel.post(n + c, e);
                }
            }
            let next = self.wheel.next_event_after(now);
            #[cfg(debug_assertions)]
            self.check_skip_against_scan(now, next);
            // The drain phase terminates through these events: every blocked
            // core waits on a channel completion (tracked by the channel
            // next-events) or a core-local timer. Neither pending means the
            // machine can never advance — fail loudly rather than spinning
            // into the generic run watchdog.
            let next = next.map_or(Cycle::MAX, |(c, _)| c);
            assert!(next != Cycle::MAX, "{}", self.deadlock_report(now));
            if next > now + 1 {
                self.now = next - 1;
            }
        }
    }

    /// Differential check (debug builds only): the wheel's skip decision
    /// must match the per-core/per-channel linear scan it replaced.
    #[cfg(debug_assertions)]
    fn check_skip_against_scan(&self, now: Cycle, wheel_next: Option<(Cycle, usize)>) {
        let mut next = Cycle::MAX;
        for (i, c) in self.cores.iter().enumerate() {
            match c.sleep_state(now) {
                // moca-lint: allow(panic-in-hot): debug-only differential oracle; divergence must abort
                None => panic!(
                    "event wheel diverged at cycle {now}: core {i} is runnable \
                     but the step loop counted no runnable cores"
                ),
                Some(e) => next = next.min(e),
            }
        }
        for ch in &self.channels {
            if let Some(c) = ch.next_event_after(now) {
                next = next.min(c);
            }
        }
        let got = wheel_next.map_or(Cycle::MAX, |(c, _)| c);
        assert!(
            got == next,
            "event wheel diverged from the linear scan at cycle {now}: \
             wheel says next event at {got}, scan says {next}"
        );
    }

    /// Build the event-skip deadlock panic message: per-core wait state and
    /// per-channel queue state, so the failure is debuggable from the panic
    /// alone. Cold failure path — called at most once per run, right before
    /// the panic aborts it.
    #[cold]
    fn deadlock_report(&self, now: Cycle) -> String {
        use std::fmt::Write as _;
        // moca-lint: allow(hot-alloc): deadlock failure path — builds the panic report once, then the run aborts
        let mut r = format!(
            "event-skip deadlock at cycle {now}: every core is blocked on memory \
             but no channel completion or core-local event is pending\n"
        );
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                r,
                "  core {i}: committed {}, rob {} entries (head seq {:?}), wake_at {}, \
                 waiting on tickets {:?}, ifetch ticket {:?}",
                c.committed(),
                c.rob_len(),
                c.rob_head_seq(),
                self.wake_at[i],
                c.outstanding_tickets(),
                c.pending_ifetch_ticket(),
            );
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            let _ = writeln!(
                r,
                "  channel {ci}: readq {}, writeq {}, idle {}",
                ch.read_queue_len(),
                ch.write_queue_len(),
                ch.next_event_after(now).is_none(),
            );
        }
        r
    }

    /// Arm the step loop's commit-crossing detector for a new phase: every
    /// core is re-checked against `target` from its current committed count
    /// (warmup and measurement both count from a stats reset, so a fresh
    /// phase starts with every core below target).
    fn set_commit_target(&mut self, target: u64) {
        self.commit_target = target;
        self.below_target = 0;
        self.commit_crossed = false;
        for (i, core) in self.cores.iter().enumerate() {
            let c = core.committed();
            self.committed[i] = c;
            self.crossed[i] = c >= target;
            if !self.crossed[i] {
                self.below_target += 1;
            }
        }
        // A target some core already meets must still be seen by the freeze
        // scan on the first step.
        if self.cores.iter().any(|c| c.committed() >= target) {
            self.commit_crossed = true;
        }
    }

    /// Run until every core commits `instr_target` instructions; returns the
    /// full metrics bundle. Cores that reach the target keep executing (and
    /// contending for memory) until the slowest core finishes, but their
    /// statistics are frozen at the target — the usual multi-program
    /// simulation methodology.
    pub fn run(&mut self, instr_target: u64) -> RunResult {
        self.run_warmed(0, instr_target)
    }

    /// Set the phase-3 worker-thread count for subsequent runs (1 =
    /// sequential, the default unless `MOCA_STEP_THREADS` is set). Results
    /// are bit-identical for every value — parallelism only changes which
    /// host thread executes a core's tick, never the order of shared-state
    /// operations.
    pub fn set_step_threads(&mut self, threads: usize) {
        self.step_threads = threads.max(1);
    }

    /// Fast-forward for `warmup` committed instructions per core (warming
    /// caches, TLBs, and page tables — the paper's SimPoint fast-forward),
    /// zero all statistics, then measure `instr_target` instructions.
    pub fn run_warmed(&mut self, warmup: u64, instr_target: u64) -> RunResult {
        let threads = self.step_threads.min(self.cores.len()).max(1);
        if threads <= 1 {
            return self.run_warmed_inner(warmup, instr_target, None);
        }
        let pool = StepPool::new(threads);
        // moca-lint: allow(wall-clock): host worker threads; the frontier protocol keeps results bit-identical
        std::thread::scope(|s| {
            for w in 1..threads {
                let pool = &pool;
                s.spawn(move || pool.worker_loop(w));
            }
            let r = self.run_warmed_inner(warmup, instr_target, Some(&pool));
            pool.shutdown();
            r
        })
    }

    fn run_warmed_inner(
        &mut self,
        warmup: u64,
        instr_target: u64,
        pool: Option<&StepPool>,
    ) -> RunResult {
        assert!(instr_target > 0);
        let n = self.cores.len();
        let mut comps: Vec<Completion> = Vec::new();
        let mut mem = MemMetrics {
            per_core_read_latency: vec![0; n],
            ..MemMetrics::default()
        };
        // Generous watchdog: no workload needs more than ~4000 cycles per
        // instruction even fully serialized on LPDDR2.
        let watchdog = (warmup + instr_target).saturating_mul(4000).max(10_000_000);

        if warmup > 0 {
            // Metrics are discarded after warmup; suppress accumulation.
            self.measuring.iter_mut().for_each(|m| *m = false);
            self.set_commit_target(warmup);
            while self.below_target > 0 {
                self.step(&mut mem, &mut comps, pool);
                assert!(self.now < watchdog, "warmup watchdog tripped");
            }
            self.measuring.iter_mut().for_each(|m| *m = true);
            for c in &mut self.cores {
                c.reset_stats();
            }
            for ch in &mut self.channels {
                ch.reset_stats();
            }
            mem = MemMetrics {
                per_core_read_latency: vec![0; n],
                ..MemMetrics::default()
            };
            // The resets zeroed the counters the window deltas are taken
            // against; restart the current window from here.
            self.rebaseline_windows();
            self.occupancy.clear();
        }
        let measure_start = self.now;
        self.sample_occupancy();

        type FrozenCore = (moca_cpu::CoreStats, Cycle, Option<AttrSnapshot>);
        self.set_commit_target(instr_target);
        let mut frozen: Vec<Option<FrozenCore>> = vec![None; n];
        let mut remaining = n;
        while remaining > 0 {
            self.step(&mut mem, &mut comps, pool);
            assert!(self.now < watchdog, "simulation watchdog tripped");
            // The step loop sets `commit_crossed` when a ticked core first
            // reaches the target; scanning for cores to freeze on any other
            // cycle cannot find one.
            if !self.commit_crossed {
                continue;
            }
            self.commit_crossed = false;
            let mut newly_frozen = false;
            for (i, slot) in frozen.iter_mut().enumerate() {
                if slot.is_none() && self.cores[i].committed() >= instr_target {
                    *slot = Some((
                        self.cores[i].stats().clone(),
                        self.now - measure_start,
                        self.cores[i].attr_snapshot(),
                    ));
                    newly_frozen = true;
                    remaining -= 1;
                    self.measuring[i] = false;
                    self.frozen[i] = true;
                    let committed = self.cores[i].committed();
                    self.tel.record(
                        self.now,
                        Event::CoreWindowFrozen {
                            core: i as u32,
                            committed,
                            window_cycles: self.now - measure_start,
                        },
                    );
                }
            }
            if newly_frozen {
                // Occupancy-timeline point at every core-freeze boundary, so
                // attributed runs get a timeline even without periodic
                // telemetry windows.
                self.sample_occupancy();
            }
        }

        let runtime = self.now - measure_start;
        mem.runtime_cycles = runtime;
        mem.channels = self
            .channels
            .iter()
            .map(|ch| ChannelReport {
                kind: ch.config().timing.kind,
                capacity_bytes: ch.config().capacity_bytes,
                stats: *ch.stats(),
                energy: ch.energy(runtime),
            })
            .collect();

        let per_core = frozen
            .into_iter()
            .zip(self.app_names.iter())
            .map(|(f, name)| {
                let (stats, finished_at, attr) = f.expect("all cores frozen");
                CoreResult {
                    app: name.clone(),
                    stats,
                    finished_at,
                    attr,
                }
            })
            .collect();

        RunResult {
            policy: self.os.policy_name().to_string(),
            mem_label: self.cfg.mem.label(),
            runtime_cycles: runtime,
            per_core,
            mem,
            placement: self.os.take_placement(),
            core_width: self.cfg.core.width,
            migration: self.migration_stats(),
            occupancy: if self.attr_enabled {
                Some(std::mem::take(&mut self.occupancy))
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemSystemConfig;
    use moca_common::ModuleKind;
    use moca_vm::policy::FirstTouchPolicy;
    use moca_workloads::app_by_name;

    fn run_app(name: &str, target: u64) -> RunResult {
        let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        let launch = AppLaunch::untyped(app_by_name(name), InputSet::reference());
        let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
        sys.run_warmed(target, target)
    }

    #[test]
    fn single_core_run_completes_and_reports() {
        let r = run_app("gcc", 40_000);
        assert_eq!(r.per_core.len(), 1);
        assert!(r.per_core[0].stats.committed >= 40_000);
        assert!(r.runtime_cycles > 0);
        assert!(r.placement.total_pages() > 0);
        assert!(r.mem.energy_j() > 0.0);
        assert_eq!(r.mem.channels.len(), 4);
    }

    /// A machine whose every core is blocked on memory while no channel
    /// completion or core-local event is pending must abort through the
    /// event-skip deadlock assert — with the diagnostic report — rather
    /// than spinning silently until the run watchdog fires.
    #[test]
    #[should_panic(expected = "event-skip deadlock")]
    fn empty_wheel_trips_deadlock_assert() {
        let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        let launch = AppLaunch::untyped(app_by_name("mcf"), InputSet::reference());
        let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
        let mut mem = MemMetrics {
            per_core_read_latency: vec![0; 1],
            ..MemMetrics::default()
        };
        let mut comps = Vec::new();
        for _ in 0..200_000 {
            sys.step(&mut mem, &mut comps, None);
            // Wait for a cycle where the core is purely memory-blocked (no
            // core-local timer: its only wake event is a DRAM completion).
            if !sys.cores[0].finished() && sys.wake_at[0] == Cycle::MAX {
                // Lose the completions: swap in fresh, empty channels, keep
                // `chan_posted` matching their versions so the skip path
                // does not re-post them, and empty the wheel of any stale
                // channel events. The core now waits on a read that will
                // never return — a modelling bug this assert must catch.
                for ch in &mut sys.channels {
                    *ch = Channel::new(ch.config().clone());
                }
                for (c, ch) in sys.channels.iter().enumerate() {
                    sys.chan_posted[c] = ch.state_version();
                }
                sys.wheel = EventWheel::new(sys.cores.len() + sys.channels.len());
                sys.step(&mut mem, &mut comps, None);
                unreachable!("the deadlocked step above must panic");
            }
        }
        unreachable!("no purely memory-blocked cycle found");
    }

    #[test]
    fn deterministic_repeat() {
        let a = run_app("mcf", 30_000);
        let b = run_app("mcf", 30_000);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.mem.reads, b.mem.reads);
        assert_eq!(
            a.mem.total_read_latency_cycles,
            b.mem.total_read_latency_cycles
        );
        assert_eq!(a.per_core[0].stats.committed, b.per_core[0].stats.committed);
        assert_eq!(
            a.per_core[0].stats.head_stall_cycles,
            b.per_core[0].stats.head_stall_cycles
        );
    }

    #[test]
    fn memory_intensive_app_misses_more_than_quiet_app() {
        let mcf = run_app("mcf", 60_000);
        let gcc = run_app("gcc", 300_000);
        assert!(
            mcf.per_core[0].stats.app_mpki() > 4.0 * gcc.per_core[0].stats.app_mpki(),
            "mcf MPKI {} vs gcc {}",
            mcf.per_core[0].stats.app_mpki(),
            gcc.per_core[0].stats.app_mpki()
        );
    }

    #[test]
    fn chase_app_stalls_more_per_miss_than_stream_app() {
        let mcf = run_app("mcf", 40_000);
        let lbm = run_app("lbm", 40_000);
        let s_mcf = mcf.per_core[0].stats.app_stall_per_miss();
        let s_lbm = lbm.per_core[0].stats.app_stall_per_miss();
        assert!(
            s_mcf > 2.0 * s_lbm,
            "mcf stall/miss {s_mcf:.1} vs lbm {s_lbm:.1}"
        );
    }

    #[test]
    fn quad_core_run_completes() {
        let cfg = SystemConfig::quad_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        let launches = ["mcf", "lbm", "gcc", "sift"]
            .iter()
            .map(|n| AppLaunch::untyped(app_by_name(n), InputSet::reference()))
            .collect();
        let mut sys = System::new(cfg, launches, Box::new(FirstTouchPolicy));
        let r = sys.run(20_000);
        assert_eq!(r.per_core.len(), 4);
        for c in &r.per_core {
            assert!(c.stats.committed >= 20_000, "{} did not finish", c.app);
        }
        assert!(r.system_ipc() > 0.0);
        assert!(r.system_edp() > 0.0);
    }

    #[test]
    fn rldram_is_faster_than_lpddr_for_latency_app() {
        let mk = |kind| {
            let cfg = SystemConfig::single_core(MemSystemConfig::Homogeneous(kind));
            let launch = AppLaunch::untyped(app_by_name("mcf"), InputSet::reference());
            let mut sys = System::new(cfg, vec![launch], Box::new(FirstTouchPolicy));
            sys.run(30_000)
        };
        let rl = mk(ModuleKind::Rldram3);
        let lp = mk(ModuleKind::Lpddr2);
        assert!(
            rl.runtime_cycles < lp.runtime_cycles,
            "RLDRAM {} vs LPDDR {}",
            rl.runtime_cycles,
            lp.runtime_cycles
        );
        assert!(rl.mem.avg_read_latency() < lp.mem.avg_read_latency());
    }
}
