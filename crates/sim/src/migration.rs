//! Dynamic page migration — the runtime-monitoring alternative MOCA is
//! contrasted against (§IV-E: "in contrast to page migration policies that
//! need to monitor runtime information, MOCA only slightly modifies the
//! page allocation method"; related work \[19], \[33], \[35]).
//!
//! The engine implements the classic hardware-monitor scheme: count DRAM
//! reads per physical page in fixed epochs; at each epoch boundary, promote
//! the hottest pages into the fastest module (RLDRAM, then HBM), evicting
//! the coldest pages there in a frame swap. Every migration pays the real
//! costs MOCA avoids:
//!
//! * **copy bandwidth** — 64 line reads + 64 line writes occupy both
//!   channels' data buses ([`moca_dram::Channel::inject_copy_traffic`]);
//! * **cache invalidation** — all cached lines of both pages are dropped
//!   (dirty ones written back first);
//! * **TLB shootdown** — every core's TLB is flushed.

use crate::hierarchy::CoreHierarchy;
use crate::os::Os;
use moca_common::addr::{LineAddr, PAGE_SIZE};
use moca_common::DetMap;
use moca_common::{Cycle, ModuleKind};
use moca_dram::{AddressMapper, Channel};
use serde::{Deserialize, Serialize};

/// Lines per page (64 with 4 KiB pages and 64 B lines).
const LINES_PER_PAGE: u64 = PAGE_SIZE / moca_common::addr::CACHE_LINE_SIZE;

/// Migration-engine parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Epoch length in cycles.
    pub epoch_cycles: Cycle,
    /// Maximum pages moved per epoch.
    pub max_moves_per_epoch: usize,
    /// Minimum DRAM reads in an epoch before a page is promotion-worthy.
    pub heat_threshold: u32,
    /// Promotion targets, fastest first.
    pub fast_kinds: [ModuleKind; 2],
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            epoch_cycles: 50_000,
            max_moves_per_epoch: 32,
            heat_threshold: 16,
            fast_kinds: [ModuleKind::Rldram3, ModuleKind::Hbm],
        }
    }
}

/// Counters the engine reports at end of run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Epochs completed.
    pub epochs: u64,
    /// Pages promoted into a fast module.
    pub promotions: u64,
    /// Pages demoted to make room (frame swaps).
    pub demotions: u64,
    /// Dirty lines written back during invalidations.
    pub dirty_writebacks: u64,
}

/// The per-page heat tracker + epoch mover.
pub struct Migrator {
    cfg: MigrationConfig,
    /// DRAM reads per pfn in the current epoch. Ordered so that candidate
    /// collection (and thus victim selection) is independent of the order in
    /// which pages were first touched.
    heat: DetMap<u64, u32>,
    /// Exponentially decayed heat of pages currently resident in the fast
    /// modules (so cold residents can be identified for demotion).
    resident_heat: DetMap<u64, u32>,
    next_epoch: Cycle,
    stats: MigrationStats,
}

impl Migrator {
    /// New engine with `cfg`.
    pub fn new(cfg: MigrationConfig) -> Migrator {
        Migrator {
            next_epoch: cfg.epoch_cycles,
            cfg,
            heat: DetMap::new(),
            resident_heat: DetMap::new(),
            stats: MigrationStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Record one DRAM read completion.
    #[inline]
    pub fn record_read(&mut self, line: LineAddr) {
        *self.heat.entry(line.pfn()).or_insert(0) += 1;
    }

    /// Whether the epoch boundary has been reached.
    #[inline]
    pub fn epoch_due(&self, now: Cycle) -> bool {
        now >= self.next_epoch
    }

    /// Run an epoch: promote hot pages into the fast modules. Called by the
    /// simulator at epoch boundaries.
    pub fn run_epoch(
        &mut self,
        now: Cycle,
        os: &mut Os,
        hiers: &mut [CoreHierarchy],
        channels: &mut [Channel],
        mapper: &AddressMapper,
    ) {
        self.next_epoch = now + self.cfg.epoch_cycles;
        self.stats.epochs += 1;

        // Decay resident heat and merge this epoch's observations.
        for v in self.resident_heat.values_mut() {
            *v /= 2;
        }
        // moca-lint: allow(hot-alloc): epoch-rate path — runs once per migration epoch, not per cycle
        let mut candidates: Vec<(u64, u32)> = Vec::new();
        for (&pfn, &h) in &self.heat {
            match os.frames().kind_of(pfn) {
                Some(k) if self.cfg.fast_kinds.contains(&k) => {
                    *self.resident_heat.entry(pfn).or_insert(0) += h;
                }
                Some(_) if h >= self.cfg.heat_threshold => candidates.push((pfn, h)),
                Some(_) => {}
                None => {}
            }
        }
        self.heat.clear();
        // Explicit tie-break: heat descending, then pfn ascending. The heat
        // table already iterates in pfn order (DetMap), so this sort — and
        // everything downstream of it — is identical run to run.
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(self.cfg.max_moves_per_epoch);

        for (pfn, h) in candidates {
            if self.promote(now, pfn, h, os, hiers, channels, mapper) {
                self.stats.promotions += 1;
            }
        }
    }

    /// Try to move `pfn` into a fast module: a free frame if one exists,
    /// otherwise swap with the coldest fast-resident page (if colder).
    #[allow(clippy::too_many_arguments)]
    fn promote(
        &mut self,
        now: Cycle,
        pfn: u64,
        heat: u32,
        os: &mut Os,
        hiers: &mut [CoreHierarchy],
        channels: &mut [Channel],
        mapper: &AddressMapper,
    ) -> bool {
        for kind in self.cfg.fast_kinds {
            if let Some(new_pfn) = os.move_page_to(pfn, kind) {
                self.pay_copy_costs(now, pfn, new_pfn, hiers, channels, mapper);
                self.resident_heat.insert(new_pfn, heat);
                return true;
            }
        }
        // No free fast frame: find the coldest resident clearly colder than
        // the candidate.
        let victim = self
            .resident_heat
            .iter()
            .filter(|&(&v, _)| os.owner_of(v).is_some() && v != pfn)
            .min_by_key(|&(&v, &h)| (h, v))
            .map(|(&v, &h)| (v, h));
        match victim {
            Some((victim_pfn, victim_heat)) if victim_heat * 2 < heat => {
                os.swap_frames(pfn, victim_pfn);
                self.pay_copy_costs(now, pfn, victim_pfn, hiers, channels, mapper);
                // The candidate's heat now lives at the victim's old frame.
                self.resident_heat.remove(&victim_pfn);
                self.resident_heat.insert(victim_pfn, heat);
                self.stats.demotions += 1;
                true
            }
            _ => false,
        }
    }

    /// Invalidate caches for both pages and book the copy DMA on both
    /// channels.
    fn pay_copy_costs(
        &mut self,
        now: Cycle,
        a_pfn: u64,
        b_pfn: u64,
        hiers: &mut [CoreHierarchy],
        channels: &mut [Channel],
        mapper: &AddressMapper,
    ) {
        for h in hiers.iter_mut() {
            self.stats.dirty_writebacks += h.invalidate_page(a_pfn) as u64;
            self.stats.dirty_writebacks += h.invalidate_page(b_pfn) as u64;
        }
        for pfn in [a_pfn, b_pfn] {
            let line = LineAddr(pfn * LINES_PER_PAGE);
            let (ch, _) = mapper.map(line);
            channels[ch].inject_copy_traffic(now, LINES_PER_PAGE, LINES_PER_PAGE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MigrationConfig::default();
        assert!(c.epoch_cycles > 0);
        assert_eq!(c.fast_kinds[0], ModuleKind::Rldram3);
    }

    #[test]
    fn heat_accumulates_per_page() {
        let mut m = Migrator::new(MigrationConfig::default());
        m.record_read(LineAddr(0));
        m.record_read(LineAddr(1)); // same 4 KiB page
        m.record_read(LineAddr(64)); // next page
        assert_eq!(m.heat.get(&0), Some(&2));
        assert_eq!(m.heat.get(&1), Some(&1));
    }

    /// Determinism regression: two migrators fed the *same multiset* of heat
    /// observations in permuted orders — over identically-placed address
    /// spaces whose pages also faulted in permuted order — must make
    /// identical victim-selection and promotion decisions. This is exactly
    /// the property a HashMap-backed heat table breaks (iteration order
    /// would leak into candidate collection).
    #[test]
    fn permuted_observation_order_gives_identical_migrations() {
        use moca_common::addr::PAGE_SIZE;
        use moca_dram::{ChannelConfig, DeviceTiming};
        use moca_vm::frames::regions_from_capacities;
        use moca_vm::policy::FirstTouchPolicy;
        use moca_vm::FrameSpace;

        const PAGES: u64 = 18;
        let cfg = MigrationConfig {
            epoch_cycles: 1_000,
            max_moves_per_epoch: 2,
            heat_threshold: 4,
            fast_kinds: [ModuleKind::Rldram3, ModuleKind::Hbm],
        };

        // Heat multiset with deliberate ties: pages 2..6 at heat 9, pages
        // 6..10 at heat 5, and the two fast-resident pages (0, 1) at heat 2
        // so they are demotion candidates.
        let heats = |pfn: u64| -> u32 {
            match pfn {
                0 | 1 => 2,
                2..=5 => 9,
                6..=9 => 5,
                _ => 1,
            }
        };

        let run = |fault_order: &[u64], obs_order: &[u64]| {
            // A tiny machine: 2 RLDRAM frames (filled first by first-touch)
            // and a DDR3 region holding everything else.
            let frames = FrameSpace::new(regions_from_capacities(&[
                (ModuleKind::Rldram3, 0, 2 * PAGE_SIZE),
                (ModuleKind::Ddr3, 1, 64 * PAGE_SIZE),
            ]));
            let mut os = Os::new(frames, Box::new(FirstTouchPolicy), 1, 64, 0, 0);
            for &vpn in fault_order {
                os.prefault(0, moca_common::VirtAddr(vpn * PAGE_SIZE));
            }
            let mut channels = vec![
                Channel::new(ChannelConfig::new(DeviceTiming::rldram3(), 2 * PAGE_SIZE)),
                Channel::new(ChannelConfig::new(DeviceTiming::ddr3(), 64 * PAGE_SIZE)),
            ];
            let mapper = AddressMapper::ranged(&[2 * PAGE_SIZE, 64 * PAGE_SIZE]);
            let mut mig = Migrator::new(cfg);
            for round in 0..2 {
                for &pfn in obs_order {
                    for _ in 0..heats(pfn) {
                        mig.record_read(LineAddr(pfn * LINES_PER_PAGE));
                    }
                }
                mig.run_epoch(
                    1_000 * (round + 1),
                    &mut os,
                    &mut [],
                    &mut channels,
                    &mapper,
                );
            }
            let kinds: Vec<_> = (0..PAGES).map(|p| os.frames().kind_of(p)).collect();
            let owners: Vec<_> = (0..PAGES).map(|p| os.owner_of(p)).collect();
            let s = mig.stats();
            (kinds, owners, (s.epochs, s.promotions, s.demotions))
        };

        let fwd: Vec<u64> = (0..PAGES).collect();
        let rev: Vec<u64> = (0..PAGES).rev().collect();
        // First-touch placement is order-dependent by design, so fault pages
        // in the same order; only the *observations* are permuted.
        let a = run(&fwd, &fwd);
        let b = run(&fwd, &rev);
        assert!(a.2 .1 > 0, "test must exercise at least one promotion");
        assert_eq!(
            a, b,
            "permuted heat observations changed migration decisions"
        );
    }

    #[test]
    fn epoch_due_respects_period() {
        let m = Migrator::new(MigrationConfig {
            epoch_cycles: 100,
            ..MigrationConfig::default()
        });
        assert!(!m.epoch_due(99));
        assert!(m.epoch_due(100));
    }
}
