//! Per-core cache hierarchy: split L1s over a private unified L2, with the
//! L2 MSHRs gating traffic to the shared DRAM channels.
//!
//! The hierarchy performs cache state transitions eagerly and composes
//! latencies: L1 hit = 2 cycles, L2 hit = 22 cycles, L2 miss = DRAM
//! queue + service (delivered via completion). Memory access time is
//! measured at the controller, as in the paper. Writebacks and
//! store-allocate fills are fire-and-forget; they contend for channel
//! bandwidth but never block the pipeline (a deferred queue absorbs
//! full-queue backpressure).

use moca_cache::mshr::MshrOutcome;
use moca_cache::{CacheConfig, MshrFile, SetAssocCache, Victim};
use moca_common::ids::MemTag;
use moca_common::{AccessKind, CoreId, Cycle, LineAddr, PhysAddr, Segment};
use moca_cpu::{MemReply, StoreReply};
use moca_dram::{AddressMapper, Channel, Completion, MemRequest};
use std::collections::VecDeque;

/// What an outstanding DRAM read token is for.
#[derive(Debug, Clone, Copy)]
enum FillKind {
    /// A demand (load or ifetch) miss: fills caches and wakes MSHR waiters.
    Demand(LineAddr),
    /// A store-allocate line fetch: the caches were filled eagerly at issue;
    /// the read exists for timing/bandwidth/energy fidelity only.
    StoreFill,
}

#[derive(Debug, Clone, Copy)]
struct Deferred {
    line: LineAddr,
    kind: AccessKind,
    core: CoreId,
    tag: MemTag,
    token: u64,
}

/// One core's private L1I/L1D/L2 stack.
pub struct CoreHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    l2_mshr: MshrFile<u64>,
    /// Outstanding DRAM read tokens → what their fill is for. Flat pairs
    /// rather than an ordered map: tokens are unique and looked up by exact
    /// value only, the population is bounded by the L2 MSHR count, and no
    /// iteration order is observable.
    outstanding: Vec<(u64, FillKind)>,
    /// Lines with a pending store merged into an in-flight demand miss: the
    /// eventual fill must install dirty. Flat, exact-membership-only set.
    pending_store_dirty: Vec<LineAddr>,
    deferred: VecDeque<Deferred>,
    l1_hit_latency: Cycle,
    l2_hit_latency: Cycle,
}

impl CoreHierarchy {
    /// Table I hierarchy.
    pub fn new() -> CoreHierarchy {
        CoreHierarchy::with_configs(CacheConfig::l1i(), CacheConfig::l1d(), CacheConfig::l2())
    }

    /// Custom cache geometries (used by ablation benches).
    pub fn with_configs(l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig) -> CoreHierarchy {
        let l1_hit_latency = l1d.hit_latency;
        let l2_hit_latency = l1d.hit_latency + l2.hit_latency;
        let mshrs = l2.mshrs;
        CoreHierarchy {
            l1i: SetAssocCache::new(l1i),
            l1d: SetAssocCache::new(l1d),
            l2: SetAssocCache::new(l2),
            l2_mshr: MshrFile::new(mshrs),
            outstanding: Vec::new(),
            pending_store_dirty: Vec::new(),
            deferred: VecDeque::new(),
            l1_hit_latency,
            l2_hit_latency,
        }
    }

    /// L2 statistics (for MPKI cross-checks).
    pub fn l2_stats(&self) -> &moca_cache::CacheStats {
        self.l2.stats()
    }

    /// The L1 data cache (inspection/testing).
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// The L1 instruction cache (inspection/testing).
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// The unified L2 (inspection/testing).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Whether all queues and outstanding state are drained.
    pub fn is_idle(&self) -> bool {
        self.outstanding.is_empty() && self.deferred.is_empty()
    }

    /// Whether any deferred writeback/store-fill is queued (lets the system
    /// loop skip the per-cycle flush for quiescent hierarchies).
    pub fn has_deferred(&self) -> bool {
        !self.deferred.is_empty()
    }

    /// Enqueue a DRAM request, deferring on backpressure. `token` must be
    /// pre-registered in `outstanding` for reads that matter.
    fn send(&mut self, now: Cycle, channels: &mut [Channel], mapper: &AddressMapper, d: Deferred) {
        let (ch, local) = mapper.map(d.line);
        if channels[ch].can_accept(d.kind) {
            channels[ch].enqueue(
                now,
                MemRequest {
                    token: d.token,
                    line: d.line,
                    local_off: local,
                    kind: d.kind,
                    core: d.core,
                    tag: d.tag,
                },
            );
        } else {
            self.deferred.push_back(d);
        }
    }

    /// Retry deferred writebacks/store-fills. Call once per cycle.
    pub fn flush_deferred(&mut self, now: Cycle, channels: &mut [Channel], mapper: &AddressMapper) {
        while let Some(d) = self.deferred.front().copied() {
            let (ch, _) = mapper.map(d.line);
            if !channels[ch].can_accept(d.kind) {
                break;
            }
            self.deferred.pop_front();
            self.send(now, channels, mapper, d);
        }
    }

    /// Handle an L2 victim: enforce inclusion (drop L1 copies) and write
    /// back dirty data to DRAM.
    fn retire_l2_victim(
        &mut self,
        now: Cycle,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        core: CoreId,
        victim: Victim,
    ) {
        let l1_dirty = self.l1d.invalidate(victim.line).unwrap_or(false);
        let l1i_present = self.l1i.invalidate(victim.line).is_some();
        let _ = l1i_present; // code lines are never dirty
        if victim.dirty || l1_dirty {
            self.send(
                now,
                channels,
                mapper,
                Deferred {
                    line: victim.line,
                    kind: AccessKind::Write,
                    core,
                    tag: MemTag::segment(Segment::Data),
                    token: 0,
                },
            );
        }
    }

    /// Handle an L1 victim: write back into the L2 (which may evict in turn).
    fn retire_l1_victim(
        &mut self,
        now: Cycle,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        core: CoreId,
        victim: Victim,
    ) {
        if !victim.dirty {
            return;
        }
        if let Some(v2) = self.l2.writeback(victim.line) {
            self.retire_l2_victim(now, channels, mapper, core, v2);
        }
    }

    /// Common L2-miss path for demand requests (loads and ifetches).
    #[allow(clippy::too_many_arguments)]
    fn demand_miss(
        &mut self,
        now: Cycle,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        core: CoreId,
        line: LineAddr,
        tag: MemTag,
        tickets: &mut u64,
    ) -> MemReply {
        // Merge into an in-flight miss for the same line.
        if self.l2_mshr.pending(line) {
            let ticket = bump(tickets);
            let outcome = self.l2_mshr.on_miss(line, ticket);
            debug_assert_eq!(outcome, MshrOutcome::MergedSecondary);
            return MemReply::Pending {
                ticket,
                primary: false,
            };
        }
        if self.l2_mshr.is_full() {
            return MemReply::Retry { mshr_full: true };
        }
        let (ch, _) = mapper.map(line);
        if !channels[ch].can_accept(AccessKind::Read) {
            return MemReply::Retry { mshr_full: false };
        }
        let ticket = bump(tickets);
        let token = bump(tickets);
        let outcome = self.l2_mshr.on_miss(line, ticket);
        debug_assert_eq!(outcome, MshrOutcome::AllocatedPrimary);
        self.outstanding.push((token, FillKind::Demand(line)));
        self.send(
            now,
            channels,
            mapper,
            Deferred {
                line,
                kind: AccessKind::Read,
                core,
                tag,
                token,
            },
        );
        MemReply::Pending {
            ticket,
            primary: true,
        }
    }

    /// Demand load. `extra` is the translation cost (TLB walk / fault),
    /// charged on cache-serviced accesses and overlapped with DRAM misses.
    #[allow(clippy::too_many_arguments)]
    pub fn load(
        &mut self,
        now: Cycle,
        core: CoreId,
        pa: PhysAddr,
        tag: MemTag,
        extra: Cycle,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        tickets: &mut u64,
    ) -> MemReply {
        let line = pa.line();
        if self.l1d.access(line, false) {
            return MemReply::Done {
                ready_at: now + self.l1_hit_latency + extra,
            };
        }
        if self.l2.access(line, false) {
            if let Some(v) = self.l1d.fill(line, false) {
                self.retire_l1_victim(now, channels, mapper, core, v);
            }
            return MemReply::Done {
                ready_at: now + self.l2_hit_latency + extra,
            };
        }
        self.demand_miss(now, channels, mapper, core, line, tag, tickets)
    }

    /// Instruction fetch (through the L1I).
    pub fn ifetch(
        &mut self,
        now: Cycle,
        core: CoreId,
        pa: PhysAddr,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        tickets: &mut u64,
    ) -> MemReply {
        let line = pa.line();
        if self.l1i.access(line, false) {
            return MemReply::Done { ready_at: now };
        }
        if self.l2.access(line, false) {
            if let Some(v) = self.l1i.fill(line, false) {
                self.retire_l1_victim(now, channels, mapper, core, v);
            }
            return MemReply::Done {
                ready_at: now + self.l2_hit_latency,
            };
        }
        self.demand_miss(
            now,
            channels,
            mapper,
            core,
            line,
            MemTag::segment(Segment::Code),
            tickets,
        )
    }

    /// Store (write-allocate, fire-and-forget through the store buffer).
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        &mut self,
        now: Cycle,
        core: CoreId,
        pa: PhysAddr,
        tag: MemTag,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        tickets: &mut u64,
    ) -> StoreReply {
        let line = pa.line();
        if self.l1d.access(line, true) {
            return StoreReply {
                primary_miss: false,
            };
        }
        if self.l2.access(line, true) {
            if let Some(v) = self.l1d.fill(line, true) {
                self.retire_l1_victim(now, channels, mapper, core, v);
            }
            return StoreReply {
                primary_miss: false,
            };
        }
        // L2 miss. If the line is already inbound, just mark it dirty-on-fill.
        if self.l2_mshr.pending(line) {
            if !self.pending_store_dirty.contains(&line) {
                self.pending_store_dirty.push(line);
            }
            return StoreReply {
                primary_miss: false,
            };
        }
        // Primary store miss: fill eagerly, fetch the line in the background.
        if let Some(v) = self.l2.fill(line, true) {
            self.retire_l2_victim(now, channels, mapper, core, v);
        }
        if let Some(v) = self.l1d.fill(line, true) {
            self.retire_l1_victim(now, channels, mapper, core, v);
        }
        let token = bump(tickets);
        self.outstanding.push((token, FillKind::StoreFill));
        self.send(
            now,
            channels,
            mapper,
            Deferred {
                line,
                kind: AccessKind::Read,
                core,
                tag,
                token,
            },
        );
        StoreReply { primary_miss: true }
    }

    /// Drop every cached line of physical frame `pfn` (page migration:
    /// the data moves, so cached copies are stale). Dirty lines are queued
    /// as writebacks. Returns the number of dirty lines found.
    pub fn invalidate_page(&mut self, pfn: u64) -> usize {
        // moca-lint: allow(hot-alloc): migration-rate path — runs once per migrated page, not per cycle
        let mut dirty: Vec<Victim> = Vec::new();
        for cache in [&mut self.l2, &mut self.l1d, &mut self.l1i] {
            dirty.extend(cache.invalidate_matching(|l| l.pfn() == pfn));
        }
        let n = dirty.len();
        for v in dirty {
            self.deferred.push_back(Deferred {
                line: v.line,
                kind: AccessKind::Write,
                core: CoreId(0),
                tag: MemTag::segment(Segment::Data),
                token: 0,
            });
        }
        n
    }

    /// Deliver a DRAM read completion: fill caches and return the core
    /// tickets to wake. Convenience wrapper over
    /// [`CoreHierarchy::on_completion_into`] for tests and external callers.
    pub fn on_completion(
        &mut self,
        now: Cycle,
        comp: &Completion,
        channels: &mut [Channel],
        mapper: &AddressMapper,
    ) -> Vec<u64> {
        // moca-lint: allow(hot-alloc): test/convenience wrapper; the system loop uses on_completion_into with a reusable buffer
        let mut woken = Vec::new();
        self.on_completion_into(now, comp, channels, mapper, &mut woken);
        woken
    }

    /// Allocation-free completion delivery: appends the core tickets to
    /// wake onto `woken` (in MSHR waiter order). The system loop passes a
    /// reusable buffer here, so the per-completion hot path performs no
    /// heap allocation.
    pub fn on_completion_into(
        &mut self,
        now: Cycle,
        comp: &Completion,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        woken: &mut Vec<u64>,
    ) {
        let kind = match self.outstanding.iter().position(|&(t, _)| t == comp.token) {
            None => return, // stale/unknown (should not happen)
            Some(pos) => self.outstanding.swap_remove(pos).1,
        };
        match kind {
            FillKind::StoreFill => {}
            FillKind::Demand(line) => {
                let dirty = match self.pending_store_dirty.iter().position(|&l| l == line) {
                    Some(pos) => {
                        self.pending_store_dirty.swap_remove(pos);
                        true
                    }
                    None => false,
                };
                if let Some(v) = self.l2.fill(line, dirty) {
                    self.retire_l2_victim(now, channels, mapper, comp.core, v);
                }
                let (into_l1i, into_l1d) = match comp.tag.segment {
                    Segment::Code => (true, false),
                    _ => (false, true),
                };
                if into_l1d {
                    if let Some(v) = self.l1d.fill(line, false) {
                        self.retire_l1_victim(now, channels, mapper, comp.core, v);
                    }
                }
                if into_l1i {
                    if let Some(v) = self.l1i.fill(line, false) {
                        self.retire_l1_victim(now, channels, mapper, comp.core, v);
                    }
                }
                self.l2_mshr.complete_into(line, woken);
            }
        }
    }
}

impl Default for CoreHierarchy {
    fn default() -> Self {
        CoreHierarchy::new()
    }
}

#[inline]
fn bump(counter: &mut u64) -> u64 {
    *counter += 1;
    *counter
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_common::{ObjectId, MB};
    use moca_dram::{ChannelConfig, DeviceTiming};

    fn setup() -> (CoreHierarchy, Vec<Channel>, AddressMapper, u64) {
        let h = CoreHierarchy::new();
        let channels = vec![Channel::new(ChannelConfig::new(
            DeviceTiming::ddr3(),
            32 * MB,
        ))];
        let mapper = AddressMapper::ranged(&[32 * MB]);
        (h, channels, mapper, 0)
    }

    fn tag() -> MemTag {
        MemTag::heap(ObjectId(0))
    }

    fn drain(
        h: &mut CoreHierarchy,
        channels: &mut [Channel],
        mapper: &AddressMapper,
        from: Cycle,
        limit: Cycle,
    ) -> Vec<(Cycle, Vec<u64>)> {
        let mut events = Vec::new();
        let mut out = Vec::new();
        for now in from..limit {
            out.clear();
            for ch in channels.iter_mut() {
                ch.tick(now, &mut out);
            }
            for c in &out {
                let woken = h.on_completion(now, c, channels, mapper);
                events.push((now, woken));
            }
            h.flush_deferred(now, channels, mapper);
        }
        events
    }

    #[test]
    fn load_miss_then_hit() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x10000);
        let r = h.load(1, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        assert!(matches!(r, MemReply::Pending { primary: true, .. }));
        let events = drain(&mut h, &mut ch, &map, 2, 500);
        let woken: usize = events.iter().map(|(_, w)| w.len()).sum();
        assert_eq!(woken, 1);
        // Now both L1 and L2 hold the line.
        let r = h.load(600, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        assert_eq!(r, MemReply::Done { ready_at: 602 });
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let (mut h, mut ch, map, mut t) = setup();
        // L1D: 64 KB 2-way = 512 sets; two lines mapping to the same L1 set
        // are 32 KB apart. Three such lines force an L1 eviction while all
        // stay in the 512 KB L2.
        let base = 0x100000;
        for i in 0..3u64 {
            let pa = PhysAddr(base + i * 32 * 1024);
            let _ = h.load(1 + i, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        }
        drain(&mut h, &mut ch, &map, 4, 600);
        let r = h.load(
            700,
            CoreId(0),
            PhysAddr(base),
            tag(),
            0,
            &mut ch,
            &map,
            &mut t,
        );
        // First line was evicted from L1 by the third fill but lives in L2.
        assert_eq!(r, MemReply::Done { ready_at: 722 });
    }

    #[test]
    fn secondary_miss_merges() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x40000);
        let a = h.load(1, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        let b = h.load(
            1,
            CoreId(0),
            PhysAddr(0x40008),
            tag(),
            0,
            &mut ch,
            &map,
            &mut t,
        );
        assert!(matches!(a, MemReply::Pending { primary: true, .. }));
        assert!(matches!(b, MemReply::Pending { primary: false, .. }));
        let events = drain(&mut h, &mut ch, &map, 2, 500);
        let woken: usize = events.iter().map(|(_, w)| w.len()).sum();
        assert_eq!(woken, 2, "both waiters wake on one fill");
        assert_eq!(ch[0].stats().reads, 1, "only one DRAM read");
    }

    #[test]
    fn mshr_exhaustion_retries() {
        let (mut h, mut ch, map, mut t) = setup();
        let mshrs = CacheConfig::l2().mshrs;
        for i in 0..mshrs as u64 {
            let r = h.load(
                1,
                CoreId(0),
                PhysAddr(0x100000 + i * 4096),
                tag(),
                0,
                &mut ch,
                &map,
                &mut t,
            );
            assert!(matches!(r, MemReply::Pending { .. }), "miss {i} rejected");
        }
        let r = h.load(
            1,
            CoreId(0),
            PhysAddr(0x900000),
            tag(),
            0,
            &mut ch,
            &map,
            &mut t,
        );
        assert_eq!(r, MemReply::Retry { mshr_full: true });
    }

    #[test]
    fn store_miss_fills_eagerly_and_fetches() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x50000);
        let r = h.store(1, CoreId(0), pa, tag(), &mut ch, &map, &mut t);
        assert!(r.primary_miss);
        // Immediately visible as a hit.
        let r2 = h.load(2, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        assert!(matches!(r2, MemReply::Done { .. }));
        drain(&mut h, &mut ch, &map, 3, 500);
        assert_eq!(ch[0].stats().reads, 1, "store-allocate fetch issued");
        assert!(h.is_idle());
    }

    #[test]
    fn store_into_pending_line_marks_fill_dirty() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x60000);
        let _ = h.load(1, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        let r = h.store(1, CoreId(0), pa, tag(), &mut ch, &map, &mut t);
        assert!(!r.primary_miss, "merged into pending fill");
        drain(&mut h, &mut ch, &map, 2, 500);
        // Evicting the line later must produce a DRAM writeback. Force
        // eviction by filling the L2 set: L2 has 512 sets × 16 ways; lines
        // 512*64 bytes apart share a set.
        let stride = 512 * 64;
        for i in 1..=16u64 {
            let _ = h.load(
                600 + i,
                CoreId(0),
                PhysAddr(0x60000 + i * stride),
                tag(),
                0,
                &mut ch,
                &map,
                &mut t,
            );
        }
        drain(&mut h, &mut ch, &map, 620, 3000);
        assert!(
            ch[0].stats().writes >= 1,
            "dirty fill should be written back on eviction"
        );
    }

    #[test]
    fn ifetch_miss_fills_l1i() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x70000);
        let r = h.ifetch(1, CoreId(0), pa, &mut ch, &map, &mut t);
        assert!(matches!(r, MemReply::Pending { .. }));
        drain(&mut h, &mut ch, &map, 2, 500);
        let r2 = h.ifetch(600, CoreId(0), pa, &mut ch, &map, &mut t);
        assert_eq!(r2, MemReply::Done { ready_at: 600 });
    }

    #[test]
    fn translation_extra_charged_on_hits() {
        let (mut h, mut ch, map, mut t) = setup();
        let pa = PhysAddr(0x80000);
        let _ = h.load(1, CoreId(0), pa, tag(), 0, &mut ch, &map, &mut t);
        drain(&mut h, &mut ch, &map, 2, 500);
        let r = h.load(600, CoreId(0), pa, tag(), 36, &mut ch, &map, &mut t);
        assert_eq!(r, MemReply::Done { ready_at: 638 });
    }

    #[test]
    fn deferred_writes_flush_under_backpressure() {
        let (mut h, mut ch, map, mut t) = setup();
        // Saturate the write queue directly, then trigger hierarchy writes.
        for i in 0..32u64 {
            let req = MemRequest {
                token: 0,
                line: LineAddr(i * 64),
                local_off: i * 4096,
                kind: AccessKind::Write,
                core: CoreId(0),
                tag: MemTag::segment(Segment::Data),
            };
            ch[0].enqueue(0, req);
        }
        // A store miss wants to send a store-fill read (fine) — but force a
        // write via L2 dirty eviction pressure instead: simplest is to call
        // send() indirectly via many dirty stores across one L2 set.
        let stride = 512 * 64;
        for i in 0..20u64 {
            let _ = h.store(
                1,
                CoreId(0),
                PhysAddr(0x100000 + i * stride),
                tag(),
                &mut ch,
                &map,
                &mut t,
            );
        }
        assert!(!h.is_idle());
        drain(&mut h, &mut ch, &map, 2, 20_000);
        assert!(h.is_idle(), "deferred queue should fully drain");
    }
}
