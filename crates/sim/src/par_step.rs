//! Deterministic intra-run parallel core stepping.
//!
//! `System::step` phase 3 (the per-core pipeline ticks) can fan out across a
//! persistent pool of worker threads. The result is **bit-identical to the
//! sequential step loop for any thread count**, by construction:
//!
//! * Per-core state (the core, its cache hierarchy, its instruction stream,
//!   its ticket counter, its TLB and page table inside [`Os`]) is touched
//!   only by the worker that owns that core this cycle — cores are
//!   partitioned round-robin over the cycle's awake list, so ownership is
//!   disjoint.
//! * Shared state (the DRAM channels, the OS frame allocator on page
//!   faults, telemetry) is only reachable through the [`MemPort`] methods,
//!   and every port call gates on a *frontier*: position `p` in the awake
//!   list may touch shared state only after every position `< p` has
//!   finished its entire tick. The global order of shared-state operations
//!   is therefore exactly the sequential order, and the gate also makes the
//!   accesses temporally exclusive (no two workers are past the gate at
//!   once), so no locks are needed.
//!
//! The protocol trades parallelism for exactness: a core's pipeline
//! bookkeeping (ROB, issue/commit, workload generation, skipped-window
//! catch-up) overlaps with its predecessors' memory traffic, but the memory
//! operations themselves serialize. Waits are spin-then-yield so the scheme
//! degrades gracefully when the host has fewer CPUs than threads.
//!
//! Thread count resolution: [`resolve_step_threads`] — explicit request,
//! else the `MOCA_STEP_THREADS` environment variable, else 1 (parallel
//! stepping is strictly opt-in; the sequential path has zero overhead).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::hierarchy::CoreHierarchy;
use crate::os::Os;
use crate::system::Port;
use moca_common::ids::MemTag;
use moca_common::{CoreId, Cycle, VirtAddr};
use moca_cpu::{Core, MemPort, MemReply, StoreReply};
use moca_dram::{AddressMapper, Channel};
use moca_telemetry::Telemetry;
use moca_workloads::AppRun;

/// Resolve the step-thread count: `explicit` if given, else the
/// `MOCA_STEP_THREADS` environment variable, else 1 (sequential).
pub fn resolve_step_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("MOCA_STEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid MOCA_STEP_THREADS={v:?} (want a positive integer)");
    }
    1
}

/// Spin briefly, then yield: correct on hosts with fewer CPUs than threads
/// (a pure spin would burn whole scheduler quanta waiting for a descheduled
/// peer).
#[inline]
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins > 64 {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// The shared-state gate: the index of the lowest position in this cycle's
/// awake list whose tick has not finished. Position `p` may touch shared
/// state once the frontier reaches `p`.
pub(crate) struct Frontier(AtomicUsize);

impl Frontier {
    fn new() -> Frontier {
        Frontier(AtomicUsize::new(0))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Release);
    }

    /// Block until every position `< pos` has finished its tick.
    #[inline]
    pub(crate) fn wait(&self, pos: usize) {
        let mut spins = 0;
        while self.0.load(Ordering::Acquire) != pos {
            relax(&mut spins);
        }
    }

    /// Mark position `pos` finished (caller must have waited on `pos`).
    #[inline]
    pub(crate) fn advance(&self, pos: usize) {
        self.0.store(pos + 1, Ordering::Release);
    }
}

/// Outcome of one core's tick, recorded by the owning worker and replayed
/// serially (in core order) by the bookkeeping pass on the main thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub(crate) enum SleepSlot {
    /// Runnable next cycle.
    #[default]
    Runnable,
    /// Stream drained and pipeline empty.
    Finished,
    /// Blocked until the given wake event.
    Sleep(Cycle),
}

/// Raw-parts view of everything phase 3 touches, captured from `&mut System`
/// for the duration of one cycle's fan-out. Per-core pointers are indexed
/// only at indices owned by the accessing worker; shared pointers are
/// dereferenced only past the frontier gate (see the module docs for why
/// that makes every access exclusive).
#[derive(Clone, Copy)]
pub(crate) struct TickCtx {
    pub cores: *mut Core,
    pub hiers: *mut CoreHierarchy,
    pub streams: *mut AppRun,
    pub tickets: *mut u64,
    pub steps_at_tick: *mut u64,
    pub committed: *mut u64,
    pub sleeps: *mut SleepSlot,
    pub hier_deferred: *mut bool,
    pub awake: *const usize,
    pub awake_len: usize,
    pub channels: *mut Channel,
    pub channels_len: usize,
    pub mapper: *const AddressMapper,
    pub os: *mut Os,
    pub tel: *mut Telemetry,
    pub now: Cycle,
    pub steps: u64,
}

unsafe impl Send for TickCtx {}
unsafe impl Sync for TickCtx {}

impl TickCtx {
    /// Materialize the sequential [`Port`] for core `i`. Caller must hold
    /// the frontier for its position (shared parts) and own core `i`
    /// (per-core parts).
    ///
    /// # Safety
    /// See the module docs: disjoint per-core ownership plus the frontier's
    /// temporal exclusivity make every reference unique while it lives.
    unsafe fn port(&self, i: usize) -> Port<'_> {
        Port {
            hier: &mut *self.hiers.add(i),
            channels: std::slice::from_raw_parts_mut(self.channels, self.channels_len),
            mapper: &*self.mapper,
            os: &mut *self.os,
            core_idx: i,
            tickets: &mut *self.tickets.add(i),
            tel: &mut *self.tel,
        }
    }
}

/// [`MemPort`] adapter that waits for the frontier before the first
/// shared-state operation of a tick. The frontier is monotonic within a
/// cycle, so one successful wait covers the rest of the tick.
struct GatedPort<'a> {
    ctx: &'a TickCtx,
    frontier: &'a Frontier,
    pos: usize,
    core_idx: usize,
    gated: bool,
}

impl GatedPort<'_> {
    #[inline]
    fn gate(&mut self) {
        if !self.gated {
            self.frontier.wait(self.pos);
            self.gated = true;
        }
    }
}

impl MemPort for GatedPort<'_> {
    fn load(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> MemReply {
        self.gate();
        unsafe { self.ctx.port(self.core_idx) }.load(now, core, va, tag)
    }

    fn store(&mut self, now: Cycle, core: CoreId, va: VirtAddr, tag: MemTag) -> StoreReply {
        self.gate();
        unsafe { self.ctx.port(self.core_idx) }.store(now, core, va, tag)
    }

    fn ifetch(&mut self, now: Cycle, core: CoreId, va: VirtAddr) -> MemReply {
        self.gate();
        unsafe { self.ctx.port(self.core_idx) }.ifetch(now, core, va)
    }
}

/// Tick every awake core owned by `worker` (round-robin partition of the
/// awake list), in ascending position order, honouring the frontier.
///
/// # Safety
/// `ctx` must point into a live `System` whose phase-3 state is untouched
/// by anything else for the duration of the call, and every participating
/// worker must use the same `ctx`, `frontier`, and `threads`.
pub(crate) unsafe fn worker_body(
    ctx: &TickCtx,
    frontier: &Frontier,
    worker: usize,
    threads: usize,
) {
    let mut p = worker;
    while p < ctx.awake_len {
        let i = *ctx.awake.add(p);
        let core = &mut *ctx.cores.add(i);
        let stream = &mut *ctx.streams.add(i);
        // Cycles on which the machine stepped while this core slept (the
        // ungated loop would have ticked it on those): see `System::step`.
        let skipped_live = ctx.steps - *ctx.steps_at_tick.add(i) - 1;
        *ctx.steps_at_tick.add(i) = ctx.steps;
        let mut port = GatedPort {
            ctx,
            frontier,
            pos: p,
            core_idx: i,
            gated: false,
        };
        core.tick_gated(ctx.now, skipped_live, &mut port, stream);
        *ctx.committed.add(i) = core.committed();
        *ctx.hier_deferred.add(i) = (*ctx.hiers.add(i)).has_deferred();
        *ctx.sleeps.add(i) = match core.sleep_state(ctx.now) {
            None if core.finished() => SleepSlot::Finished,
            None => SleepSlot::Runnable,
            Some(e) => SleepSlot::Sleep(e),
        };
        // A tick with no memory traffic never waited; the frontier still
        // has to pass through this position exactly once.
        frontier.wait(p);
        frontier.advance(p);
        p += threads;
    }
}

/// Persistent worker pool for one `run_warmed` invocation. Workers park on
/// a generation counter between cycles; the main thread publishes a
/// [`TickCtx`], bumps the generation, works position stripe 0 itself, and
/// waits for the others.
pub(crate) struct StepPool {
    threads: usize,
    /// Cycle generation; bumped (Release) after `ctx` is published.
    go: AtomicU64,
    /// Workers finished with the current generation.
    done: AtomicUsize,
    stop: AtomicBool,
    frontier: Frontier,
    ctx: UnsafeCell<Option<TickCtx>>,
}

// The UnsafeCell is written only by the main thread before the generation
// bump and read only by workers after observing it (Release/Acquire pair).
unsafe impl Sync for StepPool {}

impl StepPool {
    pub(crate) fn new(threads: usize) -> StepPool {
        assert!(threads >= 2, "a pool below two threads is pointless");
        StepPool {
            threads,
            go: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            frontier: Frontier::new(),
            ctx: UnsafeCell::new(None),
        }
    }

    /// Fan one cycle's phase 3 out across the pool. Blocks until every
    /// worker has finished its stripe.
    ///
    /// # Safety
    /// As for [`worker_body`]; additionally the caller must be the single
    /// main thread driving this pool.
    pub(crate) unsafe fn run_cycle(&self, ctx: TickCtx) {
        self.frontier.reset();
        self.done.store(0, Ordering::Release);
        *self.ctx.get() = Some(ctx);
        self.go.fetch_add(1, Ordering::Release);
        worker_body(&ctx, &self.frontier, 0, self.threads);
        let mut spins = 0;
        while self.done.load(Ordering::Acquire) < self.threads - 1 {
            relax(&mut spins);
        }
    }

    /// Body of worker `worker` (1-based stripe; stripe 0 is the main
    /// thread). Returns when [`StepPool::shutdown`] is called.
    pub(crate) fn worker_loop(&self, worker: usize) {
        let mut seen = 0u64;
        loop {
            let mut spins = 0;
            let g = loop {
                if self.stop.load(Ordering::Acquire) {
                    return;
                }
                let g = self.go.load(Ordering::Acquire);
                if g != seen {
                    break g;
                }
                relax(&mut spins);
            };
            seen = g;
            let ctx = unsafe { (*self.ctx.get()).expect("ctx published before generation bump") };
            unsafe { worker_body(&ctx, &self.frontier, worker, self.threads) };
            self.done.fetch_add(1, Ordering::Release);
        }
    }

    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_explicit() {
        assert_eq!(resolve_step_threads(Some(3)), 3);
        assert_eq!(resolve_step_threads(Some(0)), 1);
    }

    #[test]
    fn frontier_orders_positions() {
        let f = Frontier::new();
        f.wait(0);
        f.advance(0);
        f.wait(1);
        f.advance(1);
        f.wait(2);
    }
}
