//! System configuration: memory-system layouts and machine parameters.

use moca_common::{Cycle, ModuleKind, GB, MB};
use moca_cpu::CoreConfig;
use moca_dram::AddressMapper;
use moca_dram::{ChannelConfig, DeviceTiming};
use moca_vm::frames::{regions_from_capacities, ModuleRegion};
use serde::{Deserialize, Serialize};

/// Nominal total capacity of every evaluated memory system (2 GB, §V-B/C).
pub const NOMINAL_TOTAL: u64 = 2 * GB;

/// Capacities of one heterogeneous memory system (nominal megabytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeterogeneousLayout {
    /// RLDRAM3 module size in MB (one channel).
    pub rldram_mb: u64,
    /// HBM module size in MB (one channel).
    pub hbm_mb: u64,
    /// Size of *each* of the two LPDDR2 modules in MB (two channels).
    pub lpddr_mb_each: u64,
}

impl HeterogeneousLayout {
    /// §V-C config1 (the paper's default): 256 MB RLDRAM + 768 MB HBM +
    /// 2×512 MB LPDDR2.
    pub fn config1() -> Self {
        HeterogeneousLayout {
            rldram_mb: 256,
            hbm_mb: 768,
            lpddr_mb_each: 512,
        }
    }

    /// §VI-C config2: 512 MB RLDRAM + 512 MB HBM + 1 GB LPDDR2.
    pub fn config2() -> Self {
        HeterogeneousLayout {
            rldram_mb: 512,
            hbm_mb: 512,
            lpddr_mb_each: 512,
        }
    }

    /// §VI-C config3: 768 MB RLDRAM + 768 MB HBM + 512 MB LPDDR2.
    pub fn config3() -> Self {
        HeterogeneousLayout {
            rldram_mb: 768,
            hbm_mb: 768,
            lpddr_mb_each: 256,
        }
    }

    /// Total nominal bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.rldram_mb + self.hbm_mb + 2 * self.lpddr_mb_each) * MB
    }
}

/// Which memory system populates the four channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemSystemConfig {
    /// Four identical 512 MB modules of one technology (Homogen-DDR3 /
    /// -RL / -HBM / -LP), line-interleaved (`RoRaBaChCo`).
    Homogeneous(ModuleKind),
    /// The heterogeneous mix: RLDRAM, HBM, and two LPDDR2 channels, each
    /// owning a physical address range with a dedicated controller.
    Heterogeneous(HeterogeneousLayout),
}

impl MemSystemConfig {
    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            MemSystemConfig::Homogeneous(k) => format!("Homogen-{}", k.name()),
            MemSystemConfig::Heterogeneous(_) => "Heter".to_string(),
        }
    }

    /// Channel configurations (device + scaled capacity, nominal power
    /// capacity), in channel order.
    pub fn channel_configs(&self, capacity_scale: f64) -> Vec<ChannelConfig> {
        let scale = |mb: u64| scaled_capacity(mb * MB, capacity_scale);
        let ch = |timing: DeviceTiming, mb: u64| {
            ChannelConfig::new(timing, scale(mb)).with_power_capacity(mb * MB)
        };
        match self {
            MemSystemConfig::Homogeneous(kind) => (0..4)
                .map(|_| ch(DeviceTiming::for_kind(*kind), 512))
                .collect(),
            MemSystemConfig::Heterogeneous(h) => vec![
                ch(DeviceTiming::rldram3(), h.rldram_mb),
                ch(DeviceTiming::hbm(), h.hbm_mb),
                ch(DeviceTiming::lpddr2(), h.lpddr_mb_each),
                ch(DeviceTiming::lpddr2(), h.lpddr_mb_each),
            ],
        }
    }

    /// Physical frame regions matching the channel layout.
    pub fn frame_regions(&self, capacity_scale: f64) -> Vec<ModuleRegion> {
        let caps: Vec<(ModuleKind, usize, u64)> = match self {
            MemSystemConfig::Homogeneous(kind) => {
                // Interleaved channels: one logical region spanning all four
                // modules (the mapper stripes lines across channels).
                vec![(*kind, 0, scaled_capacity(2048 * MB, capacity_scale))]
            }
            MemSystemConfig::Heterogeneous(h) => vec![
                (
                    ModuleKind::Rldram3,
                    0,
                    scaled_capacity(h.rldram_mb * MB, capacity_scale),
                ),
                (
                    ModuleKind::Hbm,
                    1,
                    scaled_capacity(h.hbm_mb * MB, capacity_scale),
                ),
                (
                    ModuleKind::Lpddr2,
                    2,
                    scaled_capacity(h.lpddr_mb_each * MB, capacity_scale),
                ),
                (
                    ModuleKind::Lpddr2,
                    3,
                    scaled_capacity(h.lpddr_mb_each * MB, capacity_scale),
                ),
            ],
        };
        regions_from_capacities(&caps)
    }

    /// Address mapper for this layout.
    pub fn mapper(&self, capacity_scale: f64) -> AddressMapper {
        match self {
            MemSystemConfig::Homogeneous(_) => AddressMapper::Interleaved { channels: 4 },
            MemSystemConfig::Heterogeneous(_) => {
                let caps: Vec<u64> = self
                    .channel_configs(capacity_scale)
                    .iter()
                    .map(|c| c.capacity_bytes)
                    .collect();
                AddressMapper::ranged(&caps)
            }
        }
    }
}

/// Scale a nominal capacity, keeping it page-aligned and nonzero.
pub fn scaled_capacity(nominal_bytes: u64, scale: f64) -> u64 {
    let b = (nominal_bytes as f64 * scale) as u64;
    (b / moca_common::addr::PAGE_SIZE).max(16) * moca_common::addr::PAGE_SIZE
}

/// Whole-machine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores (1 for §VI-A, 4 for §VI-B onward).
    pub cores: usize,
    /// Core microarchitecture (Table I).
    pub core: CoreConfig,
    /// Memory system layout.
    pub mem: MemSystemConfig,
    /// Global footprint/capacity scale (see DESIGN.md): capacities *and*
    /// object footprints shrink together, preserving contention ratios.
    pub capacity_scale: f64,
    /// TLB entries per core.
    pub tlb_entries: usize,
    /// Page-walk latency added to cache-serviced accesses on a TLB miss.
    pub tlb_miss_penalty: Cycle,
    /// Extra first-touch cost of a page fault (allocation bookkeeping;
    /// §IV-E measures this as negligible, so it is small).
    pub page_fault_penalty: Cycle,
}

impl SystemConfig {
    /// Single-core system over the given memory configuration at the
    /// default 1/64 scale.
    pub fn single_core(mem: MemSystemConfig) -> SystemConfig {
        SystemConfig {
            cores: 1,
            core: CoreConfig::default(),
            mem,
            capacity_scale: moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE,
            tlb_entries: 64,
            tlb_miss_penalty: 36,
            page_fault_penalty: 120,
        }
    }

    /// Four-core system (the paper's multicore evaluation machine).
    pub fn quad_core(mem: MemSystemConfig) -> SystemConfig {
        SystemConfig::multi_core(4, mem)
    }

    /// N-core system at the default scale. The memory system stays the
    /// paper's four-channel 2 GB machine regardless of core count, so wider
    /// mixes raise channel contention the way a denser colocation would —
    /// the caller must pick a workload mix whose combined footprint fits
    /// (the frame space panics on exhaustion, it does not swap).
    pub fn multi_core(cores: usize, mem: MemSystemConfig) -> SystemConfig {
        SystemConfig {
            cores,
            ..SystemConfig::single_core(mem)
        }
    }

    /// Validate the whole configuration before building a [`crate::System`]:
    /// machine parameters sane, every DRAM device preset self-consistent
    /// ([`DeviceTiming::validate`]), and the virtual address-space layout
    /// well-formed ([`moca_vm::layout::validate_layout`]). Errors name the
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be positive".to_string());
        }
        if !(self.capacity_scale > 0.0 && self.capacity_scale <= 1.0) {
            return Err(format!(
                "capacity_scale {} must be in (0, 1]",
                self.capacity_scale
            ));
        }
        if self.tlb_entries == 0 {
            return Err("tlb_entries must be positive".to_string());
        }
        for (ci, ch) in self
            .mem
            .channel_configs(self.capacity_scale)
            .iter()
            .enumerate()
        {
            ch.timing
                .validate()
                .map_err(|e| format!("channel {ci}: {e}"))?;
            if ch.capacity_bytes == 0 || ch.capacity_bytes % moca_common::addr::PAGE_SIZE != 0 {
                return Err(format!(
                    "channel {ci}: capacity {} must be a positive page multiple",
                    ch.capacity_bytes
                ));
            }
        }
        moca_vm::layout::validate_layout()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config1_totals_2gb() {
        assert_eq!(HeterogeneousLayout::config1().total_bytes(), 2 * GB);
        assert_eq!(HeterogeneousLayout::config2().total_bytes(), 2 * GB);
        assert_eq!(HeterogeneousLayout::config3().total_bytes(), 2 * GB);
    }

    #[test]
    fn homogeneous_channels_are_uniform() {
        let cfgs = MemSystemConfig::Homogeneous(ModuleKind::Ddr3).channel_configs(1.0);
        assert_eq!(cfgs.len(), 4);
        for c in &cfgs {
            assert_eq!(c.timing.kind, ModuleKind::Ddr3);
            assert_eq!(c.capacity_bytes, 512 * MB);
        }
    }

    #[test]
    fn heterogeneous_channel_order_matches_regions() {
        let mem = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
        let chans = mem.channel_configs(1.0);
        let regions = mem.frame_regions(1.0);
        assert_eq!(chans.len(), 4);
        assert_eq!(regions.len(), 4);
        for (c, r) in chans.iter().zip(regions.iter()) {
            assert_eq!(c.timing.kind, r.kind);
            assert_eq!(c.capacity_bytes, r.capacity_bytes());
        }
    }

    #[test]
    fn scaled_capacity_is_page_aligned() {
        let s = scaled_capacity(256 * MB, 1.0 / 64.0);
        assert_eq!(s % moca_common::addr::PAGE_SIZE, 0);
        assert_eq!(s, 4 * MB);
    }

    #[test]
    fn ranged_mapper_covers_exact_capacity() {
        let mem = MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1());
        let m = mem.mapper(1.0 / 64.0);
        assert_eq!(m.total_bytes(), Some(32 * MB));
        assert_eq!(m.channels(), 4);
    }

    #[test]
    fn all_preset_configs_validate() {
        for mem in [
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
            MemSystemConfig::Homogeneous(ModuleKind::Hbm),
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ] {
            SystemConfig::quad_core(mem)
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", mem.label()));
        }
    }

    #[test]
    fn invalid_config_is_rejected_with_named_constraint() {
        let mut s = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        s.capacity_scale = 0.0;
        assert!(s.validate().unwrap_err().contains("capacity_scale"));
        let mut s = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        s.cores = 0;
        assert!(s.validate().unwrap_err().contains("cores"));
    }

    #[test]
    fn presets_construct() {
        let s = SystemConfig::single_core(MemSystemConfig::Homogeneous(ModuleKind::Ddr3));
        assert_eq!(s.cores, 1);
        let q = SystemConfig::quad_core(MemSystemConfig::Heterogeneous(
            HeterogeneousLayout::config1(),
        ));
        assert_eq!(q.cores, 4);
        assert_eq!(q.core.rob_entries, 84);
        let m = SystemConfig::multi_core(
            16,
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        );
        assert_eq!(m.cores, 16);
        m.validate().unwrap();
    }
}
