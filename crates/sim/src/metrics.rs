//! Run metrics: the quantities the paper's figures plot.
//!
//! * **Memory access time** (Figs. 8, 10, 14) — queue latency + service time
//!   summed over DRAM reads, measured at the memory controllers (§VI-A: "we
//!   calculate memory access time by adding up the queue latency, bus
//!   latency and the time required for the memory request to get serviced").
//! * **Memory EDP** (Figs. 9, 11, 15) — average memory power × total memory
//!   access time, the paper's literal definition (§VI-A: "we compute memory
//!   EDP by multiplying memory power and memory access latency"). Power is
//!   integrated at nominal module capacities (see DESIGN.md).
//! * **System performance / EDP** (Figs. 12, 13) — aggregate committed
//!   instructions per cycle, and (core + memory) energy × runtime, with the
//!   core power model calibrated to the paper's 21 W four-core average.

use moca_common::units::cycles_to_seconds;
use moca_common::{AppId, Cycle, ModuleKind, ObjectClass};
use moca_cpu::CoreStats;
use moca_dram::{ChannelStats, EnergyBreakdown};
use moca_vm::layout::PageIntent;
use serde::{Deserialize, Serialize};

/// Calibrated core power model: `P = STATIC + DYN_MAX · (IPC / width)`.
/// At the suite's typical utilization this yields ≈ 5.25 W/core, i.e. the
/// paper's 21 W average for the four-core system.
pub const CORE_STATIC_W: f64 = 2.8;
/// Dynamic power at full issue-width utilization.
pub const CORE_DYN_MAX_W: f64 = 3.6;

/// Per-channel end-of-run report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelReport {
    /// Module technology.
    pub kind: ModuleKind,
    /// Module capacity in bytes (scaled).
    pub capacity_bytes: u64,
    /// Controller statistics.
    pub stats: ChannelStats,
    /// Integrated energy.
    pub energy: EnergyBreakdown,
}

/// Aggregated memory-system metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemMetrics {
    /// Measured-window length in cycles (for average-power integration).
    pub runtime_cycles: Cycle,
    /// DRAM reads completed.
    pub reads: u64,
    /// Sum over reads of queue + service cycles — the paper's "memory
    /// access time".
    pub total_read_latency_cycles: u64,
    /// Per-core slice of `total_read_latency_cycles`.
    pub per_core_read_latency: Vec<u64>,
    /// Per-channel reports.
    pub channels: Vec<ChannelReport>,
}

impl MemMetrics {
    /// Total memory access time in seconds.
    pub fn access_time_s(&self) -> f64 {
        cycles_to_seconds(self.total_read_latency_cycles)
    }

    /// Average read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        moca_common::stats::safe_div(self.total_read_latency_cycles as f64, self.reads as f64)
    }

    /// Total memory energy in joules over the measured window.
    pub fn energy_j(&self) -> f64 {
        self.channels.iter().map(|c| c.energy.total_j()).sum()
    }

    /// Average memory power in watts over the measured window.
    pub fn avg_power_w(&self) -> f64 {
        moca_common::stats::safe_div(
            self.energy_j(),
            cycles_to_seconds(self.runtime_cycles.max(1)),
        )
    }

    /// Memory energy-delay product (W·s): the paper's definition — "we
    /// compute memory EDP by multiplying memory power and memory access
    /// latency" (§VI-A).
    pub fn edp(&self) -> f64 {
        self.avg_power_w() * self.access_time_s()
    }
}

/// One core's end-of-run result. Statistics are frozen at the instruction
/// target; the core keeps generating contention until every core reaches it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreResult {
    /// Benchmark name.
    pub app: String,
    /// Frozen core statistics.
    pub stats: CoreStats,
    /// Cycle at which the core hit its instruction target.
    pub finished_at: Cycle,
    /// Cycle-attribution snapshot (CPI stack + per-object stall ledger),
    /// present only when the run had attribution enabled.
    pub attr: Option<moca_telemetry::attribution::AttrSnapshot>,
}

impl CoreResult {
    /// Core energy over its measured window.
    pub fn core_energy_j(&self, width: usize) -> f64 {
        let util = (self.stats.ipc() / width as f64).min(1.0);
        let p = CORE_STATIC_W + CORE_DYN_MAX_W * util;
        p * cycles_to_seconds(self.finished_at)
    }
}

/// Where pages landed: per app × page class × module kind.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PlacementReport {
    /// `pages[app][class][kind]`; `class` indexes Lat/BW/Pow/Other,
    /// `kind` indexes [`ModuleKind::ALL`].
    pages: Vec<[[u64; 4]; 4]>,
}

fn class_index(intent: PageIntent) -> usize {
    match intent {
        PageIntent::Heap(ObjectClass::LatencySensitive) => 0,
        PageIntent::Heap(ObjectClass::BandwidthSensitive) => 1,
        PageIntent::Heap(ObjectClass::NonIntensive) => 2,
        _ => 3,
    }
}

/// Index of `kind` in [`ModuleKind::ALL`] (the match is exhaustive, so the
/// mapping can never miss; a unit test pins it to the array order).
fn kind_index(kind: ModuleKind) -> usize {
    match kind {
        ModuleKind::Ddr3 => 0,
        ModuleKind::Lpddr2 => 1,
        ModuleKind::Rldram3 => 2,
        ModuleKind::Hbm => 3,
    }
}

impl PlacementReport {
    /// Report for `apps` applications.
    pub fn new(apps: usize) -> PlacementReport {
        PlacementReport {
            pages: vec![[[0; 4]; 4]; apps],
        }
    }

    /// Record one placed page.
    pub fn record(&mut self, app: AppId, intent: PageIntent, kind: ModuleKind) {
        let a = app.0 as usize;
        if a >= self.pages.len() {
            self.pages.resize(a + 1, [[0; 4]; 4]);
        }
        self.pages[a][class_index(intent)][kind_index(kind)] += 1;
    }

    /// Pages of `app` whose intent class is `class` (`None` = non-heap)
    /// placed on `kind`.
    pub fn pages_of_class(&self, app: AppId, class: Option<ObjectClass>, kind: ModuleKind) -> u64 {
        let ci = match class {
            Some(c) => class_index(PageIntent::Heap(c)),
            None => 3,
        };
        self.pages
            .get(app.0 as usize)
            .map_or(0, |p| p[ci][kind_index(kind)])
    }

    /// All pages of `app` on module `kind`.
    pub fn app_pages_on(&self, app: AppId, kind: ModuleKind) -> u64 {
        self.pages
            // moca-lint: allow(narrowing-cast): AppId.0 is u32; u32 -> usize never truncates
            .get(app.0 as usize)
            .map_or(0, |p| p.iter().map(|row| row[kind_index(kind)]).sum())
    }

    /// Total pages placed.
    pub fn total_pages(&self) -> u64 {
        self.pages.iter().flat_map(|p| p.iter().flatten()).sum()
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Placement policy that ran.
    pub policy: String,
    /// Memory-system label ("Homogen-DDR3", "Heter", ...).
    pub mem_label: String,
    /// Cycles until every core reached its instruction target.
    pub runtime_cycles: Cycle,
    /// Per-core results.
    pub per_core: Vec<CoreResult>,
    /// Memory metrics.
    pub mem: MemMetrics,
    /// Page placement.
    pub placement: PlacementReport,
    /// Issue width (for the core power model).
    pub core_width: usize,
    /// Migration-engine statistics when dynamic migration was enabled.
    pub migration: Option<crate::migration::MigrationStats>,
    /// Occupancy timeline (free frames per module kind, migration counts),
    /// present only when the run had attribution enabled.
    pub occupancy: Option<Vec<moca_telemetry::attribution::OccupancySample>>,
}

impl RunResult {
    /// Total committed instructions across cores (each core's target).
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.stats.committed).sum()
    }

    /// System throughput in instructions per cycle.
    pub fn system_ipc(&self) -> f64 {
        moca_common::stats::safe_div(self.total_instructions() as f64, self.runtime_cycles as f64)
    }

    /// Total core energy (J).
    pub fn core_energy_j(&self) -> f64 {
        self.per_core
            .iter()
            .map(|c| c.core_energy_j(self.core_width))
            .sum()
    }

    /// System energy (J): cores + memory.
    pub fn system_energy_j(&self) -> f64 {
        self.core_energy_j() + self.mem.energy_j()
    }

    /// System EDP (J·s): system energy × runtime.
    pub fn system_edp(&self) -> f64 {
        self.system_energy_j() * cycles_to_seconds(self.runtime_cycles)
    }

    /// Average total core power (W): the sum of each core's average power
    /// over its own measured window — cross-check against the paper's 21 W
    /// for the four-core machine.
    pub fn avg_core_power_w(&self) -> f64 {
        self.per_core
            .iter()
            .map(|c| {
                moca_common::stats::safe_div(
                    c.core_energy_j(self.core_width),
                    cycles_to_seconds(c.finished_at.max(1)),
                )
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_report_counts() {
        let mut p = PlacementReport::new(2);
        p.record(
            AppId(0),
            PageIntent::Heap(ObjectClass::LatencySensitive),
            ModuleKind::Rldram3,
        );
        p.record(AppId(0), PageIntent::Stack, ModuleKind::Lpddr2);
        p.record(
            AppId(1),
            PageIntent::Heap(ObjectClass::BandwidthSensitive),
            ModuleKind::Hbm,
        );
        assert_eq!(p.total_pages(), 3);
        assert_eq!(
            p.pages_of_class(
                AppId(0),
                Some(ObjectClass::LatencySensitive),
                ModuleKind::Rldram3
            ),
            1
        );
        assert_eq!(p.pages_of_class(AppId(0), None, ModuleKind::Lpddr2), 1);
        assert_eq!(p.app_pages_on(AppId(1), ModuleKind::Hbm), 1);
        assert_eq!(p.app_pages_on(AppId(1), ModuleKind::Rldram3), 0);
    }

    #[test]
    fn mem_metrics_derivations() {
        let m = MemMetrics {
            reads: 10,
            total_read_latency_cycles: 500,
            ..MemMetrics::default()
        };
        assert!((m.avg_read_latency() - 50.0).abs() < 1e-12);
        assert!((m.access_time_s() - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn core_power_calibration_near_21w_for_quad() {
        // A typical suite core commits ~1.6 IPC on a 3-wide machine.
        let stats = CoreStats {
            committed: 1_600_000,
            cycles: 1_000_000,
            ..CoreStats::default()
        };
        let c = CoreResult {
            app: "x".into(),
            stats,
            finished_at: 1_000_000,
            attr: None,
        };
        let four = 4.0 * c.core_energy_j(3) / cycles_to_seconds(1_000_000);
        assert!(
            (15.0..=27.0).contains(&four),
            "4-core power {four:.1} W should be near the paper's 21 W"
        );
    }

    #[test]
    fn kind_index_matches_all_order() {
        for (i, &k) in ModuleKind::ALL.iter().enumerate() {
            assert_eq!(kind_index(k), i, "{} out of order", k.name());
        }
    }
}
