// Fixture: unseeded-rng violations (never compiled; scanned as text).

fn entropy() {
    let mut rng = rand::thread_rng();
    let r = SmallRng::from_entropy();
    let s = std::collections::hash_map::RandomState::new();
    let x: u8 = fastrand::u8(..);
    let _ = (rng, r, s, x);
}
