// Fixture: narrowing-cast violations (never compiled; scanned as text).

fn narrow(cycle: u64, pfn: u64, small: u16) {
    let a = cycle as u32; // flagged: cycle-flavored
    let b = pfn as usize; // flagged: address-flavored
    // A cast with no u64-flavored marker in the 3-line window is ignored.

    let c = small as u8;
    let _ = (a, b, c);
}
