//! Fixture for the hot-alloc rule: allocation tokens inside hot functions.

pub fn tick(&mut self, now: u64) {
    let mut woken = Vec::new();
    let q = vec![1, 2, 3];
}

pub fn on_completion_into(&mut self) {
    let label = self.name.to_string();
}

pub fn setup() {
    let cold = Vec::new();
}

pub fn step(&mut self) {
    // moca-lint: allow(hot-alloc): drained once per epoch, not per cycle
    let scratch = vec![0u8; 64];
    let msg = format!("cycle {}", self.now);
    let ids = xs.iter().collect::<Vec<_>>();
}
