//! `EventWheel::post` / `next_event_after` are per-cycle roots: helpers
//! they reach inherit hot-alloc / panic-in-hot even though no `tick` or
//! `step` name appears anywhere in the file.
pub struct EventWheel {
    buckets: Vec<Vec<u32>>,
}

impl EventWheel {
    pub fn post(&mut self, comp: usize, cycle: u64) {
        self.stash(comp, cycle);
    }

    pub fn next_event_after(&mut self, now: u64) -> Option<(u64, usize)> {
        let first = self.buckets.first().unwrap();
        let _ = (first, now);
        None
    }

    fn stash(&mut self, comp: usize, cycle: u64) {
        let tag = format!("{comp}@{cycle}");
        let _ = tag;
    }

    fn rebuild(&mut self) {
        // Construction-rate: unreachable from any root, stays unflagged.
        self.buckets = Vec::new();
    }
}
