// Fixture: pragma handling (never compiled; scanned as text).
use std::collections::HashMap; // moca-lint: allow(det-map): fixture demonstrates same-line pragma

// moca-lint: allow(det-map): fixture demonstrates line-above pragma
use std::collections::HashSet;

// moca-lint: allow(det-map):
use std::collections::HashMap; // empty justification does not suppress

// moca-lint: allow(wall-clock): wrong rule name does not suppress det-map
use std::collections::HashSet;
