// Fixture: attr-exclusive — CPI-stack bucket increments per brace scope.
fn tick(buckets: &mut CycleBuckets) {
    buckets.committing += 1;
    buckets.load_miss += 1; // second distinct bucket in the fn scope: flagged
    buckets.committing += 1; // same field again: not flagged
    if miss {
        buckets.rob_full += 1; // nested arm: its own scope, clean
    } else {
        buckets.frontend_empty += 1; // sibling arm: clean
    }
    // moca-lint: allow(attr-exclusive): exclusivity audited by the invariant test
    buckets.mshr_full += 1;
    buckets.mshr_full_cycles += 2; // longer identifier: not a bucket field
    ledger.other_kind += 1; // `.other_kind` is not `.other`
}

fn merge(a: &mut CycleBuckets, b: &CycleBuckets) {
    a.committing += b.committing;
    a.other += b.other; // second distinct bucket in the merge scope: flagged
}
