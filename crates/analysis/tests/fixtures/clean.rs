// Fixture: a clean simulated-path file (never compiled; scanned as text).
use moca_common::det::{DetMap, DetSet};
use moca_common::units::narrow_u32;

fn good(cycle: u64) -> u32 {
    let mut m: DetMap<u64, u64> = DetMap::new();
    m.insert(cycle, 1);
    let s: DetSet<u64> = DetSet::new();
    let _ = s;
    narrow_u32(cycle)
}
