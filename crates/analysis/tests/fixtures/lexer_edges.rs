//! Lexer edge cases the v1 line-oriented scanner handled wrong.
pub struct Edges {
    map: std::collections::HashMap<u64, u64>,
}

pub fn raw_strings() -> (&'static str, &'static str) {
    let a = r#"// not a comment: HashMap<K, V> {"#;
    let b = r"thread_rng } {";
    (a, b)
}

pub fn nested_comments() -> u64 {
    /* outer /* inner SystemTime */ still HashMap */
    7
}

pub fn char_literals() -> usize {
    let open = '{';
    let close = '}';
    let lt: &'static str = "x";
    usize::from(open == close) + lt.len()
}

pub fn tick(xs: &[u64]) -> Vec<u64> {
    xs.iter()
        .map(|x| x + 1)
        .collect::<
            Vec<u64>,
        >()
}
