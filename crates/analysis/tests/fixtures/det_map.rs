// Fixture: det-map violations (never compiled; scanned as text).
use std::collections::HashMap;
use std::collections::HashSet;

struct S {
    // In a comment: HashMap should NOT be reported here.
    m: HashMap<u64, u64>,
    s: HashSet<u64>,
}

fn strings_do_not_count() -> &'static str {
    "a HashMap mentioned inside a string literal"
}

fn ident_boundary() {
    // Not matches: identifiers merely containing the token.
    let MyHashMapLike = 0;
    let _ = MyHashMapLike;
}
