// Fixture: wall-clock violations (never compiled; scanned as text).
use std::time::Instant;

fn measure() {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    std::thread::spawn(|| {});
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = t0;
}

/* block comment: Instant and SystemTime in here are not findings,
   even across lines. thread::spawn too. */
