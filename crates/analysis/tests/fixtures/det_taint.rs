//! Determinism taint: a hash-ordered sum flowing into a digest sink.
use std::collections::HashMap;

pub struct Ledger {
    vals: HashMap<u64, u64>,
    digest: u64,
}

impl Ledger {
    fn sum_unordered(&self) -> u64 {
        let m: &HashMap<u64, u64> = &self.vals;
        let mut acc = 0;
        for (_k, v) in m.iter() {
            acc += *v;
        }
        acc
    }

    pub fn publish(&mut self) {
        let s = self.sum_unordered();
        self.record_digest(s);
    }

    pub fn profile_span(&mut self) {
        // moca-lint: allow(wall-clock): host-side profiling, never read by the simulation
        let t0 = std::time::Instant::now();
        let _ = t0;
        self.record_digest(0);
    }

    fn record_digest(&mut self, v: u64) {
        self.digest ^= v;
    }
}
