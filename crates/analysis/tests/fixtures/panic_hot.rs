//! Abort paths on the per-cycle hot path, direct and via the call graph.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    pub fn tick(&mut self, now: u64) {
        let head = self.items.pop().unwrap();
        self.drain_one(head, now);
    }

    fn drain_one(&mut self, head: u64, now: u64) {
        if head > now {
            panic!("future item");
        }
        // moca-lint: allow(panic-in-hot): ring invariant — slot is filled before drain
        let _ = self.items.first().expect("filled");
    }

    fn report(&self) -> u64 {
        self.items.last().copied().expect("cold path")
    }
}
