//! A helper called only from `tick`: v1's line scanner missed everything
//! here, because no single line both declares a hot function and allocates.
pub struct Engine {
    buf: Vec<u64>,
}

impl Engine {
    pub fn tick(&mut self, now: u64) {
        self.refill(now);
    }

    fn refill(&mut self, now: u64) {
        let extra = vec![now; 4];
        self.buf.extend(extra);
        let last = self.buf.last().copied().unwrap();
        let _ = last;
    }

    fn cold_setup(&mut self) {
        let warmup: Vec<u64> = Vec::new();
        self.buf.extend(warmup);
    }
}
