//! Engine tests for the v2 analyzer: call-graph hot-path propagation,
//! determinism taint tracking, the token-stream lexer's edge cases, the
//! stale-baseline machinery, and SARIF emission. The two headline fixtures
//! (`hot_call_graph.rs`, the multi-line collect in `lexer_edges.rs`) are
//! sites the v1 line scanner provably missed.

use moca_lint::functions::FnTable;
use moca_lint::lexer::lex;
use moca_lint::{
    baseline_key, hot_fn_name, load_baseline, prune_baseline_file, scan_crate, scan_file,
    stale_baseline_keys, to_sarif, Finding, SourceFile,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn scan_fixture(crate_name: &str, name: &str) -> Vec<Finding> {
    scan_file(crate_name, Path::new(name), &fixture(name))
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---- call-graph hot-path propagation ----

#[test]
fn hot_alloc_propagates_to_helpers_called_from_tick() {
    // v1 only looked inside functions *named* like hot roots; the
    // allocation and the unwrap live in `refill`, reached via `tick`.
    let f = scan_fixture("sim", "hot_call_graph.rs");
    assert_eq!(lines_of(&f, "hot-alloc"), vec![13]);
    assert_eq!(lines_of(&f, "panic-in-hot"), vec![15]);
    assert_eq!(f.len(), 2, "cold_setup must stay unflagged: {f:#?}");
    // The message names the propagation chain for triage.
    assert!(
        f[0].message.contains("Engine::tick") && f[0].message.contains("Engine::refill"),
        "chain missing from message: {}",
        f[0].message
    );
}

#[test]
fn panic_in_hot_flags_direct_and_reachable_aborts() {
    let f = scan_fixture("sim", "panic_hot.rs");
    // unwrap in tick's own body, panic! in the reached helper; the
    // pragma'd expect and the cold `report` are clean.
    assert_eq!(lines_of(&f, "panic-in-hot"), vec![8, 14]);
    assert_eq!(f.len(), 2);
}

#[test]
fn hot_propagation_crosses_files_within_a_crate() {
    let files = [
        SourceFile {
            rel: PathBuf::from("a.rs"),
            raw: "pub fn tick(e: &mut Vec<u64>) {\n    helper(e);\n}\n".to_string(),
        },
        SourceFile {
            rel: PathBuf::from("b.rs"),
            raw: "pub fn helper(e: &mut Vec<u64>) {\n    e.push(format!(\"x\").len() as u64);\n}\n"
                .to_string(),
        },
    ];
    let f = scan_crate("sim", &files);
    assert_eq!(lines_of(&f, "hot-alloc"), vec![2]);
    assert_eq!(f[0].path, PathBuf::from("b.rs"));
}

#[test]
fn wheel_entry_points_are_cycle_roots() {
    // No `tick`/`step` name anywhere in the fixture: hotness enters purely
    // through the `EventWheel::post` / `next_event_after` roots.
    let f = scan_fixture("sim", "wheel_hot.rs");
    assert_eq!(lines_of(&f, "panic-in-hot"), vec![14]);
    assert_eq!(lines_of(&f, "hot-alloc"), vec![20]);
    assert_eq!(f.len(), 2, "rebuild must stay unflagged: {f:#?}");
    let alloc = f.iter().find(|x| x.rule == "hot-alloc").unwrap();
    assert!(
        alloc.message.contains("EventWheel::post") && alloc.message.contains("EventWheel::stash"),
        "chain missing from message: {}",
        alloc.message
    );
}

#[test]
fn fn_table_qualifies_impl_methods() {
    let toks = lex("impl Channel {\n    fn issue(&mut self) {}\n    fn new() -> Channel { Channel }\n}\nfn free() {}\n");
    let table = FnTable::build(&[toks]);
    let quals: Vec<&str> = table.fns.iter().map(|f| f.qual.as_str()).collect();
    assert_eq!(quals, vec!["Channel::issue", "Channel::new", "free"]);
    let hot = table.hot_set();
    assert!(hot[0].is_some(), "Channel::issue is a cycle root");
    assert!(hot[1].is_none() && hot[2].is_none());
}

// ---- determinism taint tracking ----

#[test]
fn det_taint_flags_hash_ordered_value_reaching_digest_sink() {
    let f = scan_fixture("sim", "det_taint.rs");
    // The HashMap mentions themselves are det-map findings; the taint
    // finding sits at the sink call in `publish`, which receives the
    // hash-ordered sum through `sum_unordered`'s return value.
    assert_eq!(lines_of(&f, "det-map"), vec![2, 5, 11]);
    assert_eq!(lines_of(&f, "det-taint"), vec![21]);
    let taint = f.iter().find(|x| x.rule == "det-taint").unwrap();
    assert!(
        taint.message.contains("hash-ordered iteration")
            && taint.message.contains("Ledger::sum_unordered"),
        "taint message must name source and origin: {}",
        taint.message
    );
    // profile_span's clock read carries a wall-clock pragma declaring it
    // host-only, so it seeds no taint and its sink call stays clean — and
    // the pragma also suppresses the wall-clock finding itself.
    assert_eq!(f.len(), 4, "unexpected findings: {f:#?}");
}

#[test]
fn det_taint_does_not_apply_outside_sim_path_crates() {
    let f = scan_fixture("workloads", "det_taint.rs");
    assert!(lines_of(&f, "det-taint").is_empty());
}

// ---- lexer edge cases ----

#[test]
fn lexer_handles_raw_strings_nested_comments_and_char_braces() {
    let f = scan_fixture("sim", "lexer_edges.rs");
    // Only the real HashMap field is a det-map finding: the raw-string
    // contents and the nested block comment are not code. The braces in
    // raw strings and the '{' / '}' char literals must not desync scope
    // tracking (a desync would spray bogus findings or panic).
    assert_eq!(lines_of(&f, "det-map"), vec![3]);
    // The multi-line `.collect::<\n Vec<u64>>()` inside `tick`: v1 matched
    // the literal text `.collect::<Vec` on a single line and missed this.
    assert_eq!(lines_of(&f, "hot-alloc"), vec![27]);
    assert_eq!(f.len(), 2, "unexpected findings: {f:#?}");
}

// ---- hot_fn_name satellite ----

#[test]
fn hot_fn_name_covers_issue_and_evaluate_entry_points() {
    assert_eq!(
        hot_fn_name("    fn issue(&mut self, now: Cycle) -> bool {"),
        Some("issue")
    );
    assert_eq!(
        hot_fn_name("    pub fn evaluate_attributed(&mut self, apps: &[&str]) {"),
        Some("evaluate_attributed")
    );
    assert_eq!(
        hot_fn_name("pub fn evaluate(&mut self) {"),
        Some("evaluate")
    );
    assert_eq!(
        hot_fn_name("fn evaluate_custom(&mut self) {"),
        Some("evaluate_custom")
    );
    // Prefixes must not over-match.
    assert_eq!(hot_fn_name("fn issue_width(&self) -> usize {"), None);
    assert_eq!(hot_fn_name("fn evaluated(&self) -> bool {"), None);
    assert_eq!(hot_fn_name("fn reissue(&mut self) {"), None);
}

// ---- stale-baseline machinery ----

#[test]
fn stale_baseline_entries_are_detected_and_pruned() {
    let findings = scan_fixture("sim", "panic_hot.rs");
    let live_key = baseline_key(&findings[0]);
    let stale_key = "hot-alloc|gone.rs|let v = Vec::new();";

    let mut baseline = BTreeSet::new();
    baseline.insert(live_key.clone());
    baseline.insert(stale_key.to_string());
    let stale = stale_baseline_keys(&findings, &baseline);
    assert_eq!(stale, vec![stale_key.to_string()]);

    // Prune rewrites the file dropping only the stale entry, keeping
    // comments, blank lines, and the still-live key.
    let dir = std::env::temp_dir().join(format!("moca-lint-prune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.txt");
    std::fs::write(
        &path,
        format!("# header comment\n\n{live_key}\n{stale_key}\n"),
    )
    .unwrap();
    let dropped = prune_baseline_file(&path, &stale.into_iter().collect()).unwrap();
    assert_eq!(dropped, 1);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("# header comment"));
    assert!(text.contains(&live_key));
    assert!(!text.contains(stale_key));
    assert_eq!(load_baseline(&path).len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

// ---- SARIF emission ----

#[test]
fn sarif_output_carries_rules_and_locations() {
    let findings = scan_fixture("sim", "panic_hot.rs");
    let s = to_sarif(&findings, "0.1.0-test");
    assert!(s.contains("\"version\": \"2.1.0\""));
    assert!(s.contains("\"name\": \"moca-lint\""));
    // Every catalog rule is declared; every finding becomes a result.
    for (rule, _) in moca_lint::RULES {
        assert!(
            s.contains(&format!("\"id\": \"{rule}\"")),
            "missing rule {rule}"
        );
    }
    assert!(s.contains("\"ruleId\": \"panic-in-hot\""));
    assert!(s.contains("\"uri\": \"panic_hot.rs\""));
    assert!(s.contains("\"startLine\": 8") && s.contains("\"startLine\": 14"));
    // Structurally balanced (cheap well-formedness check without a JSON
    // parser in the dependency-free test).
    assert_eq!(s.matches('{').count(), s.matches('}').count());
    assert_eq!(s.matches('[').count(), s.matches(']').count());
}

#[test]
fn sarif_escapes_quotes_and_backslashes_in_excerpts() {
    let findings = vec![Finding {
        rule: "det-map",
        path: PathBuf::from("x.rs"),
        line: 1,
        excerpt: "let s = \"a\\\"b\";".to_string(),
        message: "quote \" and backslash \\ in message".to_string(),
    }];
    let s = to_sarif(&findings, "0");
    assert!(s.contains("quote \\\" and backslash \\\\ in message"));
    assert_eq!(s.matches('{').count(), s.matches('}').count());
}
