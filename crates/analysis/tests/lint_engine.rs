//! Engine tests for `moca-lint`: each rule against a text fixture, pragma
//! and baseline suppression, the comment/string stripper, and — the one
//! that matters operationally — the live workspace being clean under
//! `--deny` semantics.

use moca_lint::{
    apply_baseline, baseline_key, check_model, has_allow_pragma, has_token, load_baseline,
    scan_file, scan_workspace, strip_code, Finding,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn scan_fixture(crate_name: &str, name: &str) -> Vec<Finding> {
    scan_file(crate_name, Path::new(name), &fixture(name))
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn det_map_rule_flags_hash_collections_in_sim_path_crates() {
    let f = scan_fixture("sim", "det_map.rs");
    // Two `use` lines and two struct fields; the comment, the string
    // literal, and the `MyHashMapLike` identifier are not findings.
    assert_eq!(lines_of(&f, "det-map"), vec![2, 3, 7, 8]);
    assert!(f.iter().all(|f| f.rule == "det-map"));
}

#[test]
fn det_map_rule_is_scoped_to_sim_path_crates() {
    let f = scan_fixture("workloads", "det_map.rs");
    assert!(
        lines_of(&f, "det-map").is_empty(),
        "det-map must not apply outside simulated-path crates"
    );
}

#[test]
fn wall_clock_rule_flags_clocks_and_threads() {
    let f = scan_fixture("sim", "wall_clock.rs");
    // use Instant, Instant::now, SystemTime::now, thread::spawn,
    // thread::sleep; the block comment at the bottom is stripped.
    assert_eq!(lines_of(&f, "wall-clock"), vec![2, 5, 6, 7, 8]);
}

#[test]
fn wall_clock_rule_exempts_telemetry_and_bench() {
    for host_crate in ["telemetry", "bench"] {
        let f = scan_fixture(host_crate, "wall_clock.rs");
        assert!(
            lines_of(&f, "wall-clock").is_empty(),
            "{host_crate} is host-side by design"
        );
    }
}

#[test]
fn unseeded_rng_rule_applies_everywhere() {
    for any_crate in ["sim", "telemetry", "workloads"] {
        let f = scan_fixture(any_crate, "unseeded_rng.rs");
        assert_eq!(
            lines_of(&f, "unseeded-rng"),
            vec![4, 5, 6, 7],
            "ambient entropy is forbidden even in host-side crates ({any_crate})"
        );
    }
}

#[test]
fn narrowing_cast_rule_needs_a_u64_flavored_marker() {
    let f = scan_fixture("dram", "narrowing_cast.rs");
    // `cycle as u32` and `pfn as usize` are flagged; `small as u8` has no
    // cycle/address marker in its 3-line window.
    assert_eq!(lines_of(&f, "narrowing-cast"), vec![4, 5]);
}

#[test]
fn hot_alloc_rule_flags_allocation_only_inside_hot_functions() {
    let f = scan_fixture("cache", "hot_alloc.rs");
    // Flagged: Vec::new and vec![ in `tick`, .to_string() in
    // `on_completion_into`, format! and collect::<Vec<_>> in `step`.
    // Not flagged: the allocation in cold `setup`; the pragma-suppressed
    // vec![ in `step`.
    assert_eq!(lines_of(&f, "hot-alloc"), vec![4, 5, 9, 19, 20]);
}

#[test]
fn hot_alloc_rule_is_scoped_to_sim_path_crates() {
    let f = scan_fixture("telemetry", "hot_alloc.rs");
    assert!(
        lines_of(&f, "hot-alloc").is_empty(),
        "hot-alloc must not apply outside simulated-path crates"
    );
}

#[test]
fn attr_exclusive_rule_flags_second_bucket_in_same_scope() {
    let f = scan_fixture("cpu", "attr_exclusive.rs");
    // Flagged: load_miss after committing in the `tick` body, `.other` after
    // `.committing` in the `merge` body. Not flagged: a repeat of the same
    // field, increments in disjoint if/else arms, the pragma-suppressed
    // mshr_full, and non-bucket identifiers (`.mshr_full_cycles`,
    // `.other_kind`, reads without `+=`).
    assert_eq!(lines_of(&f, "attr-exclusive"), vec![4, 19]);
    assert!(f.iter().all(|f| f.rule == "attr-exclusive"));
}

#[test]
fn attr_exclusive_rule_is_scoped_to_sim_path_crates() {
    let f = scan_fixture("telemetry", "attr_exclusive.rs");
    assert!(
        lines_of(&f, "attr-exclusive").is_empty(),
        "attr-exclusive must not apply outside simulated-path crates"
    );
}

#[test]
fn hot_fn_detection_respects_identifier_boundaries() {
    use moca_lint::hot_fn_name;
    assert_eq!(hot_fn_name("pub fn tick(&mut self) {"), Some("tick"));
    assert_eq!(hot_fn_name("fn tick_impl(&mut self,"), Some("tick_impl"));
    assert_eq!(hot_fn_name("pub(crate) fn step(&mut self)"), Some("step"));
    assert_eq!(
        hot_fn_name("fn on_completion_into("),
        Some("on_completion_into")
    );
    assert_eq!(hot_fn_name("fn step_count(&self)"), None);
    assert_eq!(hot_fn_name("fn sticker()"), None);
    assert_eq!(hot_fn_name("let often = 3;"), None);
}

#[test]
fn pragmas_suppress_on_same_line_or_line_above_with_justification() {
    let f = scan_fixture("sim", "pragmas.rs");
    // Suppressed: same-line pragma (line 2), line-above pragma (line 5).
    // Not suppressed: empty justification (line 8), wrong rule (line 11).
    assert_eq!(lines_of(&f, "det-map"), vec![8, 11]);
}

#[test]
fn pragma_parser_requires_rule_and_justification() {
    assert!(has_allow_pragma(
        "// moca-lint: allow(det-map): keyed by BTree elsewhere",
        "det-map"
    ));
    assert!(!has_allow_pragma(
        "// moca-lint: allow(det-map):   ",
        "det-map"
    ));
    assert!(!has_allow_pragma(
        "// moca-lint: allow(det-map) missing colon",
        "det-map"
    ));
    assert!(!has_allow_pragma(
        "// moca-lint: allow(wall-clock): other rule",
        "det-map"
    ));
}

#[test]
fn clean_fixture_has_no_findings() {
    assert!(scan_fixture("sim", "clean.rs").is_empty());
}

#[test]
fn baseline_suppresses_exact_findings_only() {
    let f = scan_fixture("sim", "det_map.rs");
    assert_eq!(f.len(), 4);
    let baseline: BTreeSet<String> = f[..2].iter().map(baseline_key).collect();
    let (active, baselined) = apply_baseline(f, &baseline);
    assert_eq!(active.len(), 2);
    assert_eq!(baselined.len(), 2);
    assert_eq!(lines_of(&active, "det-map"), vec![7, 8]);
}

#[test]
fn baseline_file_ignores_comments_and_blanks() {
    let dir = std::env::temp_dir().join(format!("moca-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("baseline.txt");
    std::fs::write(&p, "# comment\n\nrule|path.rs|let x = 1;\n").unwrap();
    let b = load_baseline(&p);
    assert_eq!(b.len(), 1);
    assert!(b.contains("rule|path.rs|let x = 1;"));
    assert!(load_baseline(&dir.join("missing.txt")).is_empty());
}

#[test]
fn stripper_handles_comments_strings_and_lifetimes() {
    let stripped = strip_code(
        "let a = 1; // HashMap in comment\n\
         /* HashMap\n   still comment /* nested */ HashMap */ let b = 2;\n\
         let s = \"HashMap \\\" escaped\";\n\
         let r = r#\"HashMap raw\"#;\n\
         let c = 'h'; let lt: &'static str = \"x\";",
    );
    for line in &stripped {
        assert!(!line.contains("HashMap"), "leaked token in {line:?}");
    }
    assert!(stripped[2].contains("let b = 2;"));
    assert!(stripped[5].contains("let c ="));
    assert!(stripped[5].contains("static"));
}

#[test]
fn token_matching_respects_identifier_boundaries() {
    assert!(has_token("use std::collections::HashMap;", "HashMap"));
    assert!(has_token("HashMap::new()", "HashMap"));
    assert!(!has_token("MyHashMapLike", "HashMap"));
    assert!(!has_token("HashMapper", "HashMap"));
    assert!(has_token("x as u32", "as u32"));
    assert!(!has_token("x as u32x", "as u32"));
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// The operational guarantee: the committed tree is clean under `--deny`
/// with the committed baseline. A regression anywhere in the workspace
/// fails this test even before CI runs the binary.
#[test]
fn live_workspace_is_clean_under_deny() {
    let root = workspace_root();
    let findings = scan_workspace(&root).expect("scan workspace");
    let baseline = load_baseline(&root.join("lint-baseline.txt"));
    let (active, _) = apply_baseline(findings, &baseline);
    assert!(
        active.is_empty(),
        "unsuppressed lint findings in the workspace:\n{}",
        active
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Seeded violations are detected end to end through the workspace scanner
/// (written into a scratch tree shaped like the repo, not the live one).
#[test]
fn seeded_violation_fails_the_workspace_scan() {
    let dir = std::env::temp_dir().join(format!("moca-lint-seed-{}", std::process::id()));
    let src = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("lib.rs"),
        "use std::collections::HashMap;\nlet t0 = std::time::Instant::now();\n",
    )
    .unwrap();
    let findings = scan_workspace(&dir).expect("scan scratch tree");
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains("det-map"));
    assert!(rules.contains("wall-clock"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_checks_all_pass_on_committed_presets() {
    let checks = check_model();
    assert!(checks.len() >= 12, "expected presets + layout + configs");
    for c in &checks {
        assert!(c.result.is_ok(), "{} failed: {:?}", c.name, c.result);
    }
    // The allocator identities cover every layout at both scales, plus the
    // stripe/color-period divisibility check.
    let alloc_checks = checks
        .iter()
        .filter(|c| c.name.starts_with("frame allocator"))
        .count();
    assert_eq!(alloc_checks, 14, "7 layouts x 2 scales");
    assert!(checks
        .iter()
        .any(|c| c.name.contains("stripe chunk vs L2 color period")));
    assert!(
        checks.iter().any(|c| c.name.ends_with("@ scale 1")),
        "full-scale allocator identities must be validated"
    );
}
