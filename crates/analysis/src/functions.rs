//! Function extraction and per-crate call graph over the token stream.
//!
//! The v2 analyzer's flow-aware passes (hot-path propagation, determinism
//! taint tracking) need to know, per crate: which functions exist, where
//! their bodies are, what each body calls, and which functions are
//! reachable from the per-cycle hot roots. All of that is derived here
//! from [`crate::lexer`] tokens — no syntax tree, just span arithmetic
//! over a stream that already has literals and comments out of the way.

use crate::lexer::{Token, TokenKind};

/// Keywords that look like call heads but never are (`if (…)`,
/// `return (…)`, `match (…)`, tuple-struct `Self(…)`, …).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "fn", "impl", "struct", "enum",
    "trait", "mod", "use", "pub", "unsafe", "move", "as", "in", "where", "else", "break",
    "continue", "ref", "mut", "self", "Self", "super", "crate", "dyn", "box", "async", "await",
    "type", "const", "static", "extern",
];

/// Callees treated as construction-rate by convention: reachability does
/// not propagate *into* them (their bodies run at setup frequency even
/// when the call site is hot — e.g. a `Foo::new` invoked from a cold
/// branch of a hot function would otherwise drag the whole constructor
/// graph into the hot set).
const COLD_CALLEES: &[&str] = &["new", "default", "with_capacity", "quick"];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Last path segment (`issue` for `Channel::issue(…)`, method name for
    /// `.issue(…)`).
    pub name: String,
    /// `Type::name` when the call is path-qualified.
    pub qual: Option<String>,
    /// 1-based line of the callee name token.
    pub line: usize,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`issue`).
    pub name: String,
    /// Qualified name (`Channel::issue`) when defined in an `impl` block,
    /// otherwise the bare name.
    pub qual: String,
    /// Index into the crate's file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Token index range `[open_brace, close_brace]` of the body within
    /// the file's token stream; `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line range `[first, last]` covered by the body.
    pub body_lines: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<Call>,
}

/// Why a function is in the hot set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HotReason {
    /// The function's own name marks it as a per-cycle root.
    Root,
    /// Reachable from a cycle root; the chain is `root → … → this`.
    ReachedFrom { root: String, via: Vec<String> },
}

/// Per-crate function table + call graph.
pub struct FnTable {
    pub fns: Vec<FnDef>,
}

/// True if `name`/`qual` names a per-cycle root whose *transitive callees*
/// are hot: `tick*`, `step`, `on_completion*`, `Channel::issue` (FR-FCFS
/// command issue runs once per scheduled DRAM command), and the event
/// wheel's entry points (`EventWheel::post` / `cancel` /
/// `next_event_after` — every sleep, reschedule, and skip query goes
/// through them, so their helpers are as hot as any tick body).
pub fn is_cycle_root(name: &str, qual: &str) -> bool {
    name.starts_with("tick")
        || name == "step"
        || name.starts_with("on_completion")
        || name == "issue"
        || qual == "Channel::issue"
        || qual == "EventWheel::post"
        || qual == "EventWheel::cancel"
        || qual == "EventWheel::next_event_after"
}

/// True if `name` marks a *driver* root: hot in its own body (it contains
/// the measured region — `Pipeline::evaluate*` drives the whole run), but
/// without transitive propagation, because everything it calls directly is
/// setup-rate (profiling cache, config construction); the per-cycle work
/// it triggers funnels through the cycle roots in `sim`/`dram`/`cpu`.
pub fn is_driver_root(name: &str) -> bool {
    name == "evaluate" || name.starts_with("evaluate_")
}

impl FnTable {
    /// Extract every function (with impl-block qualification) and its call
    /// sites from one file's token stream.
    pub fn extract(toks: &[Token], file: usize, out: &mut Vec<FnDef>) {
        // Impl-block context: (type name, brace depth of the impl body).
        let mut impl_stack: Vec<(String, i64)> = Vec::new();
        let mut pending_impl: Option<String> = None;
        let mut depth: i64 = 0;

        let mut k = 0;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        if let Some(name) = pending_impl.take() {
                            impl_stack.push((name, depth));
                        }
                    }
                    "}" => {
                        if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                            impl_stack.pop();
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
                k += 1;
                continue;
            }
            if t.is_ident("impl") {
                pending_impl = impl_type_name(toks, k + 1);
                k += 1;
                continue;
            }
            if t.is_ident("fn") {
                let Some(name_tok) = toks.get(k + 1) else {
                    break;
                };
                if name_tok.kind != TokenKind::Ident {
                    k += 1;
                    continue;
                }
                let name = name_tok.text.clone();
                let qual = match impl_stack.last() {
                    Some((ty, _)) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                let (body, after) = fn_body_range(toks, k + 2);
                let body_lines = body.map(|(a, b)| (toks[a].line, toks[b].line));
                let calls = body
                    .map(|(a, b)| call_sites(toks, a, b))
                    .unwrap_or_default();
                out.push(FnDef {
                    name,
                    qual,
                    file,
                    sig_line: t.line,
                    body,
                    body_lines,
                    calls,
                });
                // Resume right after the signature so nested items are
                // still discovered; brace accounting continues naturally.
                k = after;
                continue;
            }
            k += 1;
        }
    }

    /// Build the table for a whole crate from its per-file token streams.
    pub fn build(file_tokens: &[Vec<Token>]) -> FnTable {
        let mut fns = Vec::new();
        for (file, toks) in file_tokens.iter().enumerate() {
            Self::extract(toks, file, &mut fns);
        }
        FnTable { fns }
    }

    /// Resolve a call site to function indices defined in this crate:
    /// prefer an exact qualified match, fall back to every function with
    /// the same bare name (a deliberate over-approximation — for a lint,
    /// flagging through an ambiguous edge beats missing a real one).
    pub fn resolve(&self, call: &Call) -> Vec<usize> {
        if let Some(q) = &call.qual {
            let exact: Vec<usize> = self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| &f.qual == q)
                .map(|(i, _)| i)
                .collect();
            if !exact.is_empty() {
                return exact;
            }
        }
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == call.name)
            .map(|(i, _)| i)
            .collect()
    }

    /// The hot set: cycle roots, driver roots, and everything reachable
    /// from a cycle root through crate-local calls (excluding
    /// [`COLD_CALLEES`]). Returns one `HotReason` per function index.
    pub fn hot_set(&self) -> Vec<Option<HotReason>> {
        let mut hot: Vec<Option<HotReason>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            if is_cycle_root(&f.name, &f.qual) {
                hot[i] = Some(HotReason::Root);
                queue.push(i);
            } else if is_driver_root(&f.name) {
                hot[i] = Some(HotReason::Root);
                // driver roots are NOT enqueued: no propagation.
            }
        }
        while let Some(i) = queue.pop() {
            let (root, via) = match &hot[i] {
                Some(HotReason::Root) => (self.fns[i].qual.clone(), Vec::new()),
                Some(HotReason::ReachedFrom { root, via }) => (root.clone(), via.clone()),
                None => unreachable!("queued fn is hot"),
            };
            let calls = self.fns[i].calls.clone();
            for call in &calls {
                if COLD_CALLEES.contains(&call.name.as_str()) {
                    continue;
                }
                for j in self.resolve(call) {
                    if j == i || hot[j].is_some() {
                        continue;
                    }
                    let mut via_j = via.clone();
                    via_j.push(self.fns[i].qual.clone());
                    hot[j] = Some(HotReason::ReachedFrom {
                        root: root.clone(),
                        via: via_j,
                    });
                    queue.push(j);
                }
            }
        }
        hot
    }
}

/// Parse the implementing type name after an `impl` keyword at `start`:
/// the last identifier at angle-depth 0 before the opening `{` (after
/// `for`, if present, only the right-hand path counts).
fn impl_type_name(toks: &[Token], start: usize) -> Option<String> {
    let mut angle: i64 = 0;
    let mut last: Option<String> = None;
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                // `->` inside a generic bound (`Fn(…) -> T`) is not a
                // closing angle.
                ">" if !(k > 0 && toks[k - 1].is_punct('-')) => angle -= 1,
                ">" => {}
                "{" | ";" => return last,
                _ => {}
            },
            TokenKind::Ident if angle == 0 => {
                if t.text == "for" {
                    last = None;
                } else if t.text == "where" {
                    return last;
                } else {
                    last = Some(t.text.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    last
}

/// Starting just after a function's name token, skip the signature
/// (generics, parameters, return type, where clause) and return the body's
/// token range plus the index to resume scanning from (just past the name,
/// so nested items inside the body are still visited by the caller).
fn fn_body_range(toks: &[Token], mut k: usize) -> (Option<(usize, usize)>, usize) {
    let resume = k;
    // Generics.
    if toks.get(k).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 0i64;
        while k < toks.len() {
            if toks[k].is_punct('<') {
                angle += 1;
            } else if toks[k].is_punct('>') && !(k > 0 && toks[k - 1].is_punct('-')) {
                angle -= 1;
                if angle == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    // Parameters.
    if toks.get(k).is_some_and(|t| t.is_punct('(')) {
        let mut paren = 0i64;
        while k < toks.len() {
            if toks[k].is_punct('(') {
                paren += 1;
            } else if toks[k].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    } else {
        return (None, resume);
    }
    // Return type / where clause: scan to `{` or `;` outside brackets.
    let mut bracket = 0i64;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if bracket == 0 => return (None, resume),
                "{" if bracket == 0 => break,
                _ => {}
            }
        }
        k += 1;
    }
    if k >= toks.len() {
        return (None, resume);
    }
    // Body: match braces.
    let open = k;
    let mut brace = 0i64;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            brace += 1;
        } else if toks[k].is_punct('}') {
            brace -= 1;
            if brace == 0 {
                return (Some((open, k)), resume);
            }
        }
        k += 1;
    }
    (Some((open, toks.len() - 1)), resume)
}

/// Skip a turbofish (`::<…>`) starting at the first `:`; returns the index
/// just past the closing `>` or `at` unchanged if the shape doesn't match.
fn skip_turbofish(toks: &[Token], at: usize) -> usize {
    if !(toks.get(at).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 2).is_some_and(|t| t.is_punct('<')))
    {
        return at;
    }
    let mut angle = 0i64;
    let mut k = at + 2;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            angle += 1;
        } else if toks[k].is_punct('>') && !(k > 0 && toks[k - 1].is_punct('-')) {
            angle -= 1;
            if angle == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    at
}

/// Extract call sites inside a body token range `[a, b]`.
fn call_sites(toks: &[Token], a: usize, b: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    let mut k = a;
    while k <= b {
        let t = &toks[k];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            k += 1;
            continue;
        }
        // A `fn` keyword right before means this is a definition.
        if k > 0 && toks[k - 1].is_ident("fn") {
            k += 1;
            continue;
        }
        // Walk a path: name (:: name)*, with optional trailing turbofish.
        let mut name = t.text.clone();
        let mut prev_seg: Option<String> = None;
        let mut j = k;
        loop {
            if toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(j + 2).is_some_and(|x| x.is_punct(':'))
            {
                if let Some(seg) = toks.get(j + 3) {
                    if seg.kind == TokenKind::Ident {
                        prev_seg = Some(name.clone());
                        name = seg.text.clone();
                        j += 3;
                        continue;
                    }
                }
                // `::<…>(` turbofish.
                let past = skip_turbofish(toks, j + 1);
                if past != j + 1 {
                    j = past - 1;
                }
            }
            break;
        }
        // Macro (`name!`) is not a call.
        if toks.get(j + 1).is_some_and(|x| x.is_punct('!')) {
            k = j + 2;
            continue;
        }
        if toks.get(j + 1).is_some_and(|x| x.is_punct('(')) {
            let qual = prev_seg.map(|p| format!("{p}::{name}"));
            calls.push(Call {
                name,
                qual,
                line: t.line,
            });
        }
        k = j + 1;
    }
    calls
}
