//! SARIF 2.1.0 emission for CI annotation surfaces.
//!
//! Hand-rolled JSON (the workspace builds offline; `moca-lint` stays
//! dependency-free): the minimal schema GitHub code scanning and most
//! SARIF viewers consume — `tool.driver.rules` from the rule catalog plus
//! one `result` per finding with a physical location.

use crate::{Finding, RULES};

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a SARIF 2.1.0 log. Paths are workspace-relative URIs.
pub fn to_sarif(findings: &[Finding], version: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"moca-lint\",\n");
    s.push_str(&format!("          \"version\": \"{}\",\n", esc(version)));
    s.push_str("          \"informationUri\": \"https://example.invalid/moca-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (name, desc)) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(name),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let uri = f.path.to_string_lossy().replace('\\', "/");
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.rule)));
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&f.message)
        ));
        s.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"snippet\": {{\"text\": \"{}\"}}}}}}}}]\n",
            esc(&uri),
            f.line,
            esc(&f.excerpt)
        ));
        s.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}
