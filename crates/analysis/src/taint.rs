//! Determinism taint tracking (the `det-taint` rule).
//!
//! A *taint source* is an expression whose value depends on something
//! outside the simulation's seeded, ordered world: iteration over a
//! hash-ordered std collection, a host-clock read, ambient randomness, or
//! a pointer-derived address (ASLR makes addresses run-dependent). A
//! *sink* is a call that folds a value into sim-visible state: digests,
//! telemetry counters/records, stall ledgers.
//!
//! The pass is function-granular and propagates within a crate: a function
//! containing a source is tainted; a function calling a tainted function
//! is tainted through the return value / arguments (over-approximation —
//! precise dataflow is out of scope for a lint, and a pragma with a
//! justification is the escape hatch). A `det-taint` finding is reported
//! at every sink call site inside a tainted function, naming the source
//! and the call chain it arrived through.

use crate::functions::FnTable;
use crate::lexer::{Token, TokenKind};

/// Identifiers whose mere presence is an ambient-randomness source.
const RNG_SOURCE_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "getrandom",
    "fastrand",
];

/// Method names that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// One taint source occurrence.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Human-readable kind (`hash-ordered iteration`, …).
    pub kind: &'static str,
    /// 1-based line of the source token.
    pub line: usize,
}

/// Why a function is tainted.
#[derive(Debug, Clone)]
pub struct Taint {
    /// The originating source.
    pub source: TaintSource,
    /// Qualified name of the function physically containing the source.
    pub origin: String,
    /// Call chain from this function to the origin (empty when the source
    /// is in this function's own body).
    pub via: Vec<String>,
}

/// Scan one function body's token range for taint sources.
pub fn body_sources(toks: &[Token], a: usize, b: usize) -> Vec<TaintSource> {
    let mut out = Vec::new();
    let has_hash_collection = toks[a..=b]
        .iter()
        .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
    let mut k = a;
    while k <= b {
        let t = &toks[k];
        if t.kind == TokenKind::Ident {
            // Wall-clock reads: `Instant::now` / `SystemTime::now`.
            if (t.text == "Instant" || t.text == "SystemTime")
                && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
                && toks.get(k + 3).is_some_and(|x| x.is_ident("now"))
            {
                out.push(TaintSource {
                    kind: "wall-clock read",
                    line: t.line,
                });
                k += 4;
                continue;
            }
            if RNG_SOURCE_IDENTS.contains(&t.text.as_str()) {
                out.push(TaintSource {
                    kind: "ambient randomness",
                    line: t.line,
                });
                k += 1;
                continue;
            }
            // Pointer-derived address: `as *const T` / `as *mut T`.
            if t.text == "as"
                && toks.get(k + 1).is_some_and(|x| x.is_punct('*'))
                && toks
                    .get(k + 2)
                    .is_some_and(|x| x.is_ident("const") || x.is_ident("mut"))
            {
                out.push(TaintSource {
                    kind: "pointer-derived address",
                    line: t.line,
                });
                k += 3;
                continue;
            }
        }
        // Method-position sources: `.as_ptr()` and, when the body also
        // names a hash collection, storage-order iteration.
        if t.is_punct('.') {
            if let Some(m) = toks.get(k + 1) {
                if m.kind == TokenKind::Ident && toks.get(k + 2).is_some_and(|x| x.is_punct('(')) {
                    if m.text == "as_ptr" {
                        out.push(TaintSource {
                            kind: "pointer-derived address",
                            line: m.line,
                        });
                    } else if has_hash_collection && ITER_METHODS.contains(&m.text.as_str()) {
                        out.push(TaintSource {
                            kind: "hash-ordered iteration",
                            line: m.line,
                        });
                    }
                }
            }
        }
        k += 1;
    }
    out
}

/// True if a callee name writes into sim-visible state, a digest, or a
/// telemetry counter — the sinks a tainted value must not reach.
pub fn is_sink_name(name: &str) -> bool {
    name.contains("digest")
        || name.starts_with("fnv")
        || name == "record"
        || name.starts_with("record_")
        || name == "observe"
        || name.starts_with("observe_")
        || name == "emit"
        || name.starts_with("emit_")
        || name == "counter"
        || name == "inc"
        || name.starts_with("inc_")
        || name == "track"
        || name.starts_with("add_track")
        || name == "charge"
        || name.starts_with("charge_")
}

/// Compute per-function taint for a crate: `sources[i]` are the sources
/// physically inside function `i`; the result marks every function that
/// contains or transitively calls a source, with the chain it arrived by.
pub fn propagate(table: &FnTable, sources: &[Vec<TaintSource>]) -> Vec<Option<Taint>> {
    let n = table.fns.len();
    let mut taint: Vec<Option<Taint>> = vec![None; n];
    // Reverse edges: for each function, who calls it.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in table.fns.iter().enumerate() {
        for call in &f.calls {
            for j in table.resolve(call) {
                if j != i {
                    callers[j].push(i);
                }
            }
        }
    }
    let mut queue: Vec<usize> = Vec::new();
    for (i, srcs) in sources.iter().enumerate() {
        if let Some(s) = srcs.first() {
            taint[i] = Some(Taint {
                source: s.clone(),
                origin: table.fns[i].qual.clone(),
                via: Vec::new(),
            });
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        let t = taint[i].clone().expect("queued fn is tainted");
        for &c in &callers[i] {
            if taint[c].is_some() {
                continue;
            }
            let mut via = vec![table.fns[i].qual.clone()];
            via.extend(t.via.clone());
            taint[c] = Some(Taint {
                source: t.source.clone(),
                origin: t.origin.clone(),
                via,
            });
            queue.push(c);
        }
    }
    taint
}
