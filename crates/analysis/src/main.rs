//! `moca-lint` CLI.
//!
//! ```text
//! moca-lint [--deny] [--root PATH] [--baseline PATH]
//!           [--format text|sarif] [--prune-baseline]    lint the workspace
//! moca-lint check-model                                 validate timing presets & layout
//! ```
//!
//! Exit status: 0 when clean (or findings exist but `--deny` was not
//! passed), 1 when `--deny` saw unsuppressed findings, the baseline had
//! stale entries (without `--prune-baseline`), or a model check failed,
//! 2 on usage/IO errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: moca-lint [--deny] [--root PATH] [--baseline PATH] [--format text|sarif] [--prune-baseline]\n       moca-lint check-model"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // The binary lives in crates/analysis; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn run_check_model() -> ExitCode {
    let checks = moca_lint::check_model();
    let mut failed = 0usize;
    for c in &checks {
        match &c.result {
            Ok(()) => println!("ok   {}", c.name),
            Err(e) => {
                failed += 1;
                println!("FAIL {}: {e}", c.name);
            }
        }
    }
    println!(
        "moca-lint check-model: {} checks, {} failed",
        checks.len(),
        failed
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-model") {
        if args.len() != 1 {
            return usage();
        }
        return run_check_model();
    }

    let mut deny = false;
    let mut sarif = false;
    let mut prune = false;
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--prune-baseline" => prune = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => sarif = false,
                Some("sarif") => sarif = true,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let baseline = moca_lint::load_baseline(&baseline_path);

    let findings = match moca_lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("moca-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // Stale baseline entries (suppressions whose finding no longer exists)
    // are an error: the baseline must only shrink. `--prune-baseline`
    // rewrites the file instead of failing.
    let stale: BTreeSet<String> = moca_lint::stale_baseline_keys(&findings, &baseline)
        .into_iter()
        .collect();
    let mut stale_failed = false;
    if !stale.is_empty() {
        if prune {
            match moca_lint::prune_baseline_file(&baseline_path, &stale) {
                Ok(n) => eprintln!(
                    "moca-lint: pruned {n} stale entr{} from {}",
                    if n == 1 { "y" } else { "ies" },
                    baseline_path.display()
                ),
                Err(e) => {
                    eprintln!("moca-lint: cannot rewrite {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            for k in &stale {
                eprintln!("moca-lint: stale baseline entry (finding fixed — remove it): {k}");
            }
            stale_failed = true;
        }
    }

    let (active, baselined) = moca_lint::apply_baseline(findings, &baseline);

    if sarif {
        print!(
            "{}",
            moca_lint::to_sarif(&active, env!("CARGO_PKG_VERSION"))
        );
    } else {
        for f in &active {
            println!("{f}");
        }
        println!(
            "moca-lint: {} finding(s), {} baselined",
            active.len(),
            baselined.len()
        );
    }
    if stale_failed || (deny && !active.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
