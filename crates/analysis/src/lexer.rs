//! Dependency-free Rust lexer producing a token stream with line/column
//! spans — the foundation the v2 analyzer (call-graph hot-path propagation,
//! determinism taint tracking) is built on.
//!
//! The lexer is deliberately smaller than `rustc`'s: it distinguishes
//! exactly the categories the lint rules care about — identifiers,
//! lifetimes, literals (string / raw string / byte string / char / byte /
//! number), and single-character punctuation — and it gets the hard
//! tokenization cases right so no rule can false-positive on text inside a
//! literal or comment:
//!
//! - line comments and **nested** block comments (`/* /* */ */`);
//! - string literals with escapes, spanning lines;
//! - raw strings `r"…"` / `r#"…"#` / `r##"…"##` (contents may contain
//!   `//`, braces, and quotes without ending the literal);
//! - byte strings `b"…"`, raw byte strings `br#"…"#`;
//! - char literals vs. lifetimes (`'{'` is a char, `'static` a lifetime);
//! - raw identifiers (`r#match`).
//!
//! Multi-character operators are emitted as adjacent single-character
//! `Punct` tokens (`::` is `:` `:`); pattern matchers in the rule passes
//! match token *sequences*, so this costs nothing and keeps the lexer
//! trivial to verify.

/// Token categories. Comments and whitespace are not emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#match` → `match`).
    Ident,
    /// Lifetime (`'static` → text `static`, without the quote).
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    /// `text` is empty — contents never participate in lint matching.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`). `text` is empty.
    Char,
    /// Numeric literal (`1_000u64`, `0xff`). `text` is the literal.
    Num,
    /// Single punctuation character (`{`, `:`, `!`, …).
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier/lifetime/number text; the character for `Punct`; empty
    /// for string/char literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 0-based column (in chars) of the token's first character.
    pub col: usize,
}

impl Token {
    /// Shorthand: is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Shorthand: is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [ch as u8]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Never fails: unterminated literals and
/// comments extend to end-of-input (the analyzer lints work-in-progress
/// code, so resilience beats strictness).
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 0usize;

    // Advance one char, maintaining line/col.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 0;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                bump!();
                bump!();
                let mut depth = 1u32;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
                continue;
            }
        }

        // Identifier-led forms: plain idents, raw idents, and the string /
        // char prefixes (`r"`, `r#"`, `b"`, `br#"`, `b'`).
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                bump!();
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();

            // Raw identifier r#name (but NOT a raw string r#"…").
            if word == "r" && next == Some('#') {
                let after = chars.get(i + 1).copied();
                if after.is_some_and(is_ident_start) {
                    bump!(); // '#'
                    let ns = i;
                    while i < chars.len() && is_ident_char(chars[i]) {
                        bump!();
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: chars[ns..i].iter().collect(),
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
            }

            // String/char literal prefixes.
            let raw_prefix = word == "r" || word == "br" || word == "rb";
            let byte_str = word == "b" && next == Some('"');
            let byte_char = word == "b" && next == Some('\'');
            if raw_prefix && (next == Some('"') || next == Some('#')) {
                // Raw (byte) string: count hashes, then scan to `"` + hashes.
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!();
                }
                if chars.get(i) == Some(&'"') {
                    bump!(); // opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
                // `r#` not followed by a quote: fall through as ident
                // (the consumed hashes become punct on the next loop).
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: word,
                    line: tl,
                    col: tc,
                });
                for _ in 0..hashes {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "#".to_string(),
                        line: tl,
                        col: tc,
                    });
                }
                continue;
            }
            if byte_str {
                bump!(); // opening quote
                scan_string_body(&chars, &mut i, &mut line, &mut col);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
                continue;
            }
            if byte_char {
                bump!(); // opening quote
                scan_char_body(&chars, &mut i, &mut line, &mut col);
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line: tl,
                    col: tc,
                });
                continue;
            }

            tokens.push(Token {
                kind: TokenKind::Ident,
                text: word,
                line: tl,
                col: tc,
            });
            continue;
        }

        // Numbers (suffixes and `_` separators fold into the token; a
        // trailing fractional part after `.` is left to punct+num, which is
        // fine for lint purposes).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                bump!();
            }
            tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[start..i].iter().collect(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            bump!();
            scan_string_body(&chars, &mut i, &mut line, &mut col);
            tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // `'`: char literal or lifetime. A quote followed by an ident char
        // is a char literal only if a closing quote follows the (possibly
        // escaped) content — `'{'`, `'a'`, `'\n'` are chars; `'static` is a
        // lifetime. A quote followed by non-ident punctuation (`'{'`) is
        // always a char literal.
        if c == '\'' {
            let n1 = chars.get(i + 1).copied();
            let is_lifetime = match n1 {
                Some(n) if is_ident_start(n) => {
                    // Lifetime unless the ident is one char followed by `'`.
                    chars.get(i + 2) != Some(&'\'')
                }
                _ => false,
            };
            if is_lifetime {
                bump!(); // quote
                let ns = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    bump!();
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[ns..i].iter().collect(),
                    line: tl,
                    col: tc,
                });
                continue;
            }
            bump!(); // opening quote
            scan_char_body(&chars, &mut i, &mut line, &mut col);
            tokens.push(Token {
                kind: TokenKind::Char,
                text: String::new(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // Everything else: one punct char per token.
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: tl,
            col: tc,
        });
        bump!();
    }
    tokens
}

/// Consume a (byte) string body after the opening quote, through the
/// closing quote, honoring `\"` escapes.
fn scan_string_body(chars: &[char], i: &mut usize, line: &mut usize, col: &mut usize) {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 0;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                bump(i, line, col);
                if *i < chars.len() {
                    bump(i, line, col);
                }
            }
            '"' => {
                bump(i, line, col);
                return;
            }
            _ => bump(i, line, col),
        }
    }
}

/// Consume a char/byte-literal body after the opening quote, through the
/// closing quote, honoring escapes (`'\''`, `'\u{7f}'`).
fn scan_char_body(chars: &[char], i: &mut usize, line: &mut usize, col: &mut usize) {
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 0;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    if *i < chars.len() && chars[*i] == '\\' {
        bump(i, line, col);
        if *i < chars.len() {
            bump(i, line, col);
        }
    } else if *i < chars.len() && chars[*i] != '\'' {
        bump(i, line, col);
    }
    while *i < chars.len() && chars[*i] != '\'' {
        bump(i, line, col);
    }
    if *i < chars.len() {
        bump(i, line, col); // closing quote
    }
}

/// Render the token stream back into per-line code text with comments and
/// literal *contents* removed: each token is placed at its original column
/// (string literals become `""`, char literals vanish, lifetimes keep
/// their name), so line numbers AND columns of surviving code are exact.
/// This is the v2 replacement for the v1 line-oriented `strip_code` scan —
/// same signature, but derived from the span-accurate token stream.
pub fn strip_code(src: &str) -> Vec<String> {
    let n_lines = src.lines().count().max(if src.is_empty() { 0 } else { 1 });
    let mut lines: Vec<Vec<char>> = vec![Vec::new(); n_lines];
    let mut place = |line: usize, col: usize, text: &str| {
        let Some(buf) = lines.get_mut(line.saturating_sub(1)) else {
            return;
        };
        let end = col + text.chars().count();
        if buf.len() < end {
            buf.resize(end, ' ');
        }
        for (k, ch) in text.chars().enumerate() {
            buf[col + k] = ch;
        }
    };
    for t in lex(src) {
        match t.kind {
            TokenKind::Str => place(t.line, t.col, "\"\""),
            TokenKind::Char => {}
            TokenKind::Lifetime => place(t.line, t.col + 1, &t.text),
            _ => place(t.line, t.col, &t.text),
        }
    }
    lines
        .into_iter()
        .map(|b| {
            let s: String = b.into_iter().collect();
            s.trim_end().to_string()
        })
        .collect()
}
