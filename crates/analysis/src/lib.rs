//! `moca-lint`: repo-native static analysis for the MOCA simulator.
//!
//! The simulator's headline guarantee — a run is a bit-identical pure
//! function of its configuration — rests on source-level conventions that
//! `rustc` cannot check: no hash-ordered collections in simulated state, no
//! wall-clock reads or threads on the simulated path, all randomness through
//! the seeded [`moca_common::rng`], and no silent integer narrowing of
//! cycle- or address-typed values. This crate enforces those conventions
//! with a dependency-free Rust **lexer** ([`lexer`]: token stream with
//! line/column spans — raw strings, nested block comments, char literals
//! and lifetimes handled exactly), a per-crate **call graph**
//! ([`functions`]: function spans, call sites, hot-root reachability), and
//! a **taint pass** ([`taint`]: nondeterminism sources flowing into
//! digests/telemetry), plus a `check-model` pass that validates the DRAM
//! timing presets and the virtual address-space layout against their
//! inter-parameter constraints.
//!
//! ## Rules
//!
//! | rule             | scope                          | forbids |
//! |------------------|--------------------------------|---------|
//! | `det-map`        | simulated-path crates          | `std::collections::HashMap` / `HashSet` (use [`moca_common::det`]) |
//! | `wall-clock`     | all except `telemetry`/`bench` | `std::time::Instant` / `SystemTime`, thread spawning |
//! | `unseeded-rng`   | everywhere                     | ambient randomness (`thread_rng`, `from_entropy`, …) |
//! | `narrowing-cast` | simulated-path crates          | bare `as u32`/`as usize`/… on cycle/address-flavored expressions (use [`moca_common::units::narrow_u32`]) |
//! | `hot-alloc`      | simulated-path crates          | heap allocation (`Vec::new()`, `vec![…]`, `format!`, `.to_string()`, `.to_vec()`, `Box::new()`, `.collect::<Vec<…>>`) in hot functions **and every function reachable from a cycle root** through the per-crate call graph |
//! | `panic-in-hot`   | simulated-path crates          | `panic!`/`todo!`/`unimplemented!`/`.unwrap()`/`.expect(…)` in hot functions and their transitive callees — a data-dependent abort on the per-cycle path |
//! | `det-taint`      | simulated-path crates          | a nondeterministic value (hash-ordered iteration, wall-clock read, ambient randomness, pointer-derived address) flowing — through returns and call arguments within a crate — into a digest/telemetry/ledger sink |
//! | `attr-exclusive` | simulated-path crates          | two distinct CPI-stack bucket fields (`.committing += …`, `.load_miss += …`, …) incremented in the same immediate brace scope — buckets are exclusive per cycle, so charges must live in disjoint arms |
//!
//! Hot roots come in two tiers: **cycle roots** (`tick*`, `step`,
//! `on_completion*`, `Channel::issue`) propagate hotness to every
//! crate-local function they transitively call; **driver roots**
//! (`Pipeline::evaluate*`) are hot in their own body only — they contain
//! the measured region, but what they call directly is setup-rate.
//!
//! A finding is suppressed by an inline pragma on the same line or the line
//! above — `// moca-lint: allow(<rule>): <justification>` (the justification
//! is mandatory) — or by an entry in the committed baseline file
//! (`lint-baseline.txt`), which exists for incremental burn-down and is
//! empty in a healthy tree. A baseline entry matching no current finding is
//! *stale* and fails the lint (prune with `--prune-baseline`).

pub mod functions;
pub mod lexer;
pub mod sarif;
pub mod taint;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use functions::{FnTable, HotReason};
use lexer::{Token, TokenKind};

pub use lexer::strip_code;
pub use sarif::to_sarif;

/// Crates whose source participates in simulated state: hash-ordered
/// collections and silent narrowing are forbidden here.
pub const SIM_PATH_CRATES: &[&str] = &["sim", "dram", "vm", "core", "cpu", "cache"];

/// Crates that legitimately touch the host clock and threads (observability
/// and benchmarking are host-side by design).
pub const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["telemetry", "bench"];

/// The rule catalog: `(name, short description)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "det-map",
        "std HashMap/HashSet forbidden in simulated-path crates; use moca_common::det",
    ),
    (
        "wall-clock",
        "std::time::Instant/SystemTime and thread spawning forbidden outside telemetry/bench",
    ),
    (
        "unseeded-rng",
        "randomness must flow through moca_common::rng (seeded, deterministic)",
    ),
    (
        "narrowing-cast",
        "bare `as` narrowing on cycle/address-typed expressions; use moca_common::units::narrow_*",
    ),
    (
        "hot-alloc",
        "heap allocation inside per-cycle hot functions or their transitive callees; hoist a reusable buffer",
    ),
    (
        "panic-in-hot",
        "panic!/unwrap/expect on the per-cycle hot path; handle the case or justify the invariant",
    ),
    (
        "det-taint",
        "nondeterministic value flows into a digest/telemetry sink; order or seed it first",
    ),
    (
        "attr-exclusive",
        "two CPI-stack bucket increments in one brace scope; every cycle belongs to exactly one bucket",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}\n    {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message,
            self.excerpt
        )
    }
}

/// One source file handed to [`scan_crate`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path to report in findings (workspace-relative).
    pub rel: PathBuf,
    /// Raw source text.
    pub raw: String,
}

/// Baseline key of a finding: `rule|path|trimmed-line`. Content-addressed
/// (no line number) so unrelated edits above a baselined finding do not
/// invalidate the entry.
pub fn baseline_key(f: &Finding) -> String {
    format!("{}|{}|{}", f.rule, f.path.display(), f.excerpt)
}

/// Parse a baseline file: one key per line, `#` comments and blank lines
/// ignored. A missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> BTreeSet<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Baseline entries that match no current finding. A stale entry means the
/// offending line was fixed (or edited): the suppression must be removed —
/// or rewritten by `--prune-baseline` — so the baseline only ever shrinks
/// toward empty.
pub fn stale_baseline_keys(findings: &[Finding], baseline: &BTreeSet<String>) -> Vec<String> {
    let present: BTreeSet<String> = findings.iter().map(baseline_key).collect();
    baseline
        .iter()
        .filter(|k| !present.contains(*k))
        .cloned()
        .collect()
}

/// Rewrite a baseline file in place, dropping the given stale keys while
/// preserving comment and blank lines.
pub fn prune_baseline_file(path: &Path, stale: &BTreeSet<String>) -> std::io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    let mut kept = String::new();
    let mut dropped = 0usize;
    for line in text.lines() {
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('#') && stale.contains(t) {
            dropped += 1;
            continue;
        }
        kept.push_str(line);
        kept.push('\n');
    }
    std::fs::write(path, kept)?;
    Ok(dropped)
}

/// True if `token` occurs in `line` delimited by non-identifier characters.
pub fn has_token(line: &str, token: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let after = at + token.len();
        let after_ok = after >= line.len() || !line[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len().max(1);
    }
    false
}

/// Whether raw line `raw` carries a valid allow-pragma for `rule`:
/// `moca-lint: allow(<rule>): <non-empty justification>`.
pub fn has_allow_pragma(raw: &str, rule: &str) -> bool {
    let needle = format!("moca-lint: allow({rule})");
    let Some(pos) = raw.find(&needle) else {
        return false;
    };
    let rest = raw[pos + needle.len()..].trim_start();
    let Some(justification) = rest.strip_prefix(':') else {
        return false;
    };
    !justification.trim().is_empty()
}

/// Context markers that identify a `u64`-flavored (cycle / address / size)
/// expression for the `narrowing-cast` rule.
const NARROWING_MARKERS: &[&str] = &[
    "Cycle",
    "cycle",
    "pfn",
    "vpn",
    "addr",
    "Addr",
    "bytes",
    "capacity",
    "u64",
    ".len()",
    "PAGE_SIZE",
    "CACHE_LINE_SIZE",
    "row_buffer",
    "line.0",
];

/// Narrowing cast targets the rule watches for.
const NARROWING_CASTS: &[&str] = &["as u32", "as u16", "as u8", "as usize"];

/// If `line` declares a function the hot rules treat as hot — a per-cycle
/// simulation entry point (`tick*`, `step`, `on_completion*`), the DRAM
/// command scheduler (`issue`, i.e. `Channel::issue`), or the evaluation
/// driver (`evaluate*`, i.e. `Pipeline::evaluate*`) — return its name.
/// This line-based check is what makes direct hot *bodies* correct even
/// without the call-graph pass.
pub fn hot_fn_name(line: &str) -> Option<&str> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut search = 0;
    while let Some(pos) = line[search..].find("fn ") {
        let at = search + pos;
        search = at + 3;
        if at > 0 && line[..at].chars().next_back().is_some_and(is_ident) {
            continue; // e.g. `often `
        }
        let rest = &line[at + 3..];
        let name_len = rest.chars().take_while(|&c| is_ident(c)).count();
        let name = &rest[..name_len];
        if name.starts_with("tick")
            || name == "step"
            || name.starts_with("on_completion")
            || name == "issue"
            || name == "evaluate"
            || name.starts_with("evaluate_")
        {
            return Some(name);
        }
    }
    None
}

/// CPI-stack bucket fields of `moca_telemetry::attribution::CycleBuckets`.
/// The `attr-exclusive` rule watches `.{field} +=` increments: the buckets
/// partition core cycles, so two different fields charged in the same
/// immediate brace scope would double-count a cycle.
const BUCKET_FIELDS: &[&str] = &[
    "committing",
    "load_miss",
    "mshr_full",
    "rob_full",
    "frontend_empty",
    "other",
];

/// Byte offsets and field names of CPI-stack bucket increments on a
/// stripped line: `.{field}` at an identifier boundary (so
/// `.mshr_full_cycles` does not match `mshr_full`) followed by `+=`.
fn bucket_increments(line: &str) -> Vec<(usize, &'static str)> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    for &field in BUCKET_FIELDS {
        let pat = format!(".{field}");
        let mut start = 0;
        while let Some(pos) = line[start..].find(&pat) {
            let at = start + pos;
            start = at + 1;
            let after = at + pat.len();
            if line[after..].chars().next().is_some_and(is_ident) {
                continue; // longer identifier, e.g. `.other_field`
            }
            if line[after..].trim_start().starts_with("+=") {
                out.push((at, field));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Ambient-randomness identifiers (anything not flowing through
/// `moca_common::rng::DetRng`).
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "getrandom",
    "fastrand",
];

/// Display names of the allocation patterns `hot-alloc` matches over the
/// token stream (the matcher itself is token-sequence based, so multi-line
/// spellings like a `.collect::<\nVec<_>>()` split across lines still hit).
pub const HOT_ALLOC_PATTERNS: &[&str] = &[
    "Vec::new()",
    "vec![…]",
    ".to_string()",
    "format!",
    ".collect::<Vec<…>>()",
    "Box::new()",
    ".to_vec()",
];

/// Display names of the abort patterns `panic-in-hot` matches.
pub const PANIC_PATTERNS: &[&str] = &[
    "panic!",
    "todo!",
    "unimplemented!",
    ".unwrap()",
    ".expect(…)",
];

/// Match an allocation pattern starting at token `k`; returns the display
/// name from [`HOT_ALLOC_PATTERNS`].
fn alloc_pattern_at(toks: &[Token], k: usize) -> Option<&'static str> {
    let t = &toks[k];
    let path2 = |a: &str, b: &str| {
        t.is_ident(a)
            && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(k + 3).is_some_and(|x| x.is_ident(b))
    };
    if path2("Vec", "new") {
        return Some("Vec::new()");
    }
    if path2("Box", "new") {
        return Some("Box::new()");
    }
    if t.is_ident("vec") && toks.get(k + 1).is_some_and(|x| x.is_punct('!')) {
        return Some("vec![…]");
    }
    if t.is_ident("format") && toks.get(k + 1).is_some_and(|x| x.is_punct('!')) {
        return Some("format!");
    }
    if t.is_punct('.') {
        if let Some(m) = toks.get(k + 1) {
            if m.kind == TokenKind::Ident && toks.get(k + 2).is_some_and(|x| x.is_punct('(')) {
                if m.text == "to_string" {
                    return Some(".to_string()");
                }
                if m.text == "to_vec" {
                    return Some(".to_vec()");
                }
            }
            // `.collect::<Vec…>` — the turbofish may span lines; the first
            // identifier inside the angle brackets decides.
            if m.is_ident("collect")
                && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
                && toks.get(k + 3).is_some_and(|x| x.is_punct(':'))
                && toks.get(k + 4).is_some_and(|x| x.is_punct('<'))
            {
                let first_ident = toks[k + 5..]
                    .iter()
                    .find(|x| x.kind == TokenKind::Ident || x.kind == TokenKind::Punct);
                if first_ident.is_some_and(|x| x.is_ident("Vec")) {
                    return Some(".collect::<Vec<…>>()");
                }
            }
        }
    }
    None
}

/// Match a panic pattern starting at token `k`; returns the display name
/// from [`PANIC_PATTERNS`].
fn panic_pattern_at(toks: &[Token], k: usize) -> Option<&'static str> {
    let t = &toks[k];
    if toks.get(k + 1).is_some_and(|x| x.is_punct('!')) {
        if t.is_ident("panic") {
            return Some("panic!");
        }
        if t.is_ident("todo") {
            return Some("todo!");
        }
        if t.is_ident("unimplemented") {
            return Some("unimplemented!");
        }
    }
    if t.is_punct('.') {
        if let Some(m) = toks.get(k + 1) {
            if m.kind == TokenKind::Ident && toks.get(k + 2).is_some_and(|x| x.is_punct('(')) {
                if m.text == "unwrap" {
                    return Some(".unwrap()");
                }
                if m.text == "expect" {
                    return Some(".expect(…)");
                }
            }
        }
    }
    None
}

/// Per-file context shared by the passes.
struct FileCtx {
    rel: PathBuf,
    raw_lines: Vec<String>,
    code: Vec<String>,
    toks: Vec<Token>,
}

impl FileCtx {
    fn new(rel: &Path, raw: &str) -> FileCtx {
        FileCtx {
            rel: rel.to_path_buf(),
            raw_lines: raw.lines().map(str::to_string).collect(),
            code: lexer::strip_code(raw),
            toks: lexer::lex(raw),
        }
    }

    /// Push a finding at 0-based line `ln` unless a pragma suppresses it.
    fn push(&self, findings: &mut Vec<Finding>, rule: &'static str, ln: usize, message: String) {
        if ln >= self.raw_lines.len() {
            return;
        }
        let suppressed = has_allow_pragma(&self.raw_lines[ln], rule)
            || (ln > 0 && has_allow_pragma(&self.raw_lines[ln - 1], rule));
        if !suppressed {
            findings.push(Finding {
                rule,
                path: self.rel.clone(),
                line: ln + 1,
                excerpt: self.raw_lines[ln].trim().to_string(),
                message,
            });
        }
    }
}

/// Lint one crate: per-file rules plus the crate-wide flow passes
/// (hot-path propagation, determinism taint). `crate_name` is the
/// directory name under `crates/` (e.g. `sim`).
pub fn scan_crate(crate_name: &str, files: &[SourceFile]) -> Vec<Finding> {
    let sim_path = SIM_PATH_CRATES.contains(&crate_name);
    let clock_checked = !WALL_CLOCK_EXEMPT_CRATES.contains(&crate_name);
    let ctxs: Vec<FileCtx> = files.iter().map(|f| FileCtx::new(&f.rel, &f.raw)).collect();
    let mut findings = Vec::new();

    for ctx in &ctxs {
        scan_tokens_per_file(ctx, sim_path, clock_checked, &mut findings);
        scan_lines_per_file(ctx, sim_path, &mut findings);
    }

    if sim_path {
        let streams: Vec<Vec<Token>> = ctxs.iter().map(|c| c.toks.clone()).collect();
        let table = FnTable::build(&streams);
        hot_pass(&table, &ctxs, &mut findings);
        taint_pass(&table, &ctxs, &mut findings);
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Token-based per-file rules: `det-map`, `wall-clock`, `unseeded-rng`.
/// One finding per (rule, line, pattern), matching v1's per-line report
/// granularity with span-accurate matching.
fn scan_tokens_per_file(
    ctx: &FileCtx,
    sim_path: bool,
    clock_checked: bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &ctx.toks;
    let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let ln = t.line - 1;
        if sim_path && (t.text == "HashMap" || t.text == "HashSet") {
            let tok: &'static str = if t.text == "HashMap" {
                "HashMap"
            } else {
                "HashSet"
            };
            if seen.insert((ln, tok)) {
                ctx.push(
                    findings,
                    "det-map",
                    ln,
                    format!(
                        "{tok} iteration order is nondeterministic; use \
                         moca_common::det::{} instead",
                        if tok == "HashMap" { "DetMap" } else { "DetSet" }
                    ),
                );
            }
        }
        if clock_checked {
            if t.text == "Instant" || t.text == "SystemTime" {
                let tok: &'static str = if t.text == "Instant" {
                    "Instant"
                } else {
                    "SystemTime"
                };
                if seen.insert((ln, tok)) {
                    ctx.push(
                        findings,
                        "wall-clock",
                        ln,
                        format!(
                            "std::time::{tok} reads the host clock; simulated \
                             time is moca_common::Cycle"
                        ),
                    );
                }
            }
            if t.text == "thread"
                && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
            {
                if let Some(m) = toks.get(k + 3) {
                    let tok: Option<&'static str> = if m.is_ident("spawn") {
                        Some("thread::spawn")
                    } else if m.is_ident("scope") {
                        Some("thread::scope")
                    } else if m.is_ident("sleep") {
                        Some("thread::sleep")
                    } else {
                        None
                    };
                    if let Some(tok) = tok {
                        if seen.insert((ln, tok)) {
                            ctx.push(
                                findings,
                                "wall-clock",
                                ln,
                                format!("{tok} spawns host threads outside telemetry/bench"),
                            );
                        }
                    }
                }
            }
        }
        if let Some(&tok) = RNG_IDENTS.iter().find(|&&r| t.text == r) {
            if seen.insert((ln, tok)) {
                ctx.push(
                    findings,
                    "unseeded-rng",
                    ln,
                    format!("{tok} draws ambient entropy; use moca_common::rng::DetRng"),
                );
            }
        }
        if t.text == "rand"
            && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(k + 3).is_some_and(|x| x.is_ident("random"))
            && seen.insert((ln, "rand::random"))
        {
            ctx.push(
                findings,
                "unseeded-rng",
                ln,
                "rand::random draws ambient entropy; use moca_common::rng::DetRng".to_string(),
            );
        }
    }
}

/// Stripped-line rules kept from v1 (their 3-line-window / brace-scope
/// logic is inherently line-oriented): `narrowing-cast`, `attr-exclusive`.
fn scan_lines_per_file(ctx: &FileCtx, sim_path: bool, findings: &mut Vec<Finding>) {
    if !sim_path {
        return;
    }
    let code = &ctx.code;
    // attr-exclusive state: distinct bucket fields incremented *directly* in
    // each open brace scope (index 0 = file top level); nested scopes are
    // separate arms and do not conflict with their parents.
    let mut attr_scopes: Vec<Vec<&'static str>> = vec![Vec::new()];

    for (ln, line) in code.iter().enumerate() {
        let incs = bucket_increments(line);
        let mut k = 0;
        for (i, c) in line.char_indices() {
            while k < incs.len() && incs[k].0 <= i {
                let field = incs[k].1;
                k += 1;
                let top = attr_scopes.last_mut().expect("scope stack non-empty");
                if !top.contains(&field) {
                    if let Some(&prev) = top.first() {
                        ctx.push(
                            findings,
                            "attr-exclusive",
                            ln,
                            format!(
                                "`.{field} +=` in the same brace scope as `.{prev} +=`; \
                                 CPI-stack buckets are exclusive — every cycle belongs to \
                                 exactly one bucket, so charges must live in disjoint arms"
                            ),
                        );
                    }
                    top.push(field);
                }
            }
            match c {
                '{' => attr_scopes.push(Vec::new()),
                '}' if attr_scopes.len() > 1 => {
                    attr_scopes.pop();
                }
                _ => {}
            }
        }

        let casts: Vec<&str> = NARROWING_CASTS
            .iter()
            .copied()
            .filter(|c| has_token(line, c))
            .collect();
        if !casts.is_empty() {
            // `as usize` is a widening on 64-bit hosts unless the source
            // is 64-bit flavored; require a marker in a 3-line window.
            let lo = ln.saturating_sub(2);
            let window = &code[lo..=ln];
            let marked = window
                .iter()
                .any(|l| NARROWING_MARKERS.iter().any(|m| l.contains(m)));
            if marked {
                ctx.push(
                    findings,
                    "narrowing-cast",
                    ln,
                    format!(
                        "bare `{}` may silently truncate a cycle/address \
                         value; use moca_common::units::narrow_*",
                        casts[0]
                    ),
                );
            }
        }
    }
}

/// Render a hot reason for messages: empty for a root, or the chain.
fn hot_chain(table: &FnTable, i: usize, reason: &HotReason) -> String {
    match reason {
        HotReason::Root => String::new(),
        HotReason::ReachedFrom { root, via } => {
            let mut chain = via.join(" → ");
            chain.push_str(" → ");
            chain.push_str(&table.fns[i].qual);
            format!(", reachable from hot root `{root}` via {chain}")
        }
    }
}

/// Apply `hot-alloc` and `panic-in-hot` over the hot set (direct roots and
/// call-graph-reachable functions). One finding per (rule, file, line) —
/// the leftmost pattern on a line wins, as in v1.
fn hot_pass(table: &FnTable, ctxs: &[FileCtx], findings: &mut Vec<Finding>) {
    let hot = table.hot_set();
    let mut flagged: BTreeSet<(&'static str, usize, usize)> = BTreeSet::new();
    for (i, reason) in hot.iter().enumerate() {
        let Some(reason) = reason else { continue };
        let f = &table.fns[i];
        let Some((a, b)) = f.body else { continue };
        let ctx = &ctxs[f.file];
        let chain = hot_chain(table, i, reason);
        for k in a..=b {
            if let Some(tok) = alloc_pattern_at(&ctx.toks, k) {
                let ln = ctx.toks[k].line - 1;
                if flagged.insert(("hot-alloc", f.file, ln)) {
                    ctx.push(
                        findings,
                        "hot-alloc",
                        ln,
                        format!(
                            "`{tok}` allocates inside per-cycle hot function \
                             `{}`{chain}; hoist a reusable buffer to the owning \
                             struct (cf. System::woken_buf) or justify with a pragma",
                            f.qual
                        ),
                    );
                }
            }
            if let Some(tok) = panic_pattern_at(&ctx.toks, k) {
                let ln = ctx.toks[k].line - 1;
                if flagged.insert(("panic-in-hot", f.file, ln)) {
                    ctx.push(
                        findings,
                        "panic-in-hot",
                        ln,
                        format!(
                            "`{tok}` can abort the run from per-cycle hot function \
                             `{}`{chain}; handle the None/Err case on the hot path \
                             or justify the invariant with a pragma",
                            f.qual
                        ),
                    );
                }
            }
        }
    }
}

/// Rule whose allow-pragma, placed at a taint *source*, declares the value
/// host-only and stops it from seeding taint (a clock read justified as
/// "never read by the simulation" must not poison every caller). A
/// `det-taint` pragma at the source works for every kind.
fn taint_source_rule(kind: &str) -> &'static str {
    match kind {
        "wall-clock read" => "wall-clock",
        "ambient randomness" => "unseeded-rng",
        "hash-ordered iteration" => "det-map",
        _ => "det-taint",
    }
}

/// Apply `det-taint`: for every tainted function, flag each sink call site
/// with the source and the call chain the taint arrived through.
fn taint_pass(table: &FnTable, ctxs: &[FileCtx], findings: &mut Vec<Finding>) {
    let source_justified = |ctx: &FileCtx, s: &taint::TaintSource| {
        let ln = s.line - 1;
        [taint_source_rule(s.kind), "det-taint"].iter().any(|rule| {
            ctx.raw_lines
                .get(ln)
                .is_some_and(|l| has_allow_pragma(l, rule))
                || (ln > 0
                    && ctx
                        .raw_lines
                        .get(ln - 1)
                        .is_some_and(|l| has_allow_pragma(l, rule)))
        })
    };
    let sources: Vec<Vec<taint::TaintSource>> = table
        .fns
        .iter()
        .map(|f| match f.body {
            Some((a, b)) => {
                let ctx = &ctxs[f.file];
                taint::body_sources(&ctx.toks, a, b)
                    .into_iter()
                    .filter(|s| !source_justified(ctx, s))
                    .collect()
            }
            None => Vec::new(),
        })
        .collect();
    let taints = taint::propagate(table, &sources);
    let mut flagged: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, t) in taints.iter().enumerate() {
        let Some(t) = t else { continue };
        let f = &table.fns[i];
        let ctx = &ctxs[f.file];
        for call in &f.calls {
            if !taint::is_sink_name(&call.name) {
                continue;
            }
            let ln = call.line - 1;
            if !flagged.insert((f.file, ln)) {
                continue;
            }
            let via = if t.via.is_empty() {
                format!("in `{}` itself", f.qual)
            } else {
                format!("via `{}`", t.via.join(" → "))
            };
            ctx.push(
                findings,
                "det-taint",
                ln,
                format!(
                    "sink `{}` is called in `{}`, which carries a {} \
                     originating in `{}` (line {}, {}); a nondeterministic \
                     value must not reach digests/telemetry — order or seed \
                     it before folding it into sim-visible state",
                    call.name, f.qual, t.source.kind, t.origin, t.source.line, via
                ),
            );
        }
    }
}

/// Lint one file. `crate_name` is the directory name under `crates/`
/// (e.g. `sim`); `rel` is the path to report in findings. `raw` is the
/// original source. Equivalent to a single-file [`scan_crate`].
pub fn scan_file(crate_name: &str, rel: &Path, raw: &str) -> Vec<Finding> {
    scan_crate(
        crate_name,
        &[SourceFile {
            rel: rel.to_path_buf(),
            raw: raw.to_string(),
        }],
    )
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every crate's `src/` under `<root>/crates/`, plus the shared
/// integration tests in `<root>/tests/`. Each crate is scanned as a unit
/// so the call-graph and taint passes see cross-file flows. The `analysis`
/// crate itself is excluded: its rule tables and fixtures necessarily
/// spell the forbidden tokens.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if crate_name == "analysis" {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rust_files(&src, &mut paths)?;
        let mut files = Vec::new();
        for file in paths {
            let raw = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            files.push(SourceFile { rel, raw });
        }
        findings.extend(scan_crate(&crate_name, &files));
    }
    // Shared integration tests drive the simulated path; hold them to the
    // same clock/rng rules (they are not in a sim-path crate, so det-map and
    // narrowing-cast do not apply).
    let tests = root.join("tests");
    if tests.is_dir() {
        let mut paths = Vec::new();
        rust_files(&tests, &mut paths)?;
        let mut files = Vec::new();
        for file in paths {
            let raw = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            files.push(SourceFile { rel, raw });
        }
        findings.extend(scan_crate("tests", &files));
    }
    Ok(findings)
}

/// Split findings into (unsuppressed, baselined) under `baseline`.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, Vec<Finding>) {
    findings
        .into_iter()
        .partition(|f| !baseline.contains(&baseline_key(f)))
}

/// One named model-validation check.
pub struct ModelCheck {
    /// What was validated (e.g. `timing preset DDR3`).
    pub name: String,
    /// `Err` carries the named-constraint message.
    pub result: Result<(), String>,
}

/// Statically validate the timing/layout model: every Table II device
/// preset ([`moca_dram::DeviceTiming::validate`]), the virtual
/// address-space layout ([`moca_vm::layout::validate_layout`]), every
/// evaluated system configuration ([`moca_sim::config::SystemConfig`]),
/// and the frame-allocator identities of every memory layout at both the
/// default evaluation scale (1/64) and full scale=1 footprints.
pub fn check_model() -> Vec<ModelCheck> {
    use moca_common::ModuleKind;
    use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};

    let mut checks = Vec::new();
    for kind in ModuleKind::ALL {
        checks.push(ModelCheck {
            name: format!("timing preset {}", kind.name()),
            result: moca_dram::DeviceTiming::for_kind(kind).validate(),
        });
    }
    checks.push(ModelCheck {
        name: "vm address-space layout".to_string(),
        result: moca_vm::layout::validate_layout(),
    });
    let mems = [
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ];
    for (label, mem) in &mems {
        checks.push(ModelCheck {
            name: format!("system config {label}"),
            result: SystemConfig::quad_core(*mem).validate(),
        });
    }

    // Striping must respect the L2 page-color period: rotating regions
    // every STRIPE_CHUNK frames only keeps virtually-adjacent pages
    // covering all physical page colors if the chunk is a whole number of
    // color periods.
    checks.push(ModelCheck {
        name: "stripe chunk vs L2 color period".to_string(),
        result: {
            let l2 = moca_cache::CacheConfig::l2();
            let color_period_pages =
                l2.sets() * moca_common::CACHE_LINE_SIZE / moca_common::PAGE_SIZE;
            if color_period_pages == 0 {
                Err(format!(
                    "L2 ({} sets) spans less than one page; page coloring is moot",
                    l2.sets()
                ))
            } else if moca_vm::STRIPE_CHUNK % color_period_pages != 0 {
                Err(format!(
                    "STRIPE_CHUNK {} not a multiple of the L2 color period {} pages",
                    moca_vm::STRIPE_CHUNK,
                    color_period_pages
                ))
            } else {
                Ok(())
            }
        },
    });

    // Frame-allocator identities per layout at the default evaluation
    // scale and at scale=1 — the full-footprint regime the hierarchical
    // bitmap exists for.
    for (label, mem) in &mems {
        for (scale_label, scale) in [
            ("1/64", moca_workloads::spec::DEFAULT_FOOTPRINT_SCALE),
            ("1", 1.0),
        ] {
            checks.push(ModelCheck {
                name: format!("frame allocator {label} @ scale {scale_label}"),
                result: validate_frame_allocator(mem, scale),
            });
        }
    }
    checks
}

/// Frame-allocator structural identities for one memory layout at one
/// capacity scale: contiguous zero-based regions, page-aligned capacities,
/// frame-count/capacity agreement, all-free headroom at init, bitmap
/// invariants, and bitmap-bounded bookkeeping memory.
fn validate_frame_allocator(
    mem: &moca_sim::config::MemSystemConfig,
    scale: f64,
) -> Result<(), String> {
    use moca_common::PAGE_SIZE;

    let regions = mem.frame_regions(scale);
    if regions.is_empty() {
        return Err("layout produced no regions".to_string());
    }
    let mut expected_base = 0u64;
    for (i, r) in regions.iter().enumerate() {
        if r.base_pfn != expected_base {
            return Err(format!(
                "region {i} ({}) starts at pfn {}, expected {expected_base} (gap or overlap)",
                r.kind, r.base_pfn
            ));
        }
        if r.frames == 0 {
            return Err(format!("region {i} ({}) is empty", r.kind));
        }
        if r.capacity_bytes() != r.frames * PAGE_SIZE {
            return Err(format!(
                "region {i} ({}) capacity {} disagrees with {} frames",
                r.kind,
                r.capacity_bytes(),
                r.frames
            ));
        }
        expected_base += r.frames;
    }

    let fs = moca_vm::FrameSpace::new(regions.clone());
    fs.check_invariants()
        .map_err(|e| format!("fresh allocator violates invariants: {e}"))?;
    if fs.total_frames() != expected_base {
        return Err(format!(
            "allocator counts {} frames, regions sum to {expected_base}",
            fs.total_frames()
        ));
    }
    // At init every frame of every kind is free, and headroom must say so.
    for (kind, free) in fs.headroom() {
        let expect: u64 = regions
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.frames)
            .sum();
        if free != expect {
            return Err(format!(
                "initial headroom for {kind} is {free}, regions hold {expect} frames"
            ));
        }
    }
    // Bookkeeping must stay bitmap-bounded (≈ frames/8 + frames/512 bytes),
    // not freed-Vec-bounded: allow one byte per four frames plus fixed
    // per-region slack.
    let budget = fs.total_frames() / 4 + 4096 * regions.len() as u64;
    if fs.alloc_bytes() as u64 > budget {
        return Err(format!(
            "allocator bookkeeping {} B exceeds bitmap budget {budget} B for {} frames",
            fs.alloc_bytes(),
            fs.total_frames()
        ));
    }
    Ok(())
}
