//! `moca-lint`: repo-native static analysis for the MOCA simulator.
//!
//! The simulator's headline guarantee — a run is a bit-identical pure
//! function of its configuration — rests on source-level conventions that
//! `rustc` cannot check: no hash-ordered collections in simulated state, no
//! wall-clock reads or threads on the simulated path, all randomness through
//! the seeded [`moca_common::rng`], and no silent integer narrowing of
//! cycle- or address-typed values. This crate enforces those conventions
//! with a plain-Rust line/token scanner (no external parser — the workspace
//! builds offline against shims), plus a `check-model` pass that validates
//! the DRAM timing presets and the virtual address-space layout against
//! their inter-parameter constraints.
//!
//! ## Rules
//!
//! | rule             | scope                          | forbids |
//! |------------------|--------------------------------|---------|
//! | `det-map`        | simulated-path crates          | `std::collections::HashMap` / `HashSet` (use [`moca_common::det`]) |
//! | `wall-clock`     | all except `telemetry`/`bench` | `std::time::Instant` / `SystemTime`, thread spawning |
//! | `unseeded-rng`   | everywhere                     | ambient randomness (`thread_rng`, `from_entropy`, …) |
//! | `narrowing-cast` | simulated-path crates          | bare `as u32`/`as usize`/… on cycle/address-flavored expressions (use [`moca_common::units::narrow_u32`]) |
//! | `hot-alloc`      | simulated-path crates          | heap allocation (`Vec::new()`, `vec![…]`, `format!`, `.to_string()`, `.collect::<Vec<…>>`) inside per-cycle hot functions (`fn tick*` / `fn step` / `fn on_completion*`) |
//! | `attr-exclusive` | simulated-path crates          | two distinct CPI-stack bucket fields (`.committing += …`, `.load_miss += …`, …) incremented in the same immediate brace scope — buckets are exclusive per cycle, so charges must live in disjoint arms |
//!
//! A finding is suppressed by an inline pragma on the same line or the line
//! above — `// moca-lint: allow(<rule>): <justification>` (the justification
//! is mandatory) — or by an entry in the committed baseline file
//! (`lint-baseline.txt`), which exists for incremental burn-down and is
//! empty in a healthy tree.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose source participates in simulated state: hash-ordered
/// collections and silent narrowing are forbidden here.
pub const SIM_PATH_CRATES: &[&str] = &["sim", "dram", "vm", "core", "cpu", "cache"];

/// Crates that legitimately touch the host clock and threads (observability
/// and benchmarking are host-side by design).
pub const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["telemetry", "bench"];

/// The rule catalog: `(name, short description)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "det-map",
        "std HashMap/HashSet forbidden in simulated-path crates; use moca_common::det",
    ),
    (
        "wall-clock",
        "std::time::Instant/SystemTime and thread spawning forbidden outside telemetry/bench",
    ),
    (
        "unseeded-rng",
        "randomness must flow through moca_common::rng (seeded, deterministic)",
    ),
    (
        "narrowing-cast",
        "bare `as` narrowing on cycle/address-typed expressions; use moca_common::units::narrow_*",
    ),
    (
        "hot-alloc",
        "heap allocation inside per-cycle hot functions; hoist a reusable buffer to the owning struct",
    ),
    (
        "attr-exclusive",
        "two CPI-stack bucket increments in one brace scope; every cycle belongs to exactly one bucket",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}\n    {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message,
            self.excerpt
        )
    }
}

/// Baseline key of a finding: `rule|path|trimmed-line`. Content-addressed
/// (no line number) so unrelated edits above a baselined finding do not
/// invalidate the entry.
pub fn baseline_key(f: &Finding) -> String {
    format!("{}|{}|{}", f.rule, f.path.display(), f.excerpt)
}

/// Parse a baseline file: one key per line, `#` comments and blank lines
/// ignored. A missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> BTreeSet<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Strip comments and string/char-literal *contents* from Rust source,
/// returning one entry per input line with code structure preserved (so
/// token positions still correspond to the original lines). Handles line
/// comments, nested block comments, string literals with escapes, raw
/// strings (`r"…"`, `r#"…"#`), and char literals vs. lifetimes.
pub fn strip_code(src: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut out = Vec::new();
    let mut state = State::Code;
    for line in src.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut kept = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            match state {
                State::Block(depth) => {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        state = State::Code;
                        kept.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if b[i] == '"' {
                        let n = hashes as usize;
                        if b[i + 1..].len() >= n && b[i + 1..i + 1 + n].iter().all(|&c| c == '#') {
                            state = State::Code;
                            kept.push('"');
                            i += 1 + n;
                            continue;
                        }
                    }
                    i += 1;
                }
                State::Code => {
                    let c = b[i];
                    if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
                        break; // rest of line is a comment
                    }
                    if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        state = State::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = State::Str;
                        kept.push('"');
                        i += 1;
                        continue;
                    }
                    if c == 'r' && i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') {
                        // Possible raw string: r", r#", r##", …
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while j < b.len() && b[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == '"' {
                            state = State::RawStr(hashes);
                            kept.push('"');
                            i = j + 1;
                            continue;
                        }
                        kept.push(c);
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                        if i + 1 < b.len() && b[i + 1] == '\\' {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                            continue;
                        }
                        if i + 2 < b.len() && b[i + 2] == '\'' {
                            i += 3; // plain char literal 'x'
                            continue;
                        }
                        // Lifetime: keep nothing, skip the quote.
                        i += 1;
                        continue;
                    }
                    kept.push(c);
                    i += 1;
                }
            }
        }
        // An unterminated line comment never spans lines; strings and block
        // comments carry their state into the next line.
        out.push(kept);
    }
    out
}

/// True if `token` occurs in `line` delimited by non-identifier characters.
pub fn has_token(line: &str, token: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let after = at + token.len();
        let after_ok = after >= line.len() || !line[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len().max(1);
    }
    false
}

/// Whether raw line `raw` carries a valid allow-pragma for `rule`:
/// `moca-lint: allow(<rule>): <non-empty justification>`.
pub fn has_allow_pragma(raw: &str, rule: &str) -> bool {
    let needle = format!("moca-lint: allow({rule})");
    let Some(pos) = raw.find(&needle) else {
        return false;
    };
    let rest = raw[pos + needle.len()..].trim_start();
    let Some(justification) = rest.strip_prefix(':') else {
        return false;
    };
    !justification.trim().is_empty()
}

/// Context markers that identify a `u64`-flavored (cycle / address / size)
/// expression for the `narrowing-cast` rule.
const NARROWING_MARKERS: &[&str] = &[
    "Cycle",
    "cycle",
    "pfn",
    "vpn",
    "addr",
    "Addr",
    "bytes",
    "capacity",
    "u64",
    ".len()",
    "PAGE_SIZE",
    "CACHE_LINE_SIZE",
    "row_buffer",
    "line.0",
];

/// Narrowing cast targets the rule watches for.
const NARROWING_CASTS: &[&str] = &["as u32", "as u16", "as u8", "as usize"];

/// Allocation tokens the `hot-alloc` rule watches for inside hot functions.
const HOT_ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec![",
    ".to_string()",
    "format!",
    ".collect::<Vec",
];

/// If `line` declares a function the `hot-alloc` rule treats as hot —
/// a per-cycle/simulation entry point (`tick*`, `step`, `on_completion*`)
/// — return its name.
pub fn hot_fn_name(line: &str) -> Option<&str> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut search = 0;
    while let Some(pos) = line[search..].find("fn ") {
        let at = search + pos;
        search = at + 3;
        if at > 0 && line[..at].chars().next_back().is_some_and(is_ident) {
            continue; // e.g. `often `
        }
        let rest = &line[at + 3..];
        let name_len = rest.chars().take_while(|&c| is_ident(c)).count();
        let name = &rest[..name_len];
        if name.starts_with("tick") || name == "step" || name.starts_with("on_completion") {
            return Some(name);
        }
    }
    None
}

/// For each stripped source line, the name of the enclosing hot function
/// (see [`hot_fn_name`]), tracked by brace depth. A line partially inside
/// a hot body (e.g. the closing `}` line) counts as inside.
fn hot_spans<'a>(code: &'a [String]) -> Vec<Option<&'a str>> {
    let mut out: Vec<Option<&'a str>> = vec![None; code.len()];
    let mut depth: i64 = 0;
    // (name, depth of the fn body's opening brace)
    let mut stack: Vec<(&str, i64)> = Vec::new();
    let mut pending: Option<&str> = None;
    for (ln, line) in code.iter().enumerate() {
        if let Some(name) = hot_fn_name(line) {
            pending = Some(name);
        }
        let mut line_hot = stack.last().map(|&(n, _)| n);
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, depth));
                        line_hot.get_or_insert(name);
                    }
                }
                '}' => {
                    if stack.last().is_some_and(|&(_, d)| d == depth) {
                        stack.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        out[ln] = line_hot;
    }
    out
}

/// CPI-stack bucket fields of `moca_telemetry::attribution::CycleBuckets`.
/// The `attr-exclusive` rule watches `.{field} +=` increments: the buckets
/// partition core cycles, so two different fields charged in the same
/// immediate brace scope would double-count a cycle.
const BUCKET_FIELDS: &[&str] = &[
    "committing",
    "load_miss",
    "mshr_full",
    "rob_full",
    "frontend_empty",
    "other",
];

/// Byte offsets and field names of CPI-stack bucket increments on a
/// stripped line: `.{field}` at an identifier boundary (so
/// `.mshr_full_cycles` does not match `mshr_full`) followed by `+=`.
fn bucket_increments(line: &str) -> Vec<(usize, &'static str)> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    for &field in BUCKET_FIELDS {
        let pat = format!(".{field}");
        let mut start = 0;
        while let Some(pos) = line[start..].find(&pat) {
            let at = start + pos;
            start = at + 1;
            let after = at + pat.len();
            if line[after..].chars().next().is_some_and(is_ident) {
                continue; // longer identifier, e.g. `.other_field`
            }
            if line[after..].trim_start().starts_with("+=") {
                out.push((at, field));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Wall-clock / threading tokens.
const WALL_CLOCK_TOKENS: &[&str] = &["Instant", "SystemTime"];
const THREAD_TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::sleep"];

/// Ambient-randomness tokens (anything not flowing through
/// `moca_common::rng::DetRng`).
const RNG_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "rand::random",
    "getrandom",
    "fastrand",
];

/// Lint one file. `crate_name` is the directory name under `crates/`
/// (e.g. `sim`); `rel` is the path to report in findings. `raw` is the
/// original source.
pub fn scan_file(crate_name: &str, rel: &Path, raw: &str) -> Vec<Finding> {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let code = strip_code(raw);
    let sim_path = SIM_PATH_CRATES.contains(&crate_name);
    let clock_checked = !WALL_CLOCK_EXEMPT_CRATES.contains(&crate_name);
    let hot = if sim_path {
        hot_spans(&code)
    } else {
        Vec::new()
    };
    let mut findings = Vec::new();

    let mut push = |rule: &'static str, ln: usize, message: String| {
        // Pragma on the finding line or the line above suppresses it.
        let suppressed = has_allow_pragma(raw_lines[ln], rule)
            || (ln > 0 && has_allow_pragma(raw_lines[ln - 1], rule));
        if !suppressed {
            findings.push(Finding {
                rule,
                path: rel.to_path_buf(),
                line: ln + 1,
                excerpt: raw_lines[ln].trim().to_string(),
                message,
            });
        }
    };

    // attr-exclusive state: distinct bucket fields incremented *directly* in
    // each open brace scope (index 0 = file top level); nested scopes are
    // separate arms and do not conflict with their parents.
    let mut attr_scopes: Vec<Vec<&'static str>> = vec![Vec::new()];

    for (ln, line) in code.iter().enumerate() {
        if sim_path {
            let incs = bucket_increments(line);
            let mut k = 0;
            for (i, c) in line.char_indices() {
                while k < incs.len() && incs[k].0 <= i {
                    let field = incs[k].1;
                    k += 1;
                    let top = attr_scopes.last_mut().expect("scope stack non-empty");
                    if !top.contains(&field) {
                        if let Some(&prev) = top.first() {
                            push(
                                "attr-exclusive",
                                ln,
                                format!(
                                    "`.{field} +=` in the same brace scope as `.{prev} +=`; \
                                     CPI-stack buckets are exclusive — every cycle belongs to \
                                     exactly one bucket, so charges must live in disjoint arms"
                                ),
                            );
                        }
                        top.push(field);
                    }
                }
                match c {
                    '{' => attr_scopes.push(Vec::new()),
                    '}' if attr_scopes.len() > 1 => {
                        attr_scopes.pop();
                    }
                    _ => {}
                }
            }
        }
        if sim_path {
            for tok in ["HashMap", "HashSet"] {
                if has_token(line, tok) {
                    push(
                        "det-map",
                        ln,
                        format!(
                            "{tok} iteration order is nondeterministic; use \
                             moca_common::det::{} instead",
                            if tok == "HashMap" { "DetMap" } else { "DetSet" }
                        ),
                    );
                }
            }
        }
        if clock_checked {
            for tok in WALL_CLOCK_TOKENS {
                if has_token(line, tok) {
                    push(
                        "wall-clock",
                        ln,
                        format!(
                            "std::time::{tok} reads the host clock; simulated \
                             time is moca_common::Cycle"
                        ),
                    );
                }
            }
            for tok in THREAD_TOKENS {
                if line.contains(tok) {
                    push(
                        "wall-clock",
                        ln,
                        format!("{tok} spawns host threads outside telemetry/bench"),
                    );
                }
            }
        }
        for tok in RNG_TOKENS {
            if line.contains(tok) {
                push(
                    "unseeded-rng",
                    ln,
                    format!("{tok} draws ambient entropy; use moca_common::rng::DetRng"),
                );
            }
        }
        if sim_path {
            let casts: Vec<&str> = NARROWING_CASTS
                .iter()
                .copied()
                .filter(|c| has_token(line, c))
                .collect();
            if !casts.is_empty() {
                // `as usize` is a widening on 64-bit hosts unless the source
                // is 64-bit flavored; require a marker in a 3-line window.
                let lo = ln.saturating_sub(2);
                let window = &code[lo..=ln];
                let marked = window
                    .iter()
                    .any(|l| NARROWING_MARKERS.iter().any(|m| l.contains(m)));
                if marked {
                    push(
                        "narrowing-cast",
                        ln,
                        format!(
                            "bare `{}` may silently truncate a cycle/address \
                             value; use moca_common::units::narrow_*",
                            casts[0]
                        ),
                    );
                }
            }
            if let Some(fn_name) = hot[ln] {
                for tok in HOT_ALLOC_TOKENS {
                    if line.contains(tok) {
                        push(
                            "hot-alloc",
                            ln,
                            format!(
                                "`{tok}` allocates inside per-cycle hot function \
                                 `{fn_name}`; hoist a reusable buffer to the owning \
                                 struct (cf. System::woken_buf) or justify with a pragma"
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every crate's `src/` under `<root>/crates/`, plus the shared
/// integration tests in `<root>/tests/`. The `analysis` crate itself is
/// excluded: its rule tables and fixtures necessarily spell the forbidden
/// tokens.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if crate_name == "analysis" {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for file in files {
            let raw = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file);
            findings.extend(scan_file(&crate_name, rel, &raw));
        }
    }
    // Shared integration tests drive the simulated path; hold them to the
    // same clock/rng rules (they are not in a sim-path crate, so det-map and
    // narrowing-cast do not apply).
    let tests = root.join("tests");
    if tests.is_dir() {
        let mut files = Vec::new();
        rust_files(&tests, &mut files)?;
        for file in files {
            let raw = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file);
            findings.extend(scan_file("tests", rel, &raw));
        }
    }
    Ok(findings)
}

/// Split findings into (unsuppressed, baselined) under `baseline`.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, Vec<Finding>) {
    findings
        .into_iter()
        .partition(|f| !baseline.contains(&baseline_key(f)))
}

/// One named model-validation check.
pub struct ModelCheck {
    /// What was validated (e.g. `timing preset DDR3`).
    pub name: String,
    /// `Err` carries the named-constraint message.
    pub result: Result<(), String>,
}

/// Statically validate the timing/layout model: every Table II device
/// preset ([`moca_dram::DeviceTiming::validate`]), the virtual
/// address-space layout ([`moca_vm::layout::validate_layout`]), and every
/// evaluated system configuration ([`moca_sim::config::SystemConfig`]).
pub fn check_model() -> Vec<ModelCheck> {
    use moca_common::ModuleKind;
    use moca_sim::config::{HeterogeneousLayout, MemSystemConfig, SystemConfig};

    let mut checks = Vec::new();
    for kind in ModuleKind::ALL {
        checks.push(ModelCheck {
            name: format!("timing preset {}", kind.name()),
            result: moca_dram::DeviceTiming::for_kind(kind).validate(),
        });
    }
    checks.push(ModelCheck {
        name: "vm address-space layout".to_string(),
        result: moca_vm::layout::validate_layout(),
    });
    let mems = [
        (
            "Homogen-DDR3",
            MemSystemConfig::Homogeneous(ModuleKind::Ddr3),
        ),
        (
            "Homogen-RL",
            MemSystemConfig::Homogeneous(ModuleKind::Rldram3),
        ),
        ("Homogen-HBM", MemSystemConfig::Homogeneous(ModuleKind::Hbm)),
        (
            "Homogen-LP",
            MemSystemConfig::Homogeneous(ModuleKind::Lpddr2),
        ),
        (
            "Heter config1",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config1()),
        ),
        (
            "Heter config2",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config2()),
        ),
        (
            "Heter config3",
            MemSystemConfig::Heterogeneous(HeterogeneousLayout::config3()),
        ),
    ];
    for (label, mem) in mems {
        checks.push(ModelCheck {
            name: format!("system config {label}"),
            result: SystemConfig::quad_core(mem).validate(),
        });
    }
    checks
}
