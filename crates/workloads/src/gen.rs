//! Instruction-stream generator: turns an [`AppSpec`] + input set into the
//! dynamic instruction stream the core model consumes.

use crate::spec::{AppSpec, InputSet, Pattern};
use moca_common::addr::CACHE_LINE_SIZE;
use moca_common::ids::MemTag;
use moca_common::{DetRng, ObjectId, Segment, VirtAddr};
use moca_cpu::{Instr, InstrStream};

/// Scaled sizes of an app's objects under `footprint_scale` and `input`.
pub fn scaled_sizes(spec: &AppSpec, input: InputSet, footprint_scale: f64) -> Vec<u64> {
    spec.objects
        .iter()
        .map(|o| o.scaled_bytes(footprint_scale * input.size_scale))
        .collect()
}

#[derive(Debug, Clone)]
struct ObjState {
    base: VirtAddr,
    lines: u64,
    chain: u16,
    weight: f64,
    pattern: Pattern,
    write_fraction: f64,
    burst: u32,
    /// Stream cursor (line index within the object).
    cursor: u64,
    /// Line currently being burst-accessed.
    current_line: u64,
    /// Accesses left in the current line burst.
    burst_left: u32,
    /// Whether accesses to the current line are address-dependent.
    current_dependent: bool,
}

impl ObjState {
    fn hot_lines(&self) -> u64 {
        match self.pattern {
            Pattern::Hot { working_set, .. } => {
                (working_set / CACHE_LINE_SIZE).clamp(1, self.lines)
            }
            _ => self.lines,
        }
    }
}

/// A running application instance: an infinite, deterministic
/// [`InstrStream`]. The surrounding simulator bounds the run by committed
/// instruction count (the paper fast-forwards and then runs a fixed
/// instruction budget per SimPoint).
pub struct AppRun {
    name: &'static str,
    rng: DetRng,
    mem_fraction: f64,
    branch_cut: f64,
    mispredict_rate: f64,
    stack_fraction: f64,
    branch_jump_prob: f64,
    code_base: u64,
    code_lines: u64,
    stack_base: VirtAddr,
    stack_lines: u64,
    objects: Vec<ObjState>,
    weights: Vec<f64>,
    /// Sum of `weights`, precomputed so each heap access skips the re-sum.
    weights_total: f64,
    /// Odd-phase (period, weights, weight sum), when the app is phased.
    phases: Option<(u64, Vec<f64>, f64)>,
    /// Instructions generated so far (drives phase switching).
    generated: u64,
    /// Instructions left in the current phase (countdown replaces the
    /// per-instruction division by the period).
    phase_left: u64,
    /// Whether the odd-phase weights are active.
    in_odd_phase: bool,
}

impl AppRun {
    /// Build a run. `object_bases[i]` is the virtual base address assigned
    /// to `spec.objects[i]` (by MOCA's typed-heap allocator or a baseline),
    /// `stack_base` the lowest stack address, and `stream` an RNG stream
    /// discriminator (use the core index so co-scheduled copies of one app
    /// diverge).
    pub fn new(
        spec: &AppSpec,
        input: InputSet,
        footprint_scale: f64,
        object_bases: &[VirtAddr],
        stack_base: VirtAddr,
        stream: u64,
    ) -> AppRun {
        assert_eq!(
            object_bases.len(),
            spec.objects.len(),
            "{}: one base per object required",
            spec.name
        );
        let sizes = scaled_sizes(spec, input, footprint_scale);
        let objects: Vec<ObjState> = spec
            .objects
            .iter()
            .zip(sizes.iter())
            .zip(object_bases.iter())
            .enumerate()
            .map(|(idx, ((o, &bytes), &base))| ObjState {
                base,
                lines: (bytes / CACHE_LINE_SIZE).max(1),
                chain: o
                    .chain_group
                    .map(|g| 0x100 + g as u16)
                    .unwrap_or(idx as u16),
                weight: o.weight,
                pattern: o.pattern,
                write_fraction: o.write_fraction,
                burst: o.burst,
                cursor: 0,
                current_line: 0,
                burst_left: 0,
                current_dependent: o.pattern.dependent(),
            })
            .collect();
        let weights: Vec<f64> = objects.iter().map(|o| o.weight).collect();
        let weights_total: f64 = weights.iter().sum();
        let phases = spec.phases.as_ref().map(|p| {
            let total: f64 = p.odd_weights.iter().sum();
            (p.period, p.odd_weights.clone(), total)
        });
        let phase_left = phases.as_ref().map_or(0, |(period, ..)| *period);
        AppRun {
            name: spec.name,
            rng: DetRng::new(input.seed ^ fxhash(spec.name), stream),
            mem_fraction: spec.mem_fraction,
            branch_cut: spec.mem_fraction + spec.branch_fraction,
            mispredict_rate: spec.mispredict_rate,
            stack_fraction: spec.stack_fraction,
            branch_jump_prob: spec.branch_jump_prob,
            code_base: moca_vm::layout::CODE_BASE,
            code_lines: (spec.code_bytes / CACHE_LINE_SIZE).max(1),
            stack_base,
            stack_lines: (spec.stack_working_set / CACHE_LINE_SIZE).max(1),
            objects,
            weights,
            weights_total,
            phases,
            generated: 0,
            phase_left,
            in_odd_phase: false,
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn heap_access(&mut self) -> Instr {
        let (weights, total) = match (&self.phases, self.in_odd_phase) {
            (Some((_, odd, t)), true) => (odd, *t),
            _ => (&self.weights, self.weights_total),
        };
        let i = self.rng.weighted_index_with_total(weights, total);
        let o = &mut self.objects[i];
        let first_of_line = o.burst_left == 0;
        if first_of_line {
            let (line, dependent) = match o.pattern {
                Pattern::Stream { stride } | Pattern::StreamDep { stride } => {
                    let l = o.cursor;
                    o.cursor = (o.cursor + stride.max(1)) % o.lines;
                    if o.cursor < stride {
                        // Phase-shift each wrap so strided sweeps cover
                        // every line across passes regardless of gcd.
                        o.cursor = (o.cursor + 1) % o.lines;
                    }
                    (l, o.pattern.dependent())
                }
                Pattern::Chase => (self.rng.below(o.lines), true),
                Pattern::Random => (self.rng.below(o.lines), false),
                Pattern::Hot {
                    cold_fraction,
                    chase,
                    ..
                } => {
                    if cold_fraction > 0.0 && self.rng.chance(cold_fraction) {
                        (self.rng.below(o.lines), chase)
                    } else {
                        (self.rng.below(o.hot_lines()), false)
                    }
                }
            };
            o.current_line = line;
            o.current_dependent = dependent;
            o.burst_left = o.burst;
        }
        o.burst_left -= 1;
        let offset = o.current_line * CACHE_LINE_SIZE + self.rng.below(8) * 8;
        let va = o.base.offset(offset);
        let tag = MemTag::heap(ObjectId(i as u32));
        let write_fraction = o.write_fraction;
        let dependent = o.current_dependent;
        let chain = o.chain;
        if self.rng.chance(write_fraction) {
            Instr::Store { va, tag }
        } else {
            Instr::Load {
                va,
                tag,
                dependent,
                chain,
            }
        }
    }

    fn stack_access(&mut self) -> Instr {
        let line = self.rng.below(self.stack_lines);
        let va = self
            .stack_base
            .offset(line * CACHE_LINE_SIZE + self.rng.below(8) * 8);
        let tag = MemTag::segment(Segment::Stack);
        if self.rng.chance(0.40) {
            Instr::Store { va, tag }
        } else {
            Instr::Load {
                va,
                tag,
                dependent: false,
                chain: u16::MAX,
            }
        }
    }
}

impl InstrStream for AppRun {
    fn next_instr(&mut self) -> Option<Instr> {
        self.generated += 1;
        if let Some((period, ..)) = &self.phases {
            // Countdown equivalent of `(generated / period) % 2 == 1`.
            self.phase_left -= 1;
            if self.phase_left == 0 {
                self.in_odd_phase = !self.in_odd_phase;
                self.phase_left = *period;
            }
        }
        let r = self.rng.unit();
        Some(if r < self.mem_fraction {
            if self.rng.chance(self.stack_fraction) {
                self.stack_access()
            } else {
                self.heap_access()
            }
        } else if r < self.branch_cut {
            let mispredict = self.rng.chance(self.mispredict_rate);
            let target = if self.rng.chance(self.branch_jump_prob) {
                Some(VirtAddr(
                    self.code_base + self.rng.below(self.code_lines) * CACHE_LINE_SIZE,
                ))
            } else {
                None
            };
            Instr::Branch { mispredict, target }
        } else {
            Instr::Compute
        })
    }
}

/// Tiny FNV-style hash for stable per-app seed separation.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DEFAULT_FOOTPRINT_SCALE;
    use crate::suite::app_by_name;
    use moca_common::MB;

    fn mk(name: &str, seed_variant: InputSet, stream: u64) -> (AppRun, Vec<u64>) {
        let spec = app_by_name(name);
        let sizes = scaled_sizes(&spec, seed_variant, DEFAULT_FOOTPRINT_SCALE);
        // Lay objects out back to back from an arbitrary heap base.
        let mut bases = Vec::new();
        let mut cur = 0x2000_0000u64;
        for &s in &sizes {
            bases.push(VirtAddr(cur));
            cur += s;
        }
        (
            AppRun::new(
                &spec,
                seed_variant,
                DEFAULT_FOOTPRINT_SCALE,
                &bases,
                VirtAddr(0x7000_0000),
                stream,
            ),
            sizes,
        )
    }

    #[test]
    fn deterministic_across_instances() {
        let (mut a, _) = mk("mcf", InputSet::reference(), 0);
        let (mut b, _) = mk("mcf", InputSet::reference(), 0);
        for _ in 0..10_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_inputs_differ() {
        let (mut a, _) = mk("mcf", InputSet::training(), 0);
        let (mut b, _) = mk("mcf", InputSet::reference(), 0);
        let same = (0..1000)
            .filter(|_| a.next_instr() == b.next_instr())
            .count();
        assert!(same < 990, "training and reference should diverge");
    }

    #[test]
    fn different_streams_differ() {
        let (mut a, _) = mk("lbm", InputSet::reference(), 0);
        let (mut b, _) = mk("lbm", InputSet::reference(), 1);
        let same = (0..1000)
            .filter(|_| a.next_instr() == b.next_instr())
            .count();
        assert!(same < 990);
    }

    #[test]
    fn heap_addresses_stay_in_bounds() {
        let (mut run, sizes) = mk("milc", InputSet::reference(), 0);
        let spec = app_by_name("milc");
        let mut bases = Vec::new();
        let mut cur = 0x2000_0000u64;
        for &s in &sizes {
            bases.push(cur);
            cur += s;
        }
        for _ in 0..200_000 {
            if let Some(Instr::Load { va, tag, .. } | Instr::Store { va, tag }) = run.next_instr() {
                if let Some(id) = tag.object {
                    let i = id.0 as usize;
                    assert!(i < spec.objects.len());
                    assert!(
                        va.0 >= bases[i] && va.0 < bases[i] + sizes[i],
                        "object {i} access {va:x} outside [{:x}, {:x})",
                        bases[i],
                        bases[i] + sizes[i]
                    );
                }
            }
        }
    }

    #[test]
    fn mix_matches_fractions() {
        let (mut run, _) = mk("lbm", InputSet::reference(), 0);
        let spec = app_by_name("lbm");
        let n = 200_000;
        let mut mem = 0;
        let mut br = 0;
        for _ in 0..n {
            match run.next_instr().unwrap() {
                Instr::Load { .. } | Instr::Store { .. } => mem += 1,
                Instr::Branch { .. } => br += 1,
                Instr::Compute => {}
            }
        }
        let memf = mem as f64 / n as f64;
        let brf = br as f64 / n as f64;
        assert!((memf - spec.mem_fraction).abs() < 0.01, "mem {memf}");
        assert!((brf - spec.branch_fraction).abs() < 0.01, "branch {brf}");
    }

    #[test]
    fn chase_objects_emit_dependent_loads() {
        let (mut run, _) = mk("mcf", InputSet::reference(), 0);
        let spec = app_by_name("mcf");
        let chase_idx = spec
            .objects
            .iter()
            .position(|o| matches!(o.pattern, Pattern::Chase))
            .unwrap() as u32;
        let mut saw_dep = false;
        let mut saw_hot_independent = false;
        for _ in 0..100_000 {
            if let Some(Instr::Load { tag, dependent, .. }) = run.next_instr() {
                match tag.object {
                    Some(ObjectId(i)) if i == chase_idx => {
                        assert!(dependent, "chase load must be dependent");
                        saw_dep = true;
                    }
                    Some(ObjectId(i))
                        if matches!(spec.objects[i as usize].pattern, Pattern::Hot { .. }) =>
                    {
                        assert!(!dependent);
                        saw_hot_independent = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_dep && saw_hot_independent);
    }

    #[test]
    fn stream_objects_advance_sequentially() {
        let spec = app_by_name("lbm");
        let sizes = scaled_sizes(&spec, InputSet::reference(), DEFAULT_FOOTPRINT_SCALE);
        let mut bases = Vec::new();
        let mut cur = 0x2000_0000u64;
        for &s in &sizes {
            bases.push(VirtAddr(cur));
            cur += s;
        }
        let mut run = AppRun::new(
            &spec,
            InputSet::reference(),
            DEFAULT_FOOTPRINT_SCALE,
            &bases,
            VirtAddr(0x7000_0000),
            0,
        );
        // Collect the line sequence of srcGrid (object 0) and check it is
        // non-decreasing between wraps.
        let mut last_line: Option<u64> = None;
        let mut checked = 0;
        for _ in 0..100_000 {
            if let Some(Instr::Load { va, tag, .. } | Instr::Store { va, tag }) = run.next_instr() {
                if tag.object == Some(ObjectId(0)) {
                    let line = (va.0 - bases[0].0) / 64;
                    if let Some(prev) = last_line {
                        assert!(
                            line >= prev || line == 0,
                            "stream went backwards: {prev} -> {line}"
                        );
                    }
                    last_line = Some(line);
                    checked += 1;
                }
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn phased_app_shifts_object_mix() {
        use crate::spec::PhaseSpec;
        let mut spec = app_by_name("lbm");
        // Odd phases hammer `flags` (object 2) instead of the grids.
        spec.phases = Some(PhaseSpec {
            period: 10_000,
            odd_weights: vec![0.05, 0.05, 0.90],
        });
        spec.validate();
        let sizes = scaled_sizes(&spec, InputSet::reference(), DEFAULT_FOOTPRINT_SCALE);
        let mut bases = Vec::new();
        let mut cur = 0x2000_0000u64;
        for &s in &sizes {
            bases.push(VirtAddr(cur));
            cur += s;
        }
        let mut run = AppRun::new(
            &spec,
            InputSet::reference(),
            DEFAULT_FOOTPRINT_SCALE,
            &bases,
            VirtAddr(0x7000_0000),
            0,
        );
        // Count flags accesses in the first (even) vs second (odd) phase.
        let mut counts = [0u64; 2];
        let mut totals = [0u64; 2];
        for i in 0..20_000u64 {
            let phase = (i / 10_000) as usize;
            if let Some(Instr::Load { tag, .. } | Instr::Store { tag, .. }) = run.next_instr() {
                if tag.object.is_some() {
                    totals[phase] += 1;
                    if tag.object == Some(ObjectId(2)) {
                        counts[phase] += 1;
                    }
                }
            }
        }
        let even_share = counts[0] as f64 / totals[0] as f64;
        let odd_share = counts[1] as f64 / totals[1] as f64;
        assert!(even_share < 0.3, "even phase flags share {even_share}");
        assert!(odd_share > 0.7, "odd phase flags share {odd_share}");
    }

    #[test]
    fn unphased_apps_are_stationary() {
        let spec = app_by_name("lbm");
        assert!(spec.phases.is_none());
    }

    #[test]
    fn scaled_sizes_respect_scale() {
        let spec = app_by_name("mcf");
        let full = scaled_sizes(&spec, InputSet::reference(), 1.0);
        let scaled = scaled_sizes(&spec, InputSet::reference(), DEFAULT_FOOTPRINT_SCALE);
        assert_eq!(full[0], 280 * MB);
        assert!((scaled[0] as f64 - 280.0 * MB as f64 / 64.0).abs() < 128.0);
    }
}
