//! Synthetic workload suite.
//!
//! The paper profiles and evaluates C applications from SPEC CPU2006 and the
//! San Diego Vision Benchmark Suite. Running those binaries requires an x86
//! full-system simulator and the benchmark inputs; what MOCA actually
//! consumes from them is much narrower — the *shape* of each heap object's
//! memory behaviour:
//!
//! * how intensely the object misses the LLC (→ LLC MPKI),
//! * whether its loads are address-dependent (pointer chasing destroys
//!   memory-level parallelism → high ROB-head stalls) or independent
//!   (streaming hides latency → low stalls),
//! * how big the object is relative to the memory modules.
//!
//! This crate reproduces those shapes synthetically: each of the ten paper
//! benchmarks (`mcf`, `milc`, `libquantum`, `disparity`, `mser`, `lbm`,
//! `tracking`, `gcc`, `sift`, `stitch`) is an [`AppSpec`] — a set of named
//! heap objects with per-object [`Pattern`]s calibrated so the app-level
//! classification matches Table III and the object-level diversity matches
//! Fig. 2. Training and reference inputs (§V-D) are different seeds and
//! footprint scales of the same generator.
//!
//! Object *sizes* are specified at the paper's nominal scale (2 GB machine)
//! and scaled down together with the module capacities, preserving the
//! footprint:capacity ratios that drive the paper's allocation-contention
//! results.

pub mod gen;
pub mod sets;
pub mod spec;
pub mod suite;

pub use gen::AppRun;
pub use sets::{config_sweep_sets, multiprogram_sets, WorkloadSet};
pub use spec::{AppSpec, InputSet, ObjectSpec, Pattern};
pub use suite::{app_by_name, suite};
