//! Multi-program workload sets (§V-D).
//!
//! Sets are named by composition: `2L1B1N` = two latency-sensitive, one
//! bandwidth-sensitive, one non-memory-intensive application. The paper
//! evaluates ten four-app sets on the multicore system (Figs. 10–13) and a
//! five-set subset across heterogeneous configurations (Figs. 14–15).

use crate::suite::app_by_name;
use moca_common::ObjectClass;
use serde::{Deserialize, Serialize};

/// A named multi-program workload (one application per core).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSet {
    /// Composition name (e.g. `3L1B`).
    pub name: &'static str,
    /// Benchmark names, one per core. Duplicates are allowed (two instances
    /// run with different RNG streams).
    pub apps: [&'static str; 4],
}

impl WorkloadSet {
    /// Verify the name matches the actual class composition of the apps.
    pub fn composition(&self) -> (usize, usize, usize) {
        let mut l = 0;
        let mut b = 0;
        let mut n = 0;
        for a in self.apps {
            match app_by_name(a).expected_class {
                ObjectClass::LatencySensitive => l += 1,
                ObjectClass::BandwidthSensitive => b += 1,
                ObjectClass::NonIntensive => n += 1,
            }
        }
        (l, b, n)
    }
}

/// The ten multicore workload sets of Figs. 10–13: five memory-intensive
/// mixes and five including non-memory-intensive applications ("the last
/// five workload sets also consist of non-memory-intensive applications",
/// §VI-B).
pub fn multiprogram_sets() -> Vec<WorkloadSet> {
    vec![
        WorkloadSet {
            name: "4L",
            apps: ["mcf", "milc", "libquantum", "disparity"],
        },
        WorkloadSet {
            name: "3L1B",
            apps: ["mcf", "milc", "disparity", "lbm"],
        },
        WorkloadSet {
            name: "2L2B",
            apps: ["mcf", "libquantum", "lbm", "mser"],
        },
        WorkloadSet {
            name: "1L3B",
            apps: ["milc", "lbm", "mser", "tracking"],
        },
        WorkloadSet {
            name: "4B",
            apps: ["lbm", "mser", "tracking", "lbm"],
        },
        WorkloadSet {
            name: "3L1N",
            apps: ["mcf", "milc", "libquantum", "gcc"],
        },
        WorkloadSet {
            name: "2L1B1N",
            apps: ["mcf", "milc", "lbm", "sift"],
        },
        WorkloadSet {
            name: "1L1B2N",
            apps: ["libquantum", "mser", "gcc", "stitch"],
        },
        WorkloadSet {
            name: "2B2N",
            apps: ["lbm", "tracking", "gcc", "sift"],
        },
        WorkloadSet {
            name: "4N",
            apps: ["gcc", "sift", "stitch", "gcc"],
        },
    ]
}

/// The five sets swept across heterogeneous configurations in Figs. 14–15.
pub fn config_sweep_sets() -> Vec<WorkloadSet> {
    let wanted = ["3L1B", "1L3B", "3L1N", "2L1B1N", "2B2N"];
    multiprogram_sets()
        .into_iter()
        .filter(|s| wanted.contains(&s.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_name(name: &str) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        let mut digits = String::new();
        for c in name.chars() {
            if c.is_ascii_digit() {
                digits.push(c);
            } else {
                let n: usize = digits.parse().unwrap();
                digits.clear();
                match c {
                    'L' => counts.0 += n,
                    'B' => counts.1 += n,
                    'N' => counts.2 += n,
                    _ => panic!("bad class letter {c}"),
                }
            }
        }
        counts
    }

    #[test]
    fn set_names_match_composition() {
        for set in multiprogram_sets() {
            assert_eq!(
                set.composition(),
                parse_name(set.name),
                "set {} mislabeled",
                set.name
            );
            assert_eq!(set.apps.len(), 4);
        }
    }

    #[test]
    fn ten_sets_five_with_n() {
        let sets = multiprogram_sets();
        assert_eq!(sets.len(), 10);
        let with_n = sets.iter().filter(|s| s.composition().2 > 0).count();
        assert_eq!(with_n, 5);
    }

    #[test]
    fn sweep_sets_match_paper_figure_14() {
        let names: Vec<_> = config_sweep_sets().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["3L1B", "1L3B", "3L1N", "2L1B1N", "2B2N"]);
    }
}
