//! Workload specification types.

use moca_common::{ObjectClass, KB, MB};
use serde::{Deserialize, Serialize};

/// Memory access pattern of one heap object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Sequential independent accesses (vector streaming): new cache lines
    /// are touched in order (optionally strided, as in multi-field
    /// scientific sweeps) and loads carry no address dependencies — high
    /// MLP, high MPKI for large objects ⇒ *bandwidth-sensitive*.
    Stream {
        /// Lines advanced per touched line (1 = dense sweep). Strides > 1
        /// spread the sweep over proportionally more pages per interval
        /// without changing the miss rate.
        stride: u64,
    },
    /// Sequential but address-dependent accesses (linked traversal in
    /// allocation order, induction-limited loops): misses cannot overlap ⇒
    /// *latency-sensitive* despite the regular address pattern.
    StreamDep {
        /// Lines advanced per touched line.
        stride: u64,
    },
    /// Uniform-random dependent accesses (pointer chasing): every new line
    /// needs the previous load's data ⇒ the canonical latency-sensitive
    /// pattern (mcf's arc traversal).
    Chase,
    /// Uniform-random independent accesses (hash/bucket lookups with
    /// precomputed indices): high MPKI but misses overlap ⇒
    /// bandwidth-sensitive.
    Random,
    /// Accesses concentrated in a small hot working set, with an optional
    /// cold tail: with probability `cold_fraction` a new line is drawn from
    /// the whole object (a compulsory miss), otherwise from the hot set,
    /// which the caches absorb ⇒ non-memory-intensive for small
    /// `cold_fraction`. `chase` makes the cold accesses address-dependent
    /// (hash-chain / symbol-table walks), which is what lets an otherwise
    /// quiet application own one latency-sensitive object — the gcc story of
    /// §VI-A.
    Hot {
        /// Hot working-set bytes (not scaled — locality is relative to the
        /// fixed cache sizes).
        working_set: u64,
        /// Probability that a new line comes from the cold tail.
        cold_fraction: f64,
        /// Whether cold accesses are address-dependent.
        chase: bool,
    },
}

impl Pattern {
    /// A dense (stride-1) streaming pattern.
    pub fn stream() -> Pattern {
        Pattern::Stream { stride: 1 }
    }

    /// A dense (stride-1) dependent streaming pattern.
    pub fn stream_dep() -> Pattern {
        Pattern::StreamDep { stride: 1 }
    }

    /// A pure hot-set pattern with no cold tail.
    pub fn hot(working_set: u64) -> Pattern {
        Pattern::Hot {
            working_set,
            cold_fraction: 0.0,
            chase: false,
        }
    }

    /// Whether the first access to each new *hot/streamed* line is
    /// address-dependent on the previous load ([`Pattern::Hot`] decides per
    /// line; see the generator).
    pub fn dependent(self) -> bool {
        matches!(self, Pattern::StreamDep { .. } | Pattern::Chase)
    }
}

/// One named heap object of an application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Source-level name (for reports; mirrors the paper's Fig. 2 labels).
    pub label: &'static str,
    /// Synthetic return address of the allocation call — the first naming
    /// component of §III-A.
    pub alloc_site: u64,
    /// Synthetic return addresses of the calling context (up to five levels,
    /// §V-A), outermost last.
    pub call_stack: Vec<u64>,
    /// Size at the paper's nominal (2 GB-machine) scale, in bytes.
    pub nominal_bytes: u64,
    /// Relative share of the application's heap accesses.
    pub weight: f64,
    /// Access pattern.
    pub pattern: Pattern,
    /// Fraction of this object's accesses that are stores.
    pub write_fraction: f64,
    /// Accesses issued per touched cache line (spatial locality within a
    /// line: struct fields, consecutive words). Divides the object's MPKI.
    pub burst: u32,
    /// Dependence-chain group: objects sharing a group form *one* chain
    /// (mcf traverses arcs→nodes→arcs in a single dependence chain).
    /// `None` gives the object its own chain.
    pub chain_group: Option<u8>,
}

impl ObjectSpec {
    /// Object size after applying the system footprint scale and the input
    /// size scale, clamped to at least one page.
    pub fn scaled_bytes(&self, scale: f64) -> u64 {
        let b = (self.nominal_bytes as f64 * scale) as u64;
        b.max(4 * KB).div_ceil(64) * 64
    }
}

/// Program phase behaviour: real applications shift their object access
/// mix over time (the reason the paper profiles at SimPoints and takes "a
/// weighted value of metrics", §V-A). When present, the generator
/// alternates between the base object weights and `odd_weights` every
/// `period` instructions; the profiler's aggregate then reflects the
/// instruction-weighted mixture, exactly like the SimPoint weighting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Instructions per phase.
    pub period: u64,
    /// Object weights during odd phases (same length as `objects`).
    pub odd_weights: Vec<f64>,
}

/// One application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Table III application-level class (ground truth the app-level
    /// classifier should reproduce).
    pub expected_class: ObjectClass,
    /// Fraction of instructions that are memory accesses.
    pub mem_fraction: f64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Probability a branch mispredicts.
    pub mispredict_rate: f64,
    /// Fraction of memory accesses that target the stack.
    pub stack_fraction: f64,
    /// Stack hot working-set bytes.
    pub stack_working_set: u64,
    /// Code footprint in bytes (drives L1I/L2 code-segment MPKI, Fig. 16).
    pub code_bytes: u64,
    /// Probability a branch jumps to a random code line (vs falling
    /// through), spreading fetches over the code footprint.
    pub branch_jump_prob: f64,
    /// The heap objects.
    pub objects: Vec<ObjectSpec>,
    /// Optional phase behaviour (None = stationary mix).
    pub phases: Option<PhaseSpec>,
}

impl AppSpec {
    /// Total nominal heap footprint in bytes.
    pub fn nominal_footprint(&self) -> u64 {
        self.objects.iter().map(|o| o.nominal_bytes).sum()
    }

    /// Validate invariants (weights positive, fractions in range). Called by
    /// the suite tests.
    pub fn validate(&self) {
        assert!(!self.objects.is_empty(), "{}: no objects", self.name);
        if let Some(p) = &self.phases {
            assert!(p.period > 0, "{}: zero phase period", self.name);
            assert_eq!(
                p.odd_weights.len(),
                self.objects.len(),
                "{}: one odd-phase weight per object",
                self.name
            );
            assert!(
                p.odd_weights.iter().sum::<f64>() > 0.0,
                "{}: odd-phase weights sum to zero",
                self.name
            );
        }
        assert!(
            self.mem_fraction > 0.0 && self.mem_fraction < 1.0,
            "{}: mem_fraction",
            self.name
        );
        assert!(
            self.mem_fraction + self.branch_fraction < 1.0,
            "{}: fractions exceed 1",
            self.name
        );
        let wsum: f64 = self.objects.iter().map(|o| o.weight).sum();
        assert!(wsum > 0.0, "{}: zero weights", self.name);
        for o in &self.objects {
            assert!(
                o.weight >= 0.0,
                "{}/{}: negative weight",
                self.name,
                o.label
            );
            assert!(
                o.burst >= 1,
                "{}/{}: burst must be >= 1",
                self.name,
                o.label
            );
            assert!(
                (0.0..=1.0).contains(&o.write_fraction),
                "{}/{}: write fraction",
                self.name,
                o.label
            );
            assert!(
                o.call_stack.len() <= 5,
                "{}/{}: call stack deeper than the 5 levels profiled",
                self.name,
                o.label
            );
        }
    }
}

/// A profiling or evaluation input (§V-D: SPEC train/ref input sets, two
/// different MIT-Adobe images for SDVBS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSet {
    /// Label for reports.
    pub label: &'static str,
    /// Seed driving every random choice of the generator.
    pub seed: u64,
    /// Multiplier on object footprints relative to nominal.
    pub size_scale: f64,
}

impl InputSet {
    /// Training input: used for offline profiling and classification.
    pub fn training() -> InputSet {
        InputSet {
            label: "train",
            seed: 0x7121_1015,
            size_scale: 0.75,
        }
    }

    /// Reference input: used for the evaluation runs.
    pub fn reference() -> InputSet {
        InputSet {
            label: "ref",
            seed: 0x0EF5_EED5,
            size_scale: 1.0,
        }
    }
}

/// Default footprint scale: the simulator shrinks the 2 GB machine and all
/// object footprints by this factor to keep runs laptop-scale while
/// preserving every footprint:capacity ratio (see DESIGN.md).
pub const DEFAULT_FOOTPRINT_SCALE: f64 = 1.0 / 64.0;

/// Nominal stack reservation per application.
pub const STACK_BYTES: u64 = 2 * MB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_dependence_flags() {
        assert!(Pattern::Chase.dependent());
        assert!(Pattern::stream_dep().dependent());
        assert!(!Pattern::stream().dependent());
        assert!(!Pattern::Random.dependent());
        assert!(!Pattern::hot(1024).dependent());
    }

    #[test]
    fn scaled_bytes_clamps_to_page() {
        let o = ObjectSpec {
            label: "x",
            alloc_site: 1,
            call_stack: vec![],
            nominal_bytes: 100 * MB,
            weight: 1.0,
            pattern: Pattern::stream(),
            write_fraction: 0.0,
            burst: 1,
            chain_group: None,
        };
        assert_eq!(o.scaled_bytes(1.0), 100 * MB);
        assert_eq!(o.scaled_bytes(1e-9), 4 * KB);
        assert_eq!(o.scaled_bytes(0.5) % 64, 0);
    }

    #[test]
    fn inputs_differ() {
        let t = InputSet::training();
        let r = InputSet::reference();
        assert_ne!(t.seed, r.seed);
        assert!(t.size_scale < r.size_scale);
    }
}
